//! The video-conferencing application (paper §4 and §5.2).
//!
//! "Conceptually, this application involves combining streams of ... video
//! data from multiple participants and sending the composite streams back
//! out to the participants." Three versions exist, exactly as measured in
//! the paper:
//!
//! * a **socket baseline** with a single-threaded mixer
//!   ([`crate::sockets`], §5.2 version 1);
//! * a **D-Stampede version with a single-threaded mixer**
//!   ([`MixerKind::SingleThreaded`], version 2);
//! * a **D-Stampede version with a multi-threaded mixer** — one thread per
//!   client, each mixing its part of the composite, a designated step
//!   placing the finished composite in the output channel
//!   ([`MixerKind::MultiThreaded`], version 3).
//!
//! Structure (Figure 5): each client's producer puts timestamped frames
//! into its own channel `C_j` (created in the surrogate's address space);
//! the mixer in address space `N_M` gets *corresponding timestamped*
//! frames from every `C_j`, composites, and puts into channel `C_0`; each
//! client's display gets composites from `C_0`. Cameras and displays are
//! virtual (memory buffers), as in the paper's controlled study.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use dstampede_clf::{NetProfile, ShapedStream};
use dstampede_client::EndDevice;
use dstampede_core::{
    ChannelAttrs, GetSpec, Interest, Item, OverflowPolicy, ResourceId, StmError, StmResult,
    Timestamp,
};
use dstampede_runtime::{Cluster, ClusterBuilder};
use dstampede_wire::WaitSpec;

use crate::frame::{composite, make_frame, mix_region, validate_composite_region};
use crate::metrics::{AppMeasurement, FpsMeter};

/// How the mixer exploits parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixerKind {
    /// One mixer thread serves every client stream in turn (version 2).
    SingleThreaded,
    /// One mixer thread per client, mixing its composite region in
    /// parallel (version 3).
    MultiThreaded,
}

/// Parameters of one conference run.
#[derive(Debug, Clone)]
pub struct ConferenceConfig {
    /// Number of participating clients (K).
    pub clients: usize,
    /// Per-client image size in bytes (S).
    pub image_size: usize,
    /// Frames each producer generates.
    pub frames: i64,
    /// Frames each display skips before measuring.
    pub warmup: u64,
    /// Mixer parallelism.
    pub mixer: MixerKind,
    /// Shaping on each client's TCP link to the cluster.
    pub client_profile: NetProfile,
    /// Shaping on the cluster's inter-address-space links (models the
    /// mixer node's egress, the paper's Table 1 bottleneck).
    pub cluster_profile: NetProfile,
    /// Capacity bound of every channel (flow control).
    pub channel_capacity: u32,
}

impl Default for ConferenceConfig {
    fn default() -> Self {
        ConferenceConfig {
            clients: 2,
            image_size: 74 * 1024,
            frames: 60,
            warmup: 10,
            mixer: MixerKind::SingleThreaded,
            client_profile: NetProfile::LOOPBACK,
            cluster_profile: NetProfile::LOOPBACK,
            channel_capacity: 4,
        }
    }
}

/// The outcome of one conference run.
#[derive(Debug, Clone)]
pub struct ConferenceReport {
    /// K, S and the sustained frame rate at the *slowest* display (the
    /// paper's reporting convention).
    pub measurement: AppMeasurement,
    /// Sustained frame rate at every display.
    pub per_client_fps: Vec<f64>,
    /// Composite frames validated end to end across all displays.
    pub validated_frames: u64,
}

impl fmt::Display for ConferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (validated {})",
            self.measurement, self.validated_frames
        )
    }
}

fn attach_client(
    addr: std::net::SocketAddr,
    profile: NetProfile,
    name: &str,
) -> StmResult<EndDevice> {
    if profile.is_transparent() {
        EndDevice::attach_c(addr, name)
    } else {
        let stream = dstampede_clf::tcp_connect(addr).map_err(|_| StmError::Disconnected)?;
        EndDevice::attach_over(
            Box::new(ShapedStream::new(stream, profile)),
            dstampede_wire::CodecId::Xdr,
            name,
        )
    }
}

/// Runs the D-Stampede version of the conference and reports sustained
/// frame rates.
///
/// # Errors
///
/// Propagates any runtime error from the pipeline; a clean run returns
/// the report.
pub fn run_dstampede_conference(cfg: &ConferenceConfig) -> StmResult<ConferenceReport> {
    assert!(cfg.clients >= 1, "need at least one client");
    // N_1 (listener AS for all end devices, hosts the name server) and
    // N_M (the mixer's address space).
    let cluster: Cluster = ClusterBuilder::new()
        .address_spaces(2)
        .shaped(cfg.cluster_profile)
        .build()?;
    let listener_addr = cluster.listener_addr(0)?;
    let mixer_space = cluster.space(1)?;

    let chan_attrs = ChannelAttrs::builder()
        .capacity(cfg.channel_capacity)
        .overflow(OverflowPolicy::Block)
        .build();

    // C_0 lives in N_M.
    let c0 = mixer_space.create_channel(Some("composite".into()), chan_attrs);
    mixer_space.ns_register("conference/composite", ResourceId::Channel(c0.id()), "")?;

    // ---- client producers ----
    let mut producer_handles = Vec::new();
    for j in 0..cfg.clients {
        let cfg = cfg.clone();
        producer_handles.push(std::thread::spawn(move || -> StmResult<()> {
            let device = attach_client(listener_addr, cfg.client_profile, &format!("cam-{j}"))?;
            let chan = device.create_channel(None, chan_attrs)?;
            device.ns_register(
                &format!("conference/client{j}"),
                ResourceId::Channel(chan),
                "",
            )?;
            let out = device.connect_channel_out(chan)?;
            for ts in 0..cfg.frames {
                let frame = make_frame(j as u32, ts, cfg.image_size);
                out.put(Timestamp::new(ts), frame, WaitSpec::Forever)?;
            }
            drop(out);
            device.detach()
        }));
    }

    // ---- mixer in N_M ----
    let mixer_cfg = cfg.clone();
    let mixer_space2 = Arc::clone(&mixer_space);
    let c0_id = c0.id();
    let mixer_handle = std::thread::spawn(move || -> StmResult<()> {
        // Rendezvous: wait for every client channel to register.
        let mut inputs = Vec::with_capacity(mixer_cfg.clients);
        for j in 0..mixer_cfg.clients {
            let (res, _) = mixer_space2.ns_lookup_wait(&format!("conference/client{j}"), None)?;
            let ResourceId::Channel(id) = res else {
                return Err(StmError::Protocol("client registered a non-channel".into()));
            };
            inputs.push(
                mixer_space2
                    .open_channel(id)?
                    .connect_input(Interest::FromEarliest)?,
            );
        }
        let output = Arc::new(mixer_space2.open_channel(c0_id)?.connect_output()?);

        match mixer_cfg.mixer {
            MixerKind::SingleThreaded => {
                for ts in 0..mixer_cfg.frames {
                    let t = Timestamp::new(ts);
                    let mut parts = Vec::with_capacity(inputs.len());
                    for inp in &inputs {
                        let (_, item) = inp.get(GetSpec::Exact(t), WaitSpec::Forever)?;
                        parts.push(item);
                    }
                    let mixed = composite(&parts);
                    output.put(t, mixed, WaitSpec::Forever)?;
                    for inp in &inputs {
                        inp.consume_until(t)?;
                    }
                }
                Ok(())
            }
            MixerKind::MultiThreaded => {
                // One thread per client; the thread completing a composite
                // places it into C_0 (the "designated thread" step).
                type Assembly = std::collections::HashMap<i64, Vec<Option<Vec<u8>>>>;
                let assembly: Arc<Mutex<Assembly>> = Arc::new(Mutex::new(Assembly::new()));
                let mut workers = Vec::new();
                for (j, inp) in inputs.into_iter().enumerate() {
                    let assembly = Arc::clone(&assembly);
                    let output = Arc::clone(&output);
                    let k = mixer_cfg.clients;
                    let frames = mixer_cfg.frames;
                    let image_size = mixer_cfg.image_size;
                    workers.push(std::thread::spawn(move || -> StmResult<()> {
                        for ts in 0..frames {
                            let t = Timestamp::new(ts);
                            let (_, item) = inp.get(GetSpec::Exact(t), WaitSpec::Forever)?;
                            // Mix this client's region in parallel with the
                            // other workers.
                            let mut region = vec![0u8; image_size];
                            mix_region(&mut region, 0, &item);
                            let complete = {
                                let mut asm = assembly.lock();
                                let parts = asm.entry(ts).or_insert_with(|| vec![None; k]);
                                parts[j] = Some(region);
                                if parts.iter().all(Option::is_some) {
                                    asm.remove(&ts)
                                } else {
                                    None
                                }
                            };
                            if let Some(parts) = complete {
                                let mut buf = Vec::with_capacity(k * image_size);
                                for part in parts {
                                    buf.extend_from_slice(&part.expect("all present"));
                                }
                                output.put(t, Item::from_vec(buf), WaitSpec::Forever)?;
                            }
                            inp.consume_until(t)?;
                        }
                        Ok(())
                    }));
                }
                for w in workers {
                    w.join()
                        .map_err(|_| StmError::Protocol("mixer worker panicked".into()))??;
                }
                Ok(())
            }
        }
    });

    // ---- client displays ----
    let mut display_handles = Vec::new();
    for j in 0..cfg.clients {
        let cfg = cfg.clone();
        display_handles.push(std::thread::spawn(move || -> StmResult<(f64, u64)> {
            let device = attach_client(listener_addr, cfg.client_profile, &format!("disp-{j}"))?;
            let (res, _) = device.ns_lookup("conference/composite", WaitSpec::Forever)?;
            let ResourceId::Channel(c0) = res else {
                return Err(StmError::Protocol("composite is not a channel".into()));
            };
            let inp = device.connect_channel_in(c0, Interest::FromEarliest)?;
            let mut meter = FpsMeter::new(cfg.warmup);
            let mut validated = 0u64;
            let mut last = Timestamp::MIN;
            loop {
                let (ts, item) = inp.get(GetSpec::After(last), WaitSpec::Forever)?;
                // Validate this display's own region of the composite.
                let own = make_frame(j as u32, ts.value(), cfg.image_size);
                validate_composite_region(&item, j, &own)?;
                validated += 1;
                meter.frame();
                inp.consume_until(ts)?;
                last = ts;
                if ts.value() == cfg.frames - 1 {
                    break;
                }
            }
            meter.finish();
            drop(inp);
            device.detach()?;
            Ok((meter.fps(), validated))
        }));
    }

    for p in producer_handles {
        p.join()
            .map_err(|_| StmError::Protocol("producer panicked".into()))??;
    }
    mixer_handle
        .join()
        .map_err(|_| StmError::Protocol("mixer panicked".into()))??;

    let mut per_client_fps = Vec::new();
    let mut validated_frames = 0;
    for d in display_handles {
        let (fps, validated) = d
            .join()
            .map_err(|_| StmError::Protocol("display panicked".into()))??;
        per_client_fps.push(fps);
        validated_frames += validated;
    }
    cluster.shutdown();

    let slowest = per_client_fps.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(ConferenceReport {
        measurement: AppMeasurement {
            clients: cfg.clients,
            image_size: cfg.image_size,
            fps: slowest,
        },
        per_client_fps,
        validated_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mixer: MixerKind) -> ConferenceConfig {
        ConferenceConfig {
            clients: 2,
            image_size: 4 * 1024,
            frames: 30,
            warmup: 5,
            mixer,
            ..ConferenceConfig::default()
        }
    }

    #[test]
    fn single_threaded_conference_delivers_validated_composites() {
        let report = run_dstampede_conference(&small(MixerKind::SingleThreaded)).unwrap();
        assert_eq!(report.per_client_fps.len(), 2);
        assert_eq!(report.validated_frames, 2 * 30);
        assert!(report.measurement.fps > 0.0);
    }

    #[test]
    fn multi_threaded_conference_delivers_validated_composites() {
        let report = run_dstampede_conference(&small(MixerKind::MultiThreaded)).unwrap();
        assert_eq!(report.validated_frames, 2 * 30);
        assert!(report.measurement.fps > 0.0);
    }

    #[test]
    fn three_clients_multi_threaded() {
        let cfg = ConferenceConfig {
            clients: 3,
            frames: 20,
            warmup: 4,
            image_size: 2 * 1024,
            mixer: MixerKind::MultiThreaded,
            ..ConferenceConfig::default()
        };
        let report = run_dstampede_conference(&cfg).unwrap();
        assert_eq!(report.per_client_fps.len(), 3);
        assert_eq!(report.validated_frames, 3 * 20);
    }

    #[test]
    fn shaped_conference_is_slower_than_unshaped() {
        let mut cfg = small(MixerKind::SingleThreaded);
        cfg.frames = 40;
        let fast = run_dstampede_conference(&cfg).unwrap();
        cfg.cluster_profile = NetProfile {
            latency: std::time::Duration::from_micros(300),
            bandwidth: Some(2 * 1024 * 1024), // 2 MB/s: strongly constrained
        };
        let slow = run_dstampede_conference(&cfg).unwrap();
        assert!(
            slow.measurement.fps < fast.measurement.fps,
            "shaped {} !< unshaped {}",
            slow.measurement.fps,
            fast.measurement.fps
        );
    }
}
