//! Video frames for the conferencing and vision applications.
//!
//! The paper's controlled application study reads a "virtual camera (a
//! memory buffer)" instead of real capture hardware (§5.2); we do the
//! same. Frames carry a small header (client id, frame number) over a
//! deterministic pixel pattern so every stage can validate what it
//! receives, and compositing really touches every byte — mixing is the
//! compute-intensive stage of the pipeline, as in the paper.

use bytes::Bytes;

use dstampede_core::{Item, StmError, StmResult};

/// Bytes of header at the start of every frame payload.
pub const FRAME_HEADER: usize = 8;

/// Generates a virtual-camera frame of exactly `size` bytes.
///
/// # Panics
///
/// Panics if `size < FRAME_HEADER`.
#[must_use]
pub fn make_frame(client: u32, frame_no: i64, size: usize) -> Item {
    assert!(size >= FRAME_HEADER, "frame must fit its header");
    let mut buf = vec![0u8; size];
    buf[..4].copy_from_slice(&client.to_be_bytes());
    buf[4..8].copy_from_slice(&(frame_no as u32).to_be_bytes());
    // Deterministic "pixels": a function of client, frame and offset.
    let seed = (client as u64) << 32 | (frame_no as u64 & 0xffff_ffff);
    for (i, b) in buf[FRAME_HEADER..].iter_mut().enumerate() {
        *b = ((seed.wrapping_add(i as u64)).wrapping_mul(2654435761) >> 24) as u8;
    }
    Item::new(Bytes::from(buf)).with_tag(client)
}

/// Checks that a frame is exactly what [`make_frame`] would produce.
///
/// # Errors
///
/// [`StmError::Protocol`] describing the first mismatch.
pub fn validate_frame(item: &Item, client: u32, frame_no: i64) -> StmResult<()> {
    let p = item.payload();
    if p.len() < FRAME_HEADER {
        return Err(StmError::Protocol("frame shorter than header".into()));
    }
    let got_client = u32::from_be_bytes(p[..4].try_into().expect("4 bytes"));
    let got_frame = u32::from_be_bytes(p[4..8].try_into().expect("4 bytes"));
    if got_client != client {
        return Err(StmError::Protocol(format!(
            "frame from client {got_client}, expected {client}"
        )));
    }
    if got_frame != frame_no as u32 {
        return Err(StmError::Protocol(format!(
            "frame number {got_frame}, expected {frame_no}"
        )));
    }
    let seed = (client as u64) << 32 | (frame_no as u64 & 0xffff_ffff);
    for (i, &b) in p[FRAME_HEADER..].iter().enumerate() {
        let want = ((seed.wrapping_add(i as u64)).wrapping_mul(2654435761) >> 24) as u8;
        if b != want {
            return Err(StmError::Protocol(format!("pixel {i} corrupt")));
        }
    }
    Ok(())
}

/// Mixes `parts` (one frame per client, any order) into the composite the
/// displays receive: the frames tiled back to back, each byte passed
/// through a per-pixel transform so the mixer does real work per byte.
///
/// # Panics
///
/// Panics if `parts` is empty.
#[must_use]
pub fn composite(parts: &[Item]) -> Item {
    assert!(!parts.is_empty(), "composite of zero frames");
    let part_len = parts[0].len();
    let mut buf = vec![0u8; part_len * parts.len()];
    let mut sorted: Vec<&Item> = parts.iter().collect();
    sorted.sort_by_key(|i| i.tag());
    for (idx, part) in sorted.iter().enumerate() {
        mix_region(&mut buf, idx, part);
    }
    Item::new(Bytes::from(buf))
}

/// Mixes one client's frame into its region of a composite buffer — the
/// unit of work one multi-threaded-mixer thread performs.
///
/// # Panics
///
/// Panics if the buffer is too small for region `idx`.
pub fn mix_region(buf: &mut [u8], idx: usize, part: &Item) {
    let p = part.payload();
    let region = &mut buf[idx * p.len()..(idx + 1) * p.len()];
    for (dst, &src) in region.iter_mut().zip(p.iter()) {
        // A cheap per-pixel transform (tone-map-like), so mixing costs are
        // proportional to composite size as in the paper's application.
        *dst = src.wrapping_mul(31).wrapping_add(7);
    }
}

/// Validates one region of a composite against the client frame it mixed.
///
/// # Errors
///
/// [`StmError::Protocol`] describing the first mismatch.
pub fn validate_composite_region(composite: &Item, idx: usize, part: &Item) -> StmResult<()> {
    let p = part.payload();
    let c = composite.payload();
    if c.len() < (idx + 1) * p.len() {
        return Err(StmError::Protocol("composite too small".into()));
    }
    let region = &c[idx * p.len()..(idx + 1) * p.len()];
    for (i, (&mixed, &src)) in region.iter().zip(p.iter()).enumerate() {
        if mixed != src.wrapping_mul(31).wrapping_add(7) {
            return Err(StmError::Protocol(format!("composite byte {i} corrupt")));
        }
    }
    Ok(())
}

/// Splits a frame into `n` equal-size fragments sharing the frame's
/// timestamp semantics (tags 0..n), the splitter stage of Figure 3.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn split_frame(frame: &Item, n: usize) -> Vec<Item> {
    assert!(n > 0, "cannot split into zero fragments");
    let p = frame.payload_bytes();
    let chunk = p.len().div_ceil(n);
    (0..n)
        .map(|i| {
            let lo = (i * chunk).min(p.len());
            let hi = ((i + 1) * chunk).min(p.len());
            Item::new(p.slice(lo..hi)).with_tag(i as u32)
        })
        .collect()
}

/// The tracker stage of Figure 3: "analyzes" a fragment, producing a small
/// result (a checksum standing in for object-detection output).
#[must_use]
pub fn track_fragment(fragment: &Item) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in fragment.payload() {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_validate() {
        let f = make_frame(3, 17, 1024);
        assert_eq!(f.len(), 1024);
        assert_eq!(f.tag(), 3);
        validate_frame(&f, 3, 17).unwrap();
        assert!(validate_frame(&f, 4, 17).is_err());
        assert!(validate_frame(&f, 3, 18).is_err());
    }

    #[test]
    fn corrupt_frame_detected() {
        let f = make_frame(1, 1, 64);
        let mut bytes = f.payload().to_vec();
        bytes[40] ^= 0xff;
        let corrupt = Item::from_vec(bytes).with_tag(1);
        assert!(validate_frame(&corrupt, 1, 1).is_err());
    }

    #[test]
    fn composite_tiles_by_tag() {
        let a = make_frame(0, 5, 256);
        let b = make_frame(1, 5, 256);
        // Order independence: tag decides placement.
        let c1 = composite(&[b.clone(), a.clone()]);
        let c2 = composite(&[a.clone(), b.clone()]);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 512);
        validate_composite_region(&c1, 0, &a).unwrap();
        validate_composite_region(&c1, 1, &b).unwrap();
    }

    #[test]
    fn mix_region_matches_composite() {
        let a = make_frame(0, 2, 128);
        let b = make_frame(1, 2, 128);
        let whole = composite(&[a.clone(), b.clone()]);
        let mut buf = vec![0u8; 256];
        mix_region(&mut buf, 0, &a);
        mix_region(&mut buf, 1, &b);
        assert_eq!(whole.payload(), &buf[..]);
    }

    #[test]
    fn split_covers_frame_exactly() {
        let f = make_frame(0, 1, 1000);
        let frags = split_frame(&f, 3);
        assert_eq!(frags.len(), 3);
        let total: usize = frags.iter().map(Item::len).sum();
        assert_eq!(total, 1000);
        let mut rebuilt = Vec::new();
        for frag in &frags {
            rebuilt.extend_from_slice(frag.payload());
        }
        assert_eq!(rebuilt, f.payload());
        for (i, frag) in frags.iter().enumerate() {
            assert_eq!(frag.tag(), i as u32);
        }
    }

    #[test]
    fn split_handles_uneven_and_single() {
        let f = make_frame(0, 1, 10);
        let frags = split_frame(&f, 4);
        let total: usize = frags.iter().map(Item::len).sum();
        assert_eq!(total, 10);
        let one = split_frame(&f, 1);
        assert_eq!(one[0].payload(), f.payload());
    }

    #[test]
    fn tracking_is_deterministic_and_content_sensitive() {
        let f = make_frame(0, 1, 512);
        let frags = split_frame(&f, 2);
        assert_eq!(track_fragment(&frags[0]), track_fragment(&frags[0]));
        assert_ne!(track_fragment(&frags[0]), track_fragment(&frags[1]));
    }

    #[test]
    #[should_panic(expected = "header")]
    fn tiny_frame_panics() {
        let _ = make_frame(0, 0, 4);
    }
}
