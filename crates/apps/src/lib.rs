//! # dstampede-apps — the paper's reference applications
//!
//! Runnable implementations of the applications the paper builds and
//! measures on top of D-Stampede:
//!
//! * [`conference`] — the §4 video-conferencing application in its two
//!   D-Stampede forms (single- and multi-threaded mixer), driving the
//!   paper's Figures 14–15 and Table 1;
//! * [`sockets`] — the raw-TCP baseline of the same application (§5.2
//!   version 1), preserved for the sockets-vs-channels comparison;
//! * [`vision`] — the Figure 3 task/data-parallel tracking pipeline
//!   (digitizer → splitter → tracker pool → joiner);
//! * [`frame`] — virtual cameras, compositing and validation;
//! * [`metrics`] — sustained-frame-rate and delivered-bandwidth
//!   measurement (the Table 1 formula).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conference;
pub mod frame;
pub mod metrics;
pub mod sockets;
pub mod vision;

pub use conference::{run_dstampede_conference, ConferenceConfig, ConferenceReport, MixerKind};
pub use metrics::{delivered_bandwidth_mbps, AppMeasurement, FpsMeter};
pub use sockets::run_socket_conference;
pub use vision::{run_vision_pipeline, AnalysisRecord, VisionConfig, VisionReport};
