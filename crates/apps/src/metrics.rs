//! Application-level measurement: sustained frame rate and delivered
//! bandwidth.
//!
//! "Sustained frame rate is the performance metric of interest in this
//! application" (paper §5.2), measured at the display threads; the paper's
//! Table 1 derives delivered bandwidth from it as `K² · S · F` (each of
//! `K` clients receives a composite of size `K·S` at `F` frames/sec).

use std::fmt;
use std::time::{Duration, Instant};

/// Measures sustained frame rate at one display, skipping a warm-up
/// prefix so pipeline fill does not dilute the steady-state figure.
#[derive(Debug, Clone)]
pub struct FpsMeter {
    warmup: u64,
    seen: u64,
    started: Option<Instant>,
    finished: Option<Duration>,
}

impl FpsMeter {
    /// A meter that ignores the first `warmup` frames.
    #[must_use]
    pub fn new(warmup: u64) -> Self {
        FpsMeter {
            warmup,
            seen: 0,
            started: None,
            finished: None,
        }
    }

    /// Records one delivered frame.
    pub fn frame(&mut self) {
        self.seen += 1;
        if self.seen == self.warmup {
            self.started = Some(Instant::now());
        }
    }

    /// Stops the clock (idempotent).
    pub fn finish(&mut self) {
        if self.finished.is_none() {
            if let Some(start) = self.started {
                self.finished = Some(start.elapsed());
            }
        }
    }

    /// Frames counted after warm-up.
    #[must_use]
    pub fn measured_frames(&self) -> u64 {
        self.seen.saturating_sub(self.warmup)
    }

    /// Sustained frames per second over the measured window (zero when too
    /// few frames were seen).
    #[must_use]
    pub fn fps(&self) -> f64 {
        let frames = self.measured_frames();
        if frames == 0 {
            return 0.0;
        }
        let elapsed = match self.finished {
            Some(d) => d,
            None => match self.started {
                Some(s) => s.elapsed(),
                None => return 0.0,
            },
        };
        if elapsed.is_zero() {
            return f64::INFINITY;
        }
        frames as f64 / elapsed.as_secs_f64()
    }
}

/// Delivered bandwidth out of the mixer node, the paper's Table 1 formula:
/// `K² · S · F` bytes per second, reported in MB/s (the paper's "MBps").
#[must_use]
pub fn delivered_bandwidth_mbps(clients: usize, image_size: usize, fps: f64) -> f64 {
    let k = clients as f64;
    k * k * image_size as f64 * fps / (1024.0 * 1024.0)
}

/// One measured conference configuration, printable as a report row.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMeasurement {
    /// Number of participating clients (K).
    pub clients: usize,
    /// Per-client image size in bytes (S).
    pub image_size: usize,
    /// Sustained frame rate at the slowest display (F).
    pub fps: f64,
}

impl AppMeasurement {
    /// Delivered bandwidth per Table 1's formula.
    #[must_use]
    pub fn bandwidth_mbps(&self) -> f64 {
        delivered_bandwidth_mbps(self.clients, self.image_size, self.fps)
    }

    /// Whether this configuration clears the paper's 10 fps usability
    /// threshold.
    #[must_use]
    pub fn meets_threshold(&self) -> bool {
        self.fps >= 10.0
    }
}

impl fmt::Display for AppMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={} S={}KB F={:.1}fps BW={:.1}MBps",
            self.clients,
            self.image_size / 1024,
            self.fps,
            self.bandwidth_mbps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_skips_warmup() {
        let mut m = FpsMeter::new(2);
        m.frame();
        m.frame(); // warmup boundary: clock starts
        assert_eq!(m.measured_frames(), 0);
        std::thread::sleep(Duration::from_millis(20));
        m.frame();
        m.frame();
        m.finish();
        assert_eq!(m.measured_frames(), 2);
        let fps = m.fps();
        assert!(fps > 0.0 && fps < 110.0, "fps={fps}");
    }

    #[test]
    fn meter_with_no_frames_is_zero() {
        let mut m = FpsMeter::new(5);
        assert_eq!(m.fps(), 0.0);
        m.frame();
        assert_eq!(m.fps(), 0.0); // still in warmup
    }

    #[test]
    fn finish_is_idempotent() {
        let mut m = FpsMeter::new(0);
        m.frame();
        std::thread::sleep(Duration::from_millis(5));
        m.finish();
        let a = m.fps();
        std::thread::sleep(Duration::from_millis(20));
        m.finish();
        assert_eq!(a, m.fps());
    }

    #[test]
    fn table1_formula() {
        // The paper's example: 2 clients at 74 KB and ~40 fps ≈ 11 MBps.
        let bw = delivered_bandwidth_mbps(2, 74 * 1024, 40.0);
        assert!((bw - 11.5625).abs() < 0.01, "bw={bw}");
        let m = AppMeasurement {
            clients: 2,
            image_size: 74 * 1024,
            fps: 40.0,
        };
        assert!(m.meets_threshold());
        assert!(m.to_string().contains("K=2"));
        let slow = AppMeasurement { fps: 9.0, ..m };
        assert!(!slow.meets_threshold());
    }
}
