//! The socket baseline of the conferencing application (§5.2 version 1).
//!
//! "The first version uses Unix TCP/IP socket for communication between
//! the client programs and the server program. The mixer (a single thread)
//! obtains images from each client one after the other, generates the
//! composite, and sends it to the clients one after the other." The paper
//! wrote this baseline to show that the D-Stampede version performs
//! comparably while being far easier to build — this module preserves that
//! comparison (and, indeed, is noticeably more fiddly than
//! [`crate::conference`]).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

#[cfg(test)]
use dstampede_clf::NetProfile;
use dstampede_clf::{ShapedStream, TokenBucket};
use dstampede_core::{StmError, StmResult};
use dstampede_wire::{read_frame, write_frame};

use crate::conference::ConferenceConfig;
use crate::conference::ConferenceReport;
use crate::frame::{composite, make_frame, validate_composite_region};
use crate::metrics::{AppMeasurement, FpsMeter};
use dstampede_core::Item;

enum ServerStream {
    Plain(TcpStream),
    Shaped(Box<ShapedStream<TcpStream>>),
}

impl Read for ServerStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Plain(s) => s.read(buf),
            ServerStream::Shaped(s) => s.read(buf),
        }
    }
}

impl Write for ServerStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Plain(s) => s.write(buf),
            ServerStream::Shaped(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServerStream::Plain(s) => s.flush(),
            ServerStream::Shaped(s) => s.flush(),
        }
    }
}

/// Runs the socket baseline and reports sustained frame rates, on the
/// same [`ConferenceConfig`] as the D-Stampede versions (the `mixer`
/// field is ignored: this baseline is single-threaded by construction).
///
/// # Errors
///
/// Propagates socket and validation errors.
pub fn run_socket_conference(cfg: &ConferenceConfig) -> StmResult<ConferenceReport> {
    assert!(cfg.clients >= 1, "need at least one client");
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|_| StmError::Disconnected)?;
    let addr = listener.local_addr().map_err(|_| StmError::Disconnected)?;

    // ---- the server program: accept K clients, then mix in lockstep ----
    let server_cfg = cfg.clone();
    let server = std::thread::spawn(move || -> StmResult<()> {
        // The mixer node's egress budget is shared across every client
        // socket, as a single node's NIC would be.
        let egress = server_cfg
            .cluster_profile
            .bandwidth
            .map(|rate| Arc::new(TokenBucket::new(rate)));
        let mut streams: Vec<ServerStream> = Vec::with_capacity(server_cfg.clients);
        for _ in 0..server_cfg.clients {
            let (s, _) = listener.accept().map_err(|_| StmError::Disconnected)?;
            s.set_nodelay(true).map_err(|_| StmError::Disconnected)?;
            streams.push(match &egress {
                Some(bucket) => ServerStream::Shaped(Box::new(ShapedStream::with_shared_bucket(
                    s,
                    server_cfg.cluster_profile,
                    Arc::clone(bucket),
                ))),
                None => ServerStream::Plain(s),
            });
        }
        for _ts in 0..server_cfg.frames {
            // Obtain images from each client, one after the other.
            let mut parts = Vec::with_capacity(server_cfg.clients);
            for (j, stream) in streams.iter_mut().enumerate() {
                let bytes = read_frame(&mut *stream).map_err(|_| StmError::Disconnected)?;
                parts.push(Item::from_vec(bytes).with_tag(j as u32));
            }
            let mixed = composite(&parts);
            // Send the composite to each client, one after the other.
            for stream in &mut streams {
                write_frame(&mut *stream, mixed.payload()).map_err(|_| StmError::Disconnected)?;
            }
        }
        Ok(())
    });

    // ---- client programs: send a frame, receive the composite ----
    let mut clients = Vec::new();
    for j in 0..cfg.clients {
        let cfg = cfg.clone();
        clients.push(std::thread::spawn(move || -> StmResult<(f64, u64)> {
            let raw = TcpStream::connect(addr).map_err(|_| StmError::Disconnected)?;
            raw.set_nodelay(true).map_err(|_| StmError::Disconnected)?;
            let mut stream: Box<dyn ReadWrite> = if cfg.client_profile.is_transparent() {
                Box::new(raw)
            } else {
                Box::new(ShapedStream::new(raw, cfg.client_profile))
            };
            let mut meter = FpsMeter::new(cfg.warmup);
            let mut validated = 0u64;
            for ts in 0..cfg.frames {
                let frame = make_frame(j as u32, ts, cfg.image_size);
                write_frame(&mut *stream, frame.payload()).map_err(|_| StmError::Disconnected)?;
                let bytes = read_frame(&mut *stream).map_err(|_| StmError::Disconnected)?;
                let item = Item::from_vec(bytes);
                validate_composite_region(&item, j, &frame)?;
                validated += 1;
                meter.frame();
            }
            meter.finish();
            Ok((meter.fps(), validated))
        }));
    }

    server
        .join()
        .map_err(|_| StmError::Protocol("server panicked".into()))??;
    let mut per_client_fps = Vec::new();
    let mut validated_frames = 0;
    for c in clients {
        let (fps, validated) = c
            .join()
            .map_err(|_| StmError::Protocol("client panicked".into()))??;
        per_client_fps.push(fps);
        validated_frames += validated;
    }

    let slowest = per_client_fps.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(ConferenceReport {
        measurement: AppMeasurement {
            clients: cfg.clients,
            image_size: cfg.image_size,
            fps: slowest,
        },
        per_client_fps,
        validated_frames,
    })
}

trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_baseline_delivers_validated_composites() {
        let cfg = ConferenceConfig {
            clients: 2,
            image_size: 4 * 1024,
            frames: 30,
            warmup: 5,
            ..ConferenceConfig::default()
        };
        let report = run_socket_conference(&cfg).unwrap();
        assert_eq!(report.per_client_fps.len(), 2);
        assert_eq!(report.validated_frames, 2 * 30);
        assert!(report.measurement.fps > 0.0);
    }

    #[test]
    fn socket_baseline_with_three_clients() {
        let cfg = ConferenceConfig {
            clients: 3,
            image_size: 2 * 1024,
            frames: 20,
            warmup: 4,
            ..ConferenceConfig::default()
        };
        let report = run_socket_conference(&cfg).unwrap();
        assert_eq!(report.validated_frames, 3 * 20);
    }

    #[test]
    fn shared_egress_bucket_limits_rate() {
        let mut cfg = ConferenceConfig {
            clients: 2,
            image_size: 16 * 1024,
            frames: 40,
            warmup: 5,
            ..ConferenceConfig::default()
        };
        let fast = run_socket_conference(&cfg).unwrap();
        cfg.cluster_profile = NetProfile {
            latency: std::time::Duration::ZERO,
            bandwidth: Some(1024 * 1024), // 1 MB/s shared egress
        };
        let slow = run_socket_conference(&cfg).unwrap();
        assert!(
            slow.measurement.fps < fast.measurement.fps,
            "shaped {} !< unshaped {}",
            slow.measurement.fps,
            fast.measurement.fps
        );
        // 2 clients × 32 KB composite per frame = 64 KB/frame at 1 MB/s
        // ⇒ at most ~16 fps in steady state (plus burst allowance).
        assert!(slow.measurement.fps < 40.0, "fps={}", slow.measurement.fps);
    }
}
