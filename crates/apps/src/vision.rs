//! The vision pipeline: task and data parallelism over frame fragments
//! (paper §3.1, Figure 3).
//!
//! A digitizer produces timestamped frames into a channel. A splitter
//! partitions each frame into fragments — **all bearing the frame's
//! timestamp**, distinguished by tag — and places them in a queue. A pool
//! of tracker threads pulls fragments from the queue (data parallelism:
//! any tracker may take any fragment), analyses them, and puts per-
//! fragment results into a results queue. A joiner collects the results
//! *for the same timestamp* and stitches them into a composite analysis
//! record in the output channel — the temporal-correlation step channels
//! make easy.

use std::collections::HashMap;
use std::fmt;

use dstampede_core::{
    ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, StmError, StmResult, StreamItem, Timestamp,
};
use dstampede_runtime::Cluster;
use dstampede_wire::WaitSpec;

use crate::frame::{make_frame, split_frame, track_fragment};

/// Parameters of one vision-pipeline run.
#[derive(Debug, Clone)]
pub struct VisionConfig {
    /// Frames the digitizer produces.
    pub frames: i64,
    /// Frame size in bytes.
    pub frame_size: usize,
    /// Fragments per frame (the data-parallel split factor).
    pub fragments: usize,
    /// Tracker threads pulling fragments.
    pub trackers: usize,
    /// Address spaces to spread the stages over (1 = all local).
    pub address_spaces: u16,
    /// Causal-trace sampling: trace every nth frame timestamp
    /// (0 — the default — disables tracing).
    pub trace_sampling: u64,
}

impl Default for VisionConfig {
    fn default() -> Self {
        VisionConfig {
            frames: 30,
            frame_size: 64 * 1024,
            fragments: 4,
            trackers: 3,
            address_spaces: 1,
            trace_sampling: 0,
        }
    }
}

/// Per-frame analysis record produced by the joiner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisRecord {
    /// The frame's timestamp.
    pub frame: i64,
    /// Per-fragment tracker outputs, indexed by fragment tag.
    pub fragment_results: Vec<u64>,
}

impl StreamItem for AnalysisRecord {
    fn to_item_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 + self.fragment_results.len() * 8);
        out.extend_from_slice(&self.frame.to_be_bytes());
        out.extend_from_slice(&(self.fragment_results.len() as u32).to_be_bytes());
        for r in &self.fragment_results {
            out.extend_from_slice(&r.to_be_bytes());
        }
        out
    }

    fn from_item_bytes(bytes: &[u8]) -> StmResult<Self> {
        if bytes.len() < 12 {
            return Err(StmError::Protocol("analysis record too short".into()));
        }
        let frame = i64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"));
        let n = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        if bytes.len() != 12 + n * 8 {
            return Err(StmError::Protocol("analysis record length mismatch".into()));
        }
        let fragment_results = (0..n)
            .map(|i| u64::from_be_bytes(bytes[12 + i * 8..20 + i * 8].try_into().expect("8 bytes")))
            .collect();
        Ok(AnalysisRecord {
            frame,
            fragment_results,
        })
    }
}

/// The outcome of a vision-pipeline run.
#[derive(Debug, Clone)]
pub struct VisionReport {
    /// Analysis records, in timestamp order.
    pub records: Vec<AnalysisRecord>,
    /// Fragments processed per tracker (work-sharing evidence).
    pub per_tracker_fragments: Vec<u64>,
    /// The cluster-wide causal trace of the run (empty unless
    /// [`VisionConfig::trace_sampling`] was set).
    pub trace: dstampede_obs::TraceDump,
    /// The merged cluster-wide metrics snapshot at the end of the run,
    /// exportable with [`dstampede_obs::Snapshot::to_prometheus`].
    pub stats: dstampede_obs::Snapshot,
}

impl fmt::Display for VisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames analysed by {} trackers",
            self.records.len(),
            self.per_tracker_fragments.len()
        )
    }
}

/// Runs the Figure 3 pipeline and returns the joined analysis records.
///
/// # Errors
///
/// Propagates any runtime error from the pipeline stages.
pub fn run_vision_pipeline(cfg: &VisionConfig) -> StmResult<VisionReport> {
    assert!(cfg.fragments >= 1 && cfg.trackers >= 1);
    let cluster = Cluster::builder()
        .address_spaces(cfg.address_spaces.max(1))
        .listeners(false)
        .trace_sampling(cfg.trace_sampling)
        .build()?;
    let digitizer_space = cluster.space(0)?;
    let tracker_space = cluster.space(cluster.len() as u16 - 1)?;

    // Plumbing: frames channel, fragment queue, results queue, output
    // channel — created across the available address spaces.
    let frames_chan = digitizer_space.create_channel(
        Some("vision/frames".into()),
        ChannelAttrs::builder().capacity(8).build(),
    );
    let frag_queue = tracker_space.create_queue(
        Some("vision/fragments".into()),
        QueueAttrs::builder().capacity(64).build(),
    );
    let results_queue = tracker_space.create_queue(
        Some("vision/results".into()),
        QueueAttrs::builder().capacity(64).build(),
    );
    let output_chan =
        digitizer_space.create_channel(Some("vision/analysis".into()), ChannelAttrs::default());

    // ---- digitizer ----
    let dig_out = digitizer_space
        .open_channel(frames_chan.id())?
        .connect_output()?;
    let dig_cfg = cfg.clone();
    let digitizer = std::thread::spawn(move || -> StmResult<()> {
        for ts in 0..dig_cfg.frames {
            let frame = make_frame(0, ts, dig_cfg.frame_size);
            dig_out.put(Timestamp::new(ts), frame, WaitSpec::Forever)?;
        }
        Ok(())
    });

    // ---- splitter ----
    let split_in = digitizer_space
        .open_channel(frames_chan.id())?
        .connect_input(Interest::FromEarliest)?;
    let split_out = digitizer_space
        .open_queue(frag_queue.id())?
        .connect_output()?;
    let split_cfg = cfg.clone();
    let splitter = std::thread::spawn(move || -> StmResult<()> {
        for ts in 0..split_cfg.frames {
            let t = Timestamp::new(ts);
            let (_, frame) = split_in.get(GetSpec::Exact(t), WaitSpec::Forever)?;
            for frag in split_frame(&frame, split_cfg.fragments) {
                split_out.put(t, frag, WaitSpec::Forever)?;
            }
            split_in.consume_until(t)?;
        }
        Ok(())
    });

    // ---- trackers (work-sharing pool) ----
    let mut trackers = Vec::new();
    for _w in 0..cfg.trackers {
        let inp = tracker_space.open_queue(frag_queue.id())?.connect_input()?;
        let out = tracker_space
            .open_queue(results_queue.id())?
            .connect_output()?;
        trackers.push(std::thread::spawn(move || -> StmResult<u64> {
            let mut processed = 0u64;
            loop {
                match inp.get(WaitSpec::Forever) {
                    Ok((ts, frag, ticket)) => {
                        let result = track_fragment(&frag);
                        let mut payload = Vec::with_capacity(8);
                        payload.extend_from_slice(&result.to_be_bytes());
                        out.put(
                            ts,
                            Item::from_vec(payload).with_tag(frag.tag()),
                            WaitSpec::Forever,
                        )?;
                        inp.consume(ticket)?;
                        processed += 1;
                    }
                    Err(StmError::Closed) => return Ok(processed),
                    Err(e) => return Err(e),
                }
            }
        }));
    }

    // ---- joiner ----
    let join_in = tracker_space
        .open_queue(results_queue.id())?
        .connect_input()?;
    let join_out = digitizer_space
        .open_channel(output_chan.id())?
        .connect_output()?;
    let join_cfg = cfg.clone();
    let joiner = std::thread::spawn(move || -> StmResult<()> {
        let mut partial: HashMap<i64, Vec<Option<u64>>> = HashMap::new();
        let mut joined = 0i64;
        while joined < join_cfg.frames {
            let (ts, item, ticket) = join_in.get(WaitSpec::Forever)?;
            let value = u64::from_be_bytes(
                item.payload()
                    .try_into()
                    .map_err(|_| StmError::Protocol("bad tracker result".into()))?,
            );
            let parts = partial
                .entry(ts.value())
                .or_insert_with(|| vec![None; join_cfg.fragments]);
            parts[item.tag() as usize] = Some(value);
            join_in.consume(ticket)?;
            if parts.iter().all(Option::is_some) {
                let parts = partial.remove(&ts.value()).expect("present");
                let record = AnalysisRecord {
                    frame: ts.value(),
                    fragment_results: parts.into_iter().map(|p| p.expect("all")).collect(),
                };
                join_out.put(ts, record.to_item(), WaitSpec::Forever)?;
                joined += 1;
            }
        }
        Ok(())
    });

    digitizer
        .join()
        .map_err(|_| StmError::Protocol("digitizer panicked".into()))??;
    splitter
        .join()
        .map_err(|_| StmError::Protocol("splitter panicked".into()))??;
    joiner
        .join()
        .map_err(|_| StmError::Protocol("joiner panicked".into()))??;
    // All fragments are processed once the joiner has every record; the
    // trackers drain on queue close.
    frag_queue.close();
    let mut per_tracker_fragments = Vec::new();
    for t in trackers {
        per_tracker_fragments.push(
            t.join()
                .map_err(|_| StmError::Protocol("tracker panicked".into()))??,
        );
    }

    // Read the analysis records back out in order.
    let reader = digitizer_space
        .open_channel(output_chan.id())?
        .connect_input(Interest::FromEarliest)?;
    let mut records = Vec::with_capacity(cfg.frames as usize);
    for ts in 0..cfg.frames {
        let (_, item) = reader.get(GetSpec::Exact(Timestamp::new(ts)), WaitSpec::Forever)?;
        records.push(item.decode::<AnalysisRecord>()?);
        reader.consume_until(Timestamp::new(ts))?;
    }
    let trace = cluster.trace_dump();
    let stats = cluster.stats_snapshot();
    cluster.shutdown();
    Ok(VisionReport {
        records,
        per_tracker_fragments,
        trace,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_record_round_trips() {
        let r = AnalysisRecord {
            frame: 42,
            fragment_results: vec![1, 2, 3],
        };
        let item = r.to_item();
        assert_eq!(item.decode::<AnalysisRecord>().unwrap(), r);
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(AnalysisRecord::from_item_bytes(&[1, 2]).is_err());
        let mut bytes = AnalysisRecord {
            frame: 1,
            fragment_results: vec![5],
        }
        .to_item_bytes();
        bytes.push(0); // trailing byte
        assert!(AnalysisRecord::from_item_bytes(&bytes).is_err());
    }

    #[test]
    fn pipeline_produces_correct_records() {
        let cfg = VisionConfig {
            frames: 10,
            frame_size: 8 * 1024,
            fragments: 4,
            trackers: 3,
            address_spaces: 1,
            trace_sampling: 0,
        };
        let report = run_vision_pipeline(&cfg).unwrap();
        assert_eq!(report.records.len(), 10);
        for (ts, record) in report.records.iter().enumerate() {
            assert_eq!(record.frame, ts as i64);
            assert_eq!(record.fragment_results.len(), 4);
            // Results must match recomputing the split directly.
            let frame = make_frame(0, ts as i64, cfg.frame_size);
            for (i, frag) in split_frame(&frame, 4).iter().enumerate() {
                assert_eq!(record.fragment_results[i], track_fragment(frag));
            }
        }
        // Work sharing: all fragments processed exactly once.
        let total: u64 = report.per_tracker_fragments.iter().sum();
        assert_eq!(total, 10 * 4);
    }

    #[test]
    fn pipeline_spans_address_spaces() {
        let cfg = VisionConfig {
            frames: 6,
            frame_size: 4 * 1024,
            fragments: 2,
            trackers: 2,
            address_spaces: 2,
            trace_sampling: 1,
        };
        let report = run_vision_pipeline(&cfg).unwrap();
        assert_eq!(report.records.len(), 6);
        let total: u64 = report.per_tracker_fragments.iter().sum();
        assert_eq!(total, 6 * 2);
        // With every-frame sampling the report carries a cluster-wide
        // trace whose spans come from both address spaces.
        assert!(!report.trace.spans.is_empty());
        let sources: std::collections::BTreeSet<_> = report
            .trace
            .spans
            .iter()
            .map(|s| s.source.as_str())
            .collect();
        assert!(
            sources.len() >= 2,
            "trace should span both address spaces, saw {sources:?}"
        );
    }
}
