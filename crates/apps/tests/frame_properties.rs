//! Property tests of the frame substrate: splitting, compositing and
//! validation must be mutually consistent for arbitrary geometries.

use proptest::prelude::*;

use dstampede_apps::frame::{
    composite, make_frame, mix_region, split_frame, track_fragment, validate_composite_region,
    validate_frame, FRAME_HEADER,
};
use dstampede_core::Item;

proptest! {
    /// Frames validate for exactly their own (client, frame_no) identity.
    #[test]
    fn frame_identity(
        client in 0u32..64,
        frame_no in 0i64..10_000,
        size in FRAME_HEADER..4096usize,
    ) {
        let f = make_frame(client, frame_no, size);
        prop_assert_eq!(f.len(), size);
        prop_assert!(validate_frame(&f, client, frame_no).is_ok());
        prop_assert!(validate_frame(&f, client + 1, frame_no).is_err());
        prop_assert!(validate_frame(&f, client, frame_no + 1).is_err());
    }

    /// Splitting covers the frame exactly, preserving order and tagging
    /// fragments 0..n.
    #[test]
    fn split_is_a_partition(
        size in FRAME_HEADER..8192usize,
        n in 1usize..12,
    ) {
        let f = make_frame(1, 2, size);
        let frags = split_frame(&f, n);
        prop_assert_eq!(frags.len(), n);
        let mut rebuilt = Vec::new();
        for (i, frag) in frags.iter().enumerate() {
            prop_assert_eq!(frag.tag(), i as u32);
            rebuilt.extend_from_slice(frag.payload());
        }
        prop_assert_eq!(&rebuilt[..], f.payload());
    }

    /// The composite of K frames validates in every region, is invariant
    /// to input order, and equals region-wise mixing.
    #[test]
    fn composite_consistency(
        k in 1usize..6,
        size in FRAME_HEADER..2048usize,
        frame_no in 0i64..100,
        shuffle_seed in any::<u64>(),
    ) {
        let frames: Vec<Item> = (0..k as u32)
            .map(|c| make_frame(c, frame_no, size))
            .collect();

        // A deterministic shuffle of the inputs.
        let mut shuffled = frames.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state as usize) % (i + 1));
        }

        let c1 = composite(&frames);
        let c2 = composite(&shuffled);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(c1.len(), k * size);
        for (i, f) in frames.iter().enumerate() {
            prop_assert!(validate_composite_region(&c1, i, f).is_ok());
        }

        // Region-wise mixing reproduces the whole composite.
        let mut buf = vec![0u8; k * size];
        for (i, f) in frames.iter().enumerate() {
            mix_region(&mut buf, i, f);
        }
        prop_assert_eq!(c1.payload(), &buf[..]);
    }

    /// Corrupting any single composite byte fails exactly the region it
    /// falls in.
    #[test]
    fn corruption_is_localised(
        k in 2usize..5,
        size in FRAME_HEADER..512usize,
        pos_seed in any::<usize>(),
    ) {
        let frames: Vec<Item> = (0..k as u32).map(|c| make_frame(c, 7, size)).collect();
        let good = composite(&frames);
        let pos = pos_seed % good.len();
        let mut bytes = good.payload().to_vec();
        bytes[pos] ^= 0xff;
        let bad = Item::from_vec(bytes);
        let hit_region = pos / size;
        for (i, f) in frames.iter().enumerate() {
            let result = validate_composite_region(&bad, i, f);
            if i == hit_region {
                prop_assert!(result.is_err());
            } else {
                prop_assert!(result.is_ok());
            }
        }
    }

    /// Tracking is a pure function of fragment content.
    #[test]
    fn tracking_is_content_determined(
        size in FRAME_HEADER..2048usize,
        n in 1usize..8,
    ) {
        let f = make_frame(3, 9, size);
        let frags_a = split_frame(&f, n);
        let frags_b = split_frame(&f, n);
        for (a, b) in frags_a.iter().zip(&frags_b) {
            prop_assert_eq!(track_fragment(a), track_fragment(b));
        }
    }
}
