//! Criterion ablation: XDR vs JDR marshalling cost across payload sizes.
//!
//! This quantifies the asymmetry behind the paper's Figures 12 vs 13 —
//! "in C marshalling and unmarshalling arguments involve mostly pointer
//! manipulation, while in Java they involve construction of objects"
//! (§5.1, Result 2). Expect JDR several times slower than XDR, growing
//! with payload size.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dstampede_core::Timestamp;
use dstampede_wire::{Codec, JdrCodec, Request, RequestFrame, WaitSpec, XdrCodec};

fn put_frame(size: usize) -> RequestFrame {
    RequestFrame::new(
        7,
        Request::ChannelPut {
            conn: 3,
            ts: Timestamp::new(42),
            tag: 0,
            payload: Bytes::from(vec![0xa5; size]),
            wait: WaitSpec::Forever,
        },
    )
}

fn encode_decode(c: &mut Criterion) {
    let sizes = [1_000usize, 10_000, 55_000];
    let mut group = c.benchmark_group("codec_encode");
    for size in sizes {
        group.throughput(Throughput::Bytes(size as u64));
        let frame = put_frame(size);
        group.bench_with_input(BenchmarkId::new("xdr", size), &frame, |b, frame| {
            let codec = XdrCodec::new();
            b.iter(|| std::hint::black_box(codec.encode_request(frame).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("jdr", size), &frame, |b, frame| {
            let codec = JdrCodec::new();
            b.iter(|| std::hint::black_box(codec.encode_request(frame).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("codec_decode");
    for size in sizes {
        group.throughput(Throughput::Bytes(size as u64));
        let frame = put_frame(size);
        let xdr_bytes = XdrCodec::new().encode_request(&frame).unwrap().to_bytes();
        let jdr_bytes = JdrCodec::new().encode_request(&frame).unwrap().to_bytes();
        group.bench_with_input(BenchmarkId::new("xdr", size), &xdr_bytes, |b, bytes| {
            let codec = XdrCodec::new();
            b.iter(|| std::hint::black_box(codec.decode_request(bytes).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("jdr", size), &jdr_bytes, |b, bytes| {
            let codec = JdrCodec::new();
            b.iter(|| std::hint::black_box(codec.decode_request(bytes).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, encode_decode);
criterion_main!(benches);
