//! Criterion ablation: REF vs TGC garbage collection.
//!
//! The design note in DESIGN.md calls out the choice between explicit
//! consume-driven reference counting (REF) and transparent virtual-time
//! collection (TGC). This ablation measures the reclamation cost of each
//! for a window of items, and the overhead garbage hooks add.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dstampede_core::{Channel, ChannelAttrs, GcPolicy, Interest, Item, Timestamp, VirtualTime};

const WINDOW: i64 = 256;

fn reclaim_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_reclaim_window");
    for consumers in [1usize, 4] {
        for (label, policy) in [("ref", GcPolicy::Ref), ("tgc", GcPolicy::Transparent)] {
            group.bench_with_input(
                BenchmarkId::new(label, consumers),
                &consumers,
                |b, &consumers| {
                    b.iter_batched(
                        || {
                            let chan =
                                Channel::standalone(ChannelAttrs::builder().gc(policy).build());
                            let out = chan.connect_output();
                            let inputs: Vec<_> = (0..consumers)
                                .map(|_| chan.connect_input(Interest::FromEarliest))
                                .collect();
                            for ts in 0..WINDOW {
                                out.put(Timestamp::new(ts), Item::from_vec(vec![1; 256]))
                                    .unwrap();
                            }
                            (chan, out, inputs)
                        },
                        |(chan, _out, inputs)| {
                            for inp in &inputs {
                                match policy {
                                    GcPolicy::Ref => {
                                        inp.consume_until(Timestamp::new(WINDOW - 1)).unwrap();
                                    }
                                    GcPolicy::Transparent => {
                                        inp.set_vt(VirtualTime::at(Timestamp::new(WINDOW)))
                                            .unwrap();
                                    }
                                }
                            }
                            assert_eq!(chan.live_items(), 0);
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn hook_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_hook_overhead");
    for hooks in [0usize, 1, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(hooks), &hooks, |b, &hooks| {
            let chan = Channel::standalone(ChannelAttrs::default());
            for _ in 0..hooks {
                chan.add_garbage_hook(|e| {
                    std::hint::black_box(e.len);
                });
            }
            let out = chan.connect_output();
            let inp = chan.connect_input(Interest::FromEarliest);
            let mut ts = 0i64;
            b.iter(|| {
                let t = Timestamp::new(ts);
                ts += 1;
                out.put(t, Item::from_vec(vec![1; 256])).unwrap();
                inp.consume_until(t).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, reclaim_window, hook_overhead);
criterion_main!(benches);
