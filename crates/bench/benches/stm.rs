//! Criterion micro-benchmarks for the space-time memory containers:
//! channel put/get/consume cycles, get-spec resolution, and queue
//! work-sharing operations across payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dstampede_core::{
    Channel, ChannelAttrs, GetSpec, Interest, Item, Queue, QueueAttrs, Timestamp,
};

fn channel_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_put_get_consume");
    for size in [1_000usize, 10_000, 60_000] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let chan = Channel::standalone(ChannelAttrs::default());
            let out = chan.connect_output();
            let inp = chan.connect_input(Interest::FromEarliest);
            let payload = Item::from_vec(vec![0xa5; size]);
            let mut ts = 0i64;
            b.iter(|| {
                let t = Timestamp::new(ts);
                ts += 1;
                out.put(t, payload.clone()).unwrap();
                let (_, item) = inp.get(GetSpec::Exact(t)).unwrap();
                std::hint::black_box(item.len());
                inp.consume_until(t).unwrap();
            });
        });
    }
    group.finish();
}

fn channel_get_specs(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_get_spec");
    // Pre-populate a channel with 1000 live items and compare the specs.
    let chan = Channel::standalone(ChannelAttrs::default());
    let out = chan.connect_output();
    let inp = chan.connect_input(Interest::FromEarliest);
    for ts in 0..1000 {
        out.put(Timestamp::new(ts), Item::from_vec(vec![1; 64]))
            .unwrap();
    }
    group.bench_function("exact_mid", |b| {
        b.iter(|| inp.try_get(GetSpec::Exact(Timestamp::new(500))).unwrap())
    });
    group.bench_function("latest", |b| {
        b.iter(|| inp.try_get(GetSpec::Latest).unwrap())
    });
    group.bench_function("earliest", |b| {
        b.iter(|| inp.try_get(GetSpec::Earliest).unwrap())
    });
    group.bench_function("after_mid", |b| {
        b.iter(|| inp.try_get(GetSpec::After(Timestamp::new(500))).unwrap())
    });
    group.finish();
}

fn queue_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_put_get_consume");
    for size in [1_000usize, 10_000, 60_000] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let q = Queue::standalone(QueueAttrs::default());
            let out = q.connect_output();
            let inp = q.connect_input();
            let payload = Item::from_vec(vec![0x5a; size]);
            let mut ts = 0i64;
            b.iter(|| {
                let t = Timestamp::new(ts);
                ts += 1;
                out.put(t, payload.clone()).unwrap();
                let (_, item, ticket) = inp.get().unwrap();
                std::hint::black_box(item.len());
                inp.consume(ticket).unwrap();
            });
        });
    }
    group.finish();
}

fn queue_requeue(c: &mut Criterion) {
    c.bench_function("queue_requeue_cycle", |b| {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(Timestamp::new(0), Item::from_vec(vec![1; 1024]))
            .unwrap();
        b.iter(|| {
            let (_, _, ticket) = inp.get().unwrap();
            inp.requeue(ticket).unwrap();
        });
    });
}

criterion_group!(
    benches,
    channel_cycle,
    channel_get_specs,
    queue_cycle,
    queue_requeue
);
criterion_main!(benches);
