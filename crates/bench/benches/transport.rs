//! Criterion ablation: CLF backends — in-process ("shared memory within
//! an SMP") vs reliable UDP ("UDP over a LAN") — message round trips
//! across sizes.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dstampede_clf::{udp_mesh, ClfTransport, MemFabric, UdpConfig};
use dstampede_core::AsId;

fn mem_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("clf_mem_round_trip");
    for size in [1_000usize, 10_000, 60_000] {
        group.throughput(Throughput::Bytes(size as u64 * 2));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let fabric = MemFabric::new();
            let a = fabric.endpoint(AsId(0));
            let e = fabric.endpoint(AsId(1));
            let echo = std::thread::spawn(move || {
                while let Ok((from, msg)) = e.recv() {
                    if msg.is_empty() {
                        break;
                    }
                    e.send(from, msg).unwrap();
                }
            });
            let msg = Bytes::from(vec![0xa5; size]);
            b.iter(|| {
                a.send(AsId(1), msg.clone()).unwrap();
                let (_, back) = a.recv().unwrap();
                std::hint::black_box(back.len());
            });
            a.send(AsId(1), Bytes::new()).unwrap();
            echo.join().unwrap();
        });
    }
    group.finish();
}

fn udp_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("clf_udp_round_trip");
    group.sample_size(30);
    for size in [1_000usize, 10_000, 60_000] {
        group.throughput(Throughput::Bytes(size as u64 * 2));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut endpoints = udp_mesh(2, UdpConfig::default()).unwrap();
            let e = endpoints.pop().unwrap();
            let a = endpoints.pop().unwrap();
            let echo = std::thread::spawn(move || {
                while let Ok((from, msg)) = e.recv() {
                    if msg.is_empty() {
                        break;
                    }
                    e.send(from, msg).unwrap();
                }
                e.shutdown();
            });
            let msg = Bytes::from(vec![0x5a; size]);
            b.iter(|| {
                a.send(AsId(1), msg.clone()).unwrap();
                let (_, back) = a.recv().unwrap();
                std::hint::black_box(back.len());
            });
            a.send(AsId(1), Bytes::new()).unwrap();
            echo.join().unwrap();
            a.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, mem_round_trip, udp_round_trip);
criterion_main!(benches);
