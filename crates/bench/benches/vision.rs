//! Criterion ablation: data parallelism in the Figure 3 vision pipeline.
//!
//! The paper motivates queues with frame-fragment data parallelism
//! (splitter → tracker pool → joiner). This bench measures whole-pipeline
//! throughput as the tracker pool grows, and the split factor's overhead
//! at a fixed pool size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dstampede_apps::{run_vision_pipeline, VisionConfig};

fn tracker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("vision_tracker_scaling");
    group.sample_size(10);
    for trackers in [1usize, 2, 4] {
        let cfg = VisionConfig {
            frames: 12,
            frame_size: 256 * 1024,
            fragments: 4,
            trackers,
            address_spaces: 1,
            trace_sampling: 0,
        };
        group.throughput(Throughput::Bytes(cfg.frames as u64 * cfg.frame_size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(trackers), &cfg, |b, cfg| {
            b.iter(|| {
                let report = run_vision_pipeline(cfg).expect("pipeline");
                assert_eq!(report.records.len(), cfg.frames as usize);
            });
        });
    }
    group.finish();
}

fn split_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("vision_split_factor");
    group.sample_size(10);
    for fragments in [1usize, 4, 16] {
        let cfg = VisionConfig {
            frames: 12,
            frame_size: 256 * 1024,
            fragments,
            trackers: 4,
            address_spaces: 1,
            trace_sampling: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(fragments), &cfg, |b, cfg| {
            b.iter(|| {
                let report = run_vision_pipeline(cfg).expect("pipeline");
                assert_eq!(report.records.len(), cfg.frames as usize);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, tracker_scaling, split_factor);
criterion_main!(benches);
