//! Table 1 (paper §5.2): delivered bandwidth out of the mixer node.
//!
//! For each (image size, client count) the multi-threaded conference runs
//! and the delivered bandwidth is derived from the measured sustained
//! frame rate by the paper's formula `K² · S · F` (each of K clients
//! receives a composite of size K·S at F frames/sec). Configurations whose
//! frame rate falls below the paper's 10 fps usability threshold are
//! marked, matching the paper's presentation (it omitted such readings).
//!
//! Expected shape (paper): bandwidth grows with K until it saturates near
//! the node's ~50 MB/s egress; the 10 fps threshold is crossed at 5
//! clients for 190 KB images and around 7 clients for the smaller sizes.

use dstampede_apps::{run_dstampede_conference, ConferenceConfig, MixerKind};
use dstampede_bench::{image_sizes, ExpOptions, ResultTable};
use dstampede_clf::NetProfile;

fn main() {
    let opts = ExpOptions::from_args();
    let frames = if opts.quick { 40 } else { 100 };
    let clients: Vec<usize> = if opts.quick {
        vec![2, 4, 7]
    } else {
        vec![2, 3, 4, 5, 6, 7]
    };
    let (cluster_profile, client_profile) = if opts.raw_only {
        (NetProfile::LOOPBACK, NetProfile::LOOPBACK)
    } else {
        (NetProfile::gige_2002(), NetProfile::end_device_2002())
    };

    let mut columns: Vec<String> = vec!["image_kb".to_owned()];
    for k in &clients {
        columns.push(format!("bw_{k}_clients_mbps"));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        "Table 1 — Delivered bandwidth (MB/s) vs image size and clients \
         (values in parentheses fell below the 10 fps threshold)",
        &column_refs,
    );

    for size in image_sizes(opts.quick) {
        let mut row = vec![(size / 1024).to_string()];
        for &k in &clients {
            let cfg = ConferenceConfig {
                clients: k,
                image_size: size,
                frames,
                warmup: frames as u64 / 6,
                mixer: MixerKind::MultiThreaded,
                client_profile,
                cluster_profile,
                channel_capacity: 4,
            };
            let report = run_dstampede_conference(&cfg).expect("conference");
            let bw = report.measurement.bandwidth_mbps();
            if report.measurement.meets_threshold() {
                row.push(format!("{bw:.0}"));
            } else {
                row.push(format!("({bw:.0})"));
            }
            eprintln!(
                "S={}KB K={k}: {:.1}fps -> {bw:.1}MBps",
                size / 1024,
                report.measurement.fps
            );
        }
        table.row(&row);
    }
    table.emit(opts.csv.as_deref());
    println!(
        "Paper shape check: bandwidth saturates near the mixer node's egress \
         (~50 MB/s shaped); sub-threshold cells appear at high K and S (§5.2, Table 1)."
    );
}
