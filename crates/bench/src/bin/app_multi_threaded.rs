//! Figure 15 (paper §5.2): multi-threaded mixer scalability.
//!
//! Sweeps the number of participating clients (2..=7) for each per-client
//! image size and reports the sustained frame rate at the slowest display
//! (the paper's reporting convention). One line per image size.
//!
//! Expected shape (paper): the multi-threaded version beats the
//! single-threaded one (≈ 40 vs ≈ 20 fps at 74 KB / 2 clients on the 2002
//! testbed); frame rate falls as clients or image size grow; once the
//! required mixer-node bandwidth `K²·S·F` hits the node's egress (~50
//! MB/s), the rate collapses below the 10 fps usability threshold —
//! around 7 clients for small images, 5 clients at 190 KB (Table 1).

use dstampede_apps::{run_dstampede_conference, ConferenceConfig, MixerKind};
use dstampede_bench::{image_sizes, ExpOptions, ResultTable};
use dstampede_clf::NetProfile;

fn main() {
    let opts = ExpOptions::from_args();
    let frames = if opts.quick { 40 } else { 100 };
    let clients: Vec<usize> = if opts.quick {
        vec![2, 4, 7]
    } else {
        vec![2, 3, 4, 5, 6, 7]
    };
    let (cluster_profile, client_profile) = if opts.raw_only {
        (NetProfile::LOOPBACK, NetProfile::LOOPBACK)
    } else {
        (NetProfile::gige_2002(), NetProfile::end_device_2002())
    };

    let mut columns: Vec<String> = vec!["clients".to_owned()];
    let sizes = image_sizes(opts.quick);
    for size in &sizes {
        columns.push(format!("fps_{}kb", size / 1024));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        "Figure 15 — Sustained frame rate vs clients, multi-threaded mixer",
        &column_refs,
    );

    for &k in &clients {
        let mut row = vec![k.to_string()];
        for &size in &sizes {
            let cfg = ConferenceConfig {
                clients: k,
                image_size: size,
                frames,
                warmup: frames as u64 / 6,
                mixer: MixerKind::MultiThreaded,
                client_profile,
                cluster_profile,
                channel_capacity: 4,
            };
            let report = run_dstampede_conference(&cfg).expect("conference");
            row.push(format!("{:.1}", report.measurement.fps));
            eprintln!(
                "K={k} S={}KB: {:.1}fps (bw={:.1}MBps)",
                size / 1024,
                report.measurement.fps,
                report.measurement.bandwidth_mbps()
            );
        }
        table.row(&row);
    }
    table.emit(opts.csv.as_deref());
    println!(
        "Paper shape check: rates fall with clients and image size; the knee \
         appears where K^2*S*F approaches the mixer node's ~50 MB/s egress \
         (§5.2, Figure 15)."
    );
}
