//! Figure 14 (paper §5.2): sockets vs D-Stampede channels, single-threaded
//! mixer, two clients.
//!
//! Sweeps the per-client image size over the paper's range (74–190 KB)
//! and reports the sustained frame rate at the slowest display for the
//! socket baseline (version 1) and the single-threaded D-Stampede version
//! (version 2).
//!
//! Expected shape (paper): the two curves are comparable across the whole
//! range (e.g. both ≈ 18 fps at 110 KB on the 2002 testbed), declining as
//! the image grows. With `--raw` the modern-loopback numbers are reported
//! instead of the 2002-shaped ones; absolute rates are then much higher
//! but the comparability and the decline with size persist.

use dstampede_apps::{
    run_dstampede_conference, run_socket_conference, ConferenceConfig, MixerKind,
};
use dstampede_bench::{image_sizes, ExpOptions, ResultTable};
use dstampede_clf::NetProfile;

fn main() {
    let opts = ExpOptions::from_args();
    let frames = if opts.quick { 40 } else { 120 };
    let (cluster_profile, client_profile) = if opts.raw_only {
        (NetProfile::LOOPBACK, NetProfile::LOOPBACK)
    } else {
        (NetProfile::gige_2002(), NetProfile::end_device_2002())
    };

    let mut table = ResultTable::new(
        "Figure 14 — Sustained frame rate, 2 clients, single-threaded mixers",
        &["image_kb", "socket_fps", "dstampede_fps"],
    );
    for size in image_sizes(opts.quick) {
        let cfg = ConferenceConfig {
            clients: 2,
            image_size: size,
            frames,
            warmup: frames as u64 / 6,
            mixer: MixerKind::SingleThreaded,
            client_profile,
            cluster_profile,
            channel_capacity: 4,
        };
        let socket = run_socket_conference(&cfg).expect("socket version");
        let dstampede = run_dstampede_conference(&cfg).expect("dstampede version");
        table.row(&[
            (size / 1024).to_string(),
            format!("{:.1}", socket.measurement.fps),
            format!("{:.1}", dstampede.measurement.fps),
        ]);
        eprintln!(
            "S={}KB: socket={:.1}fps dstampede={:.1}fps",
            size / 1024,
            socket.measurement.fps,
            dstampede.measurement.fps
        );
    }
    table.emit(opts.csv.as_deref());
    println!(
        "Paper shape check: socket and D-Stampede curves comparable, both \
         declining with image size (§5.2, Figure 14)."
    );

    // The paper's footnote 2: which single-threaded configurations beyond
    // 2 clients still meet the 10 fps threshold (3 participants at
    // 74/89/106 KB, 4 at 74 KB, none at 5+ on the 2002 testbed).
    let mut footnote = ResultTable::new(
        "Figure 14 footnote — single-threaded D-Stampede ≥10 fps configurations",
        &["clients", "image_kb", "fps", "meets_threshold"],
    );
    let footnote_sizes: &[usize] = if opts.quick {
        &[74 * 1024]
    } else {
        &[74 * 1024, 89 * 1024, 106 * 1024]
    };
    for k in [3usize, 4, 5] {
        for &size in footnote_sizes {
            let cfg = ConferenceConfig {
                clients: k,
                image_size: size,
                frames: frames / 2,
                warmup: frames as u64 / 12,
                mixer: MixerKind::SingleThreaded,
                client_profile,
                cluster_profile,
                channel_capacity: 4,
            };
            let report = run_dstampede_conference(&cfg).expect("dstampede version");
            footnote.row(&[
                k.to_string(),
                (size / 1024).to_string(),
                format!("{:.1}", report.measurement.fps),
                report.measurement.meets_threshold().to_string(),
            ]);
            eprintln!(
                "footnote K={k} S={}KB: {:.1}fps",
                size / 1024,
                report.measurement.fps
            );
        }
    }
    footnote.emit(None);
}
