//! Experiment 1 (paper §5.1, Figure 11): intra-cluster data exchange.
//!
//! Compares a D-Stampede put+get between two cluster address spaces
//! (channel located in the consumer's address space, producer remote —
//! Figure 7) against raw UDP and raw TCP producer/consumer pairs. As in
//! the paper, the raw baselines measure half of a message round trip and
//! the D-Stampede figure is the sum of the (non-overlapping) put and get.
//!
//! Message sizes sweep 1000..=60000 bytes; the 64 KB UDP datagram limit
//! the paper cites bounds the sweep exactly as it did in 2002.
//!
//! Two modes are reported:
//!
//! * **raw** — today's loopback. Wire time is negligible, so the numbers
//!   expose D-Stampede's absolute software overhead (marshalling, CLF
//!   protocol, dispatch) as a near-constant additive cost.
//! * **2002-shaped** — every link carries the paper's Gigabit-Ethernet-era
//!   latency/bandwidth. Here the paper's *relative* claims reproduce:
//!   D-Stampede within ~2× of UDP at large payloads and closely tracking
//!   TCP, because the wire dominates and the overhead is additive.

use std::io::{Read, Write};
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

use dstampede_bench::{measure_us, median_us, message_sizes, ExpOptions, ResultTable};
use dstampede_clf::shaping::precise_sleep;
use dstampede_clf::{NetProfile, TokenBucket};
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_runtime::{Cluster, ClusterTransport};
use dstampede_wire::{read_frame, write_frame, WaitSpec};

/// Sender-side shaping of one message leg: bandwidth debt plus latency.
struct Leg {
    bucket: Option<Arc<TokenBucket>>,
    latency: Duration,
}

impl Leg {
    fn new(profile: Option<NetProfile>) -> Self {
        match profile {
            Some(p) => Leg {
                bucket: p.bandwidth.map(|r| Arc::new(TokenBucket::new(r))),
                latency: p.latency,
            },
            None => Leg {
                bucket: None,
                latency: Duration::ZERO,
            },
        }
    }

    fn charge(&self, bytes: usize) {
        if let Some(b) = &self.bucket {
            b.consume(bytes);
        }
        precise_sleep(self.latency);
    }
}

fn dstampede_latency(size: usize, iters: usize, profile: Option<NetProfile>) -> f64 {
    // Channel in the consumer's address space (AS 1); producer in AS 0.
    let mut builder = Cluster::builder()
        .address_spaces(2)
        .transport(ClusterTransport::Udp(dstampede_clf::UdpConfig::default()))
        .listeners(false);
    if let Some(p) = profile {
        builder = builder.shaped(p);
    }
    let cluster = builder.build().expect("cluster");
    let consumer_space = cluster.space(1).expect("as1");
    let producer_space = cluster.space(0).expect("as0");
    let chan = consumer_space.create_channel(None, ChannelAttrs::default());
    let out = producer_space
        .open_channel(chan.id())
        .expect("open")
        .connect_output()
        .expect("connect");
    let inp = consumer_space
        .open_channel(chan.id())
        .expect("open")
        .connect_input(Interest::FromEarliest)
        .expect("connect");

    let mut ts = 0i64;
    let samples = measure_us(8, iters, || {
        let t = Timestamp::new(ts);
        ts += 1;
        // put (remote) completes before the get starts: non-overlapping,
        // as orchestrated in the paper.
        out.put(t, Item::from_vec(vec![0xa5; size]), WaitSpec::Forever)
            .expect("put");
        let (_, item) = inp.get(GetSpec::Exact(t), WaitSpec::Forever).expect("get");
        assert_eq!(item.len(), size);
        inp.consume_until(t).expect("consume");
    });
    let result = median_us(&samples);
    drop((out, inp));
    cluster.shutdown();
    result
}

fn udp_latency(size: usize, iters: usize, profile: Option<NetProfile>) -> f64 {
    let a = UdpSocket::bind("127.0.0.1:0").expect("bind");
    let b = UdpSocket::bind("127.0.0.1:0").expect("bind");
    a.connect(b.local_addr().expect("addr")).expect("connect");
    b.connect(a.local_addr().expect("addr")).expect("connect");
    a.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    b.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let leg = Leg::new(profile);
    let msg = vec![0x5a_u8; size];
    let mut buf = vec![0u8; size];
    let samples = measure_us(8, iters, || {
        // One full exchange cycle: a→b then b→a; latency is half. Each
        // leg is charged at its sender.
        leg.charge(size);
        a.send(&msg).expect("send");
        let n = b.recv(&mut buf).expect("recv");
        assert_eq!(n, size);
        leg.charge(size);
        b.send(&msg).expect("send");
        let n = a.recv(&mut buf).expect("recv");
        assert_eq!(n, size);
    });
    median_us(&samples) / 2.0
}

fn tcp_latency(size: usize, iters: usize, profile: Option<NetProfile>) -> f64 {
    let listener = dstampede_clf::tcp_listen_loopback().expect("listen");
    let addr = listener.local_addr().expect("addr");
    let echo = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).expect("nodelay");
        let mut buf = vec![0u8; 64 * 1024];
        // Echo until the peer closes.
        loop {
            let mut len = [0u8; 4];
            if s.read_exact(&mut len).is_err() {
                return;
            }
            let n = u32::from_be_bytes(len) as usize;
            s.read_exact(&mut buf[..n]).expect("read");
            s.write_all(&len).expect("write");
            s.write_all(&buf[..n]).expect("write");
        }
    });

    let leg = Leg::new(profile);
    let mut stream = dstampede_clf::tcp_connect(addr).expect("connect");
    let msg = vec![0xc3_u8; size];
    let samples = measure_us(8, iters, || {
        leg.charge(size); // outbound leg
        write_frame(&mut stream, &msg).expect("send");
        leg.charge(size); // echo leg (the raw echo thread is unshaped)
        let back = read_frame(&mut stream).expect("recv");
        assert_eq!(back.len(), size);
    });
    drop(stream);
    echo.join().expect("echo thread");
    median_us(&samples) / 2.0
}

fn main() {
    let opts = ExpOptions::from_args();
    let iters = if opts.quick { 12 } else { 40 };
    let shaped = (!opts.raw_only).then(NetProfile::gige_2002);

    let mut columns = vec!["size_bytes", "dstampede_us", "udp_us", "tcp_us"];
    if shaped.is_some() {
        columns.extend(["dstampede_2002_us", "udp_2002_us", "tcp_2002_us"]);
    }
    let mut table = ResultTable::new(
        "Figure 11 — Intra-cluster data exchange latency (µs)",
        &columns,
    );
    for size in message_sizes(opts.quick) {
        let ds = dstampede_latency(size, iters, None);
        let udp = udp_latency(size, iters, None);
        let tcp = tcp_latency(size, iters, None);
        let mut row = vec![
            size.to_string(),
            format!("{ds:.1}"),
            format!("{udp:.1}"),
            format!("{tcp:.1}"),
        ];
        if shaped.is_some() {
            let ds2 = dstampede_latency(size, iters, shaped);
            let udp2 = udp_latency(size, iters, shaped);
            let tcp2 = tcp_latency(size, iters, shaped);
            row.extend([
                format!("{ds2:.1}"),
                format!("{udp2:.1}"),
                format!("{tcp2:.1}"),
            ]);
            eprintln!(
                "size={size}: raw ds/udp/tcp={ds:.1}/{udp:.1}/{tcp:.1} \
                 2002 ds/udp/tcp={ds2:.1}/{udp2:.1}/{tcp2:.1}"
            );
        } else {
            eprintln!("size={size}: dstampede={ds:.1}us udp={udp:.1}us tcp={tcp:.1}us");
        }
        table.row(&row);
    }
    table.emit(opts.csv.as_deref());
    println!(
        "Paper shape check (2002-shaped columns): D-Stampede within ~2x of raw \
         UDP at large payloads and tracking TCP closely (§5.1, Figure 11). The \
         raw columns isolate the additive software overhead on modern hardware."
    );
}
