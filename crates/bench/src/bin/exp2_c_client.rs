//! Experiment 2 (paper §5.1, Figure 12): C-client end device ↔ cluster.
//!
//! See [`dstampede_bench::exp_client`] for the measurement methodology.

use dstampede_bench::exp_client::run;
use dstampede_bench::ExpOptions;
use dstampede_wire::CodecId;

fn main() {
    let opts = ExpOptions::from_args();
    run(CodecId::Xdr, "Figure 12", &opts);
}
