//! Experiment 3 (paper §5.1, Figure 13): Java-client end device ↔ cluster.
//!
//! Identical to Experiment 2 except the end devices use the Java client
//! library (JDR object marshalling). The paper's Result 2: raw TCP looks
//! the same from C and Java, but D-Stampede over JDR is much slower than
//! over XDR because marshalling constructs objects. See
//! [`dstampede_bench::exp_client`] for the measurement methodology.

use dstampede_bench::exp_client::run;
use dstampede_bench::ExpOptions;
use dstampede_wire::CodecId;

fn main() {
    let opts = ExpOptions::from_args();
    run(CodecId::Jdr, "Figure 13", &opts);
}
