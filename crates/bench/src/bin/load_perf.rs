//! `load_perf` — open-loop saturation harness for the cluster.
//!
//! Simulates 10^4–10^6 end-device sessions multiplexed over a few
//! in-process address spaces (the paper's surrogate model: many
//! devices, few sockets), driving a put → get → consume mix against
//! placed channels and queues at a **fixed arrival rate**. Unlike the
//! closed-loop `stm_perf` cycle, the schedule does not wait for the
//! previous operation: every operation has an *intended start time*
//! (`t0 + k * interval`), latency is measured from that intended start,
//! and missed arrivals during a stall are backfilled into the corrected
//! histogram (`dstampede_obs::recording::LatencyRecorder`). A stalled
//! server therefore shows up as latency — the paper's Table 1 / Fig 14
//! regime — instead of quietly shrinking the denominator.
//!
//! ```text
//! load_perf [--suite smoke] [--out FILE]
//!           [--sessions N] [--rates R1,R2,..] [--workers W]
//!           [--spaces S] [--channels C] [--queues Q] [--payload B]
//!           [--warmup-ms MS] [--duration-ms MS]
//!           [--churn-ms MS] [--churn-pct P] [--stall-ms MS]
//!           [--late-drop-ms MS] [--max-occupancy N] [--seed SEED]
//!           [--session-ab N] [--ab-ratio R] [--ab-session-rate OPS]
//!           [--ab-p99-budget-us US] [--ab-warmup-ms MS]
//!           [--ab-duration-ms MS] [--thread-ceiling N]
//! ```
//!
//! `--session-ab N` appends the sessions-per-core A/B over **real TCP
//! sessions**: N end devices against a thread-per-session cluster,
//! then `--ab-ratio × N` (default 4×) against a reactor cluster, both
//! open-loop at `--ab-session-rate` ops/s per session, both held to
//! the same corrected-p99 budget (`--ab-p99-budget-us`). The run
//! fails unless both sides meet the budget, the legacy side really
//! spent one thread per session, and the reactor side's resident
//! thread growth stayed O(cores). `--thread-ceiling N` then holds N
//! bare attached sessions on the reactor cluster to probe the thread
//! ceiling at a scale the latency phases don't reach. Results land in
//! a `session_ab` section of the report, enforced by the CI load gate.
//!
//! Per rate the run is phased — warmup (unrecorded), steady (the sweep
//! entry), and optionally churn (sessions continuously leave, die, and
//! join at `--churn-pct` percent of the population per second under a
//! seeded `FaultPlan`, while aggregate STM occupancy — the GC horizon,
//! since every timestamp is one item — must stay under
//! `--max-occupancy`). Phases are separated with
//! `HistogramWindow`/counter deltas over one continuously-recording
//! registry, so the flight recorder and the `watch` dashboard see the
//! run live (`load/offered_ops`, `load/achieved_ops`, `load/p99_us`).
//!
//! `--stall-ms` appends a paired honesty check at the reference (first)
//! rate: one worker sleeps mid-phase, and the run fails unless the
//! corrected p99 dominates the naive (service-time) p99 — the
//! coordinated-omission fix demonstrably engaged.
//!
//! In-process sessions release their GC cursor on drop, so churn's
//! "kill" exercises abrupt replacement without a detach call; the
//! leaked-cursor crash path (a TCP client vanishing) is covered by the
//! `churn` drill in `crates/runtime/tests`, which runs real listeners.
//!
//! The report (`--out`, schema `bench-load-v1`) is the committed
//! `BENCH_load.json` trajectory the CI `load-gate` diffs against.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_clf::FaultPlan;
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, Timestamp};
use dstampede_obs::recording::{HistogramWindow, LatencyRecorder};
use dstampede_obs::{Counter, HistogramSample, MetricId};
use dstampede_runtime::proxy::{ChanInput, ChanOutput, QueueInput, QueueOutput};
use dstampede_runtime::{Cluster, RecorderConfig};
use dstampede_wire::WaitSpec;

/// Everything a run needs, parsed from argv (or the smoke preset).
#[derive(Debug, Clone)]
struct Config {
    out: Option<String>,
    sessions: usize,
    rates: Vec<u64>,
    workers: usize,
    spaces: u16,
    channels: usize,
    queues: usize,
    payload: usize,
    warmup_ms: u64,
    duration_ms: u64,
    churn_ms: u64,
    churn_pct: f64,
    stall_ms: u64,
    late_drop_ms: u64,
    max_occupancy: i64,
    seed: u64,
    /// Real-TCP sessions-per-core A/B: legacy session count (0 = off).
    session_ab: usize,
    /// Reactor side holds `ab_ratio ×` the legacy session count.
    ab_ratio: usize,
    /// Open-loop arrival rate per session, ops/s.
    ab_session_rate: f64,
    /// Corrected-p99 budget both sides must meet, µs.
    ab_p99_budget_us: u64,
    ab_warmup_ms: u64,
    ab_duration_ms: u64,
    /// Bare-attach scale probe on the reactor cluster (0 = off).
    thread_ceiling: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            out: None,
            sessions: 100_000,
            rates: vec![20_000, 50_000, 100_000],
            workers: std::thread::available_parallelism()
                .map(|n| n.get().clamp(2, 8))
                .unwrap_or(4),
            spaces: 2,
            channels: 8,
            queues: 2,
            payload: 64,
            warmup_ms: 500,
            duration_ms: 3_000,
            churn_ms: 0,
            churn_pct: 20.0,
            stall_ms: 0,
            late_drop_ms: 2_000,
            max_occupancy: 0, // 0 = auto: 4 * sessions + 4096
            seed: 42,
            session_ab: 0,
            ab_ratio: 4,
            ab_session_rate: 2.0,
            ab_p99_budget_us: 25_000,
            ab_warmup_ms: 1_500,
            ab_duration_ms: 5_000,
            thread_ceiling: 0,
        }
    }
}

impl Config {
    fn smoke() -> Self {
        Config {
            sessions: 5_000,
            rates: vec![2_000, 8_000],
            workers: 2,
            warmup_ms: 800,
            duration_ms: 1_500,
            churn_ms: 800,
            stall_ms: 120,
            ..Config::default()
        }
    }

    fn occupancy_bound(&self) -> i64 {
        if self.max_occupancy > 0 {
            self.max_occupancy
        } else {
            4 * self.sessions as i64 + 4_096
        }
    }
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--suite" => {
                let kind = value("--suite");
                assert_eq!(kind, "smoke", "unknown suite {kind:?} (expected smoke)");
                let out = config.out.take();
                config = Config::smoke();
                config.out = out;
            }
            "--out" => config.out = Some(value("--out")),
            "--sessions" => config.sessions = value("--sessions").parse().expect("--sessions"),
            "--rates" => {
                config.rates = value("--rates")
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates"))
                    .collect();
                assert!(!config.rates.is_empty(), "--rates needs at least one rate");
            }
            "--workers" => config.workers = value("--workers").parse().expect("--workers"),
            "--spaces" => config.spaces = value("--spaces").parse().expect("--spaces"),
            "--channels" => config.channels = value("--channels").parse().expect("--channels"),
            "--queues" => config.queues = value("--queues").parse().expect("--queues"),
            "--payload" => config.payload = value("--payload").parse().expect("--payload"),
            "--warmup-ms" => config.warmup_ms = value("--warmup-ms").parse().expect("--warmup-ms"),
            "--duration-ms" => {
                config.duration_ms = value("--duration-ms").parse().expect("--duration-ms");
            }
            "--churn-ms" => config.churn_ms = value("--churn-ms").parse().expect("--churn-ms"),
            "--churn-pct" => config.churn_pct = value("--churn-pct").parse().expect("--churn-pct"),
            "--stall-ms" => config.stall_ms = value("--stall-ms").parse().expect("--stall-ms"),
            "--late-drop-ms" => {
                config.late_drop_ms = value("--late-drop-ms").parse().expect("--late-drop-ms");
            }
            "--max-occupancy" => {
                config.max_occupancy = value("--max-occupancy").parse().expect("--max-occupancy");
            }
            "--seed" => config.seed = value("--seed").parse().expect("--seed"),
            "--session-ab" => {
                config.session_ab = value("--session-ab").parse().expect("--session-ab")
            }
            "--ab-ratio" => config.ab_ratio = value("--ab-ratio").parse().expect("--ab-ratio"),
            "--ab-session-rate" => {
                config.ab_session_rate = value("--ab-session-rate")
                    .parse()
                    .expect("--ab-session-rate");
            }
            "--ab-p99-budget-us" => {
                config.ab_p99_budget_us = value("--ab-p99-budget-us")
                    .parse()
                    .expect("--ab-p99-budget-us");
            }
            "--ab-warmup-ms" => {
                config.ab_warmup_ms = value("--ab-warmup-ms").parse().expect("--ab-warmup-ms");
            }
            "--ab-duration-ms" => {
                config.ab_duration_ms =
                    value("--ab-duration-ms").parse().expect("--ab-duration-ms");
            }
            "--thread-ceiling" => {
                config.thread_ceiling =
                    value("--thread-ceiling").parse().expect("--thread-ceiling");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(config.workers > 0, "--workers must be positive");
    assert!(
        config.channels + config.queues > 0,
        "need at least one container"
    );
    assert!(
        config.sessions >= config.workers,
        "more workers than sessions"
    );
    config
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One virtual end-device session: a producer and a consumer connection
/// to one container, sharing that container's timestamp clock with
/// every other session on it (so all cursors advance together and the
/// GC horizon stays bounded).
enum Session {
    Chan {
        container: usize,
        out: ChanOutput,
        inp: ChanInput,
    },
    Queue {
        container: usize,
        out: QueueOutput,
        inp: QueueInput,
    },
}

/// The placed containers: ids plus per-container shared clocks.
struct Containers {
    chans: Vec<dstampede_core::ChanId>,
    queues: Vec<dstampede_core::QueueId>,
    clocks: Vec<Arc<AtomicI64>>,
}

impl Containers {
    fn count(&self) -> usize {
        self.chans.len() + self.queues.len()
    }
}

/// Opens session `sid`'s connections from its home space. Container
/// index < channels = a channel session, else a queue session.
fn open_session(cluster: &Cluster, containers: &Containers, sid: usize) -> Session {
    let spaces = cluster.spaces();
    let home = &spaces[sid % spaces.len()];
    let container = sid % containers.count();
    if container < containers.chans.len() {
        let chan = home
            .open_channel(containers.chans[container])
            .expect("open channel");
        Session::Chan {
            container,
            out: chan.connect_output().expect("connect output"),
            inp: chan
                .connect_input(Interest::FromLatest)
                .expect("connect input"),
        }
    } else {
        let queue = home
            .open_queue(containers.queues[container - containers.chans.len()])
            .expect("open queue");
        Session::Queue {
            container,
            out: queue.connect_output().expect("connect output"),
            inp: queue.connect_input().expect("connect input"),
        }
    }
}

/// Shared worker-visible state for one whole run.
struct Shared {
    recorder: LatencyRecorder,
    offered: Arc<Counter>,
    achieved: Arc<Counter>,
    dropped: Arc<Counter>,
    errors: Arc<Counter>,
    churns: Arc<Counter>,
    /// Inter-arrival gap per worker for the current rate block, in ns.
    interval_ns: AtomicU64,
    /// Churn phase active: workers interleave session replacement.
    churn_on: AtomicBool,
    /// One-shot injected stall (ms); the first worker to see it sleeps.
    stall_ms: AtomicU64,
    stop: AtomicBool,
}

/// One worker's open loop over its own slice of sessions.
#[allow(clippy::needless_pass_by_value)]
fn worker_loop(
    cluster: Arc<Cluster>,
    containers: Arc<Containers>,
    shared: Arc<Shared>,
    config: Config,
    worker: usize,
    mut sessions: Vec<(usize, Session)>,
    payload: Vec<u8>,
) -> Vec<(usize, Session)> {
    let mut rng = config.seed ^ (worker as u64).wrapping_mul(0x9e37_79b9);
    let late_drop = Duration::from_millis(config.late_drop_ms);
    // Churn schedule: replace sessions so the whole population turns
    // over at churn_pct %/s, split evenly across workers.
    let churn_gap = if config.churn_pct > 0.0 {
        let per_worker_per_sec =
            config.sessions as f64 * config.churn_pct / 100.0 / config.workers as f64;
        Duration::from_secs_f64(1.0 / per_worker_per_sec.max(1e-9))
    } else {
        Duration::from_secs(3_600)
    };
    let mut next_churn: Option<Instant> = None;
    let mut churn_idx = 0usize;

    let mut t0 = Instant::now();
    let mut interval_ns = shared.interval_ns.load(Ordering::Acquire);
    let mut k: u64 = 0;
    let mut sid = 0usize;
    while !shared.stop.load(Ordering::Acquire) {
        // Rate changes restart the schedule from "now".
        let current = shared.interval_ns.load(Ordering::Acquire);
        if current != interval_ns {
            interval_ns = current;
            t0 = Instant::now();
            k = 0;
        }
        let interval = Duration::from_nanos(interval_ns);

        // The injected stall: first worker to claim it sleeps, which
        // makes every one of its subsequent intended starts late.
        let stall = shared.stall_ms.swap(0, Ordering::AcqRel);
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }

        let intended = t0 + Duration::from_nanos(interval_ns.saturating_mul(k));
        k += 1;
        shared.offered.inc();
        let mut now = Instant::now();
        if intended > now {
            hybrid_sleep(intended - now);
            now = Instant::now();
        } else if now.duration_since(intended) > late_drop {
            // Hopelessly behind schedule: this arrival is a drop (the
            // device would have timed out), not a latency sample.
            shared.dropped.inc();
            continue;
        }

        let session = &sessions[sid].1;
        let svc_start = now;
        match run_op(session, containers.as_ref(), &payload) {
            Ok(()) => {
                let end = Instant::now();
                shared.achieved.inc();
                shared.recorder.record_op(
                    duration_us(end.duration_since(intended)),
                    duration_us(end.duration_since(svc_start)),
                    duration_us(interval),
                );
            }
            Err(_) => {
                shared.errors.inc();
            }
        }
        sid = (sid + 1) % sessions.len();

        // Session churn, interleaved on its own schedule.
        if shared.churn_on.load(Ordering::Acquire) {
            let due = *next_churn.get_or_insert_with(Instant::now);
            if Instant::now() >= due {
                next_churn = Some(due + churn_gap);
                let victim = churn_idx % sessions.len();
                churn_idx += 1;
                let orig_sid = sessions[victim].0;
                let (_, old) = std::mem::replace(
                    &mut sessions[victim],
                    (orig_sid, open_session(&cluster, &containers, orig_sid)),
                );
                // Leave (explicit disconnect) or abrupt drop, seeded;
                // both release the cursor in-process — see module docs.
                if splitmix64(&mut rng) & 1 == 0 {
                    match &old {
                        Session::Chan { out, inp, .. } => {
                            out.disconnect();
                            inp.disconnect();
                        }
                        Session::Queue { out, inp, .. } => {
                            out.disconnect();
                            inp.disconnect();
                        }
                    }
                }
                drop(old);
                shared.churns.inc();
            }
        } else {
            next_churn = None;
        }
    }
    sessions
}

/// One session operation: draw a fresh timestamp from the container's
/// shared clock, put, get it back, consume.
fn run_op(session: &Session, containers: &Containers, payload: &[u8]) -> Result<(), ()> {
    match session {
        Session::Chan {
            container,
            out,
            inp,
        } => {
            let ts = Timestamp::new(containers.clocks[*container].fetch_add(1, Ordering::Relaxed));
            let item = Item::copy_from_slice(payload);
            out.put(ts, item, WaitSpec::NonBlocking).map_err(|_| ())?;
            inp.get(GetSpec::Exact(ts), WaitSpec::NonBlocking)
                .map_err(|_| ())?;
            inp.consume_until(ts).map_err(|_| ())
        }
        Session::Queue {
            container,
            out,
            inp,
        } => {
            let ts = Timestamp::new(containers.clocks[*container].fetch_add(1, Ordering::Relaxed));
            let item = Item::copy_from_slice(payload);
            out.put(ts, item, WaitSpec::NonBlocking).map_err(|_| ())?;
            // The queue hands back the oldest item — possibly another
            // session's; tickets make the consume exact.
            let (_, _, ticket) = inp.get(WaitSpec::NonBlocking).map_err(|_| ())?;
            inp.consume(ticket).map_err(|_| ())
        }
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Sleep for coarse gaps, yield-spin the last stretch: microsecond
/// schedules can't afford a 1 ms+ kernel sleep quantum per op.
fn hybrid_sleep(wait: Duration) {
    if wait > Duration::from_millis(2) {
        std::thread::sleep(wait - Duration::from_millis(1));
    }
    let deadline = Instant::now() + wait.min(Duration::from_millis(2));
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// A phase's readout: counter deltas plus the corrected/naive windows.
struct PhaseStats {
    secs: f64,
    offered: u64,
    achieved: u64,
    dropped: u64,
    errors: u64,
    churns: u64,
    corrected: HistogramSample,
    naive: HistogramSample,
    backfilled: u64,
}

impl PhaseStats {
    fn achieved_rate(&self) -> f64 {
        if self.secs > 0.0 {
            self.achieved as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Phase bookkeeping: snapshots counters and windows at boundaries.
struct PhaseCursor {
    offered: u64,
    achieved: u64,
    dropped: u64,
    errors: u64,
    churns: u64,
    backfilled: u64,
    corrected: HistogramWindow,
    naive: HistogramWindow,
    started: Instant,
}

impl PhaseCursor {
    fn open(shared: &Shared) -> Self {
        let mut corrected = HistogramWindow::new();
        let mut naive = HistogramWindow::new();
        let _ = corrected.advance(shared.recorder.corrected(), window_id());
        let _ = naive.advance(shared.recorder.naive(), window_id());
        PhaseCursor {
            offered: shared.offered.get(),
            achieved: shared.achieved.get(),
            dropped: shared.dropped.get(),
            errors: shared.errors.get(),
            churns: shared.churns.get(),
            backfilled: shared.recorder.backfilled(),
            corrected,
            naive,
            started: Instant::now(),
        }
    }

    fn close(mut self, shared: &Shared) -> PhaseStats {
        PhaseStats {
            secs: self.started.elapsed().as_secs_f64(),
            offered: shared.offered.get() - self.offered,
            achieved: shared.achieved.get() - self.achieved,
            dropped: shared.dropped.get() - self.dropped,
            errors: shared.errors.get() - self.errors,
            churns: shared.churns.get() - self.churns,
            corrected: self
                .corrected
                .advance(shared.recorder.corrected(), window_id()),
            naive: self.naive.advance(shared.recorder.naive(), window_id()),
            backfilled: shared.recorder.backfilled() - self.backfilled,
        }
    }
}

fn window_id() -> MetricId {
    MetricId::new("load", "latency_us", &[])
}

/// Sleeps a phase out in short steps, keeping the live dashboard series
/// (p99 gauge, occupancy watermark) fresh; returns the max STM
/// occupancy observed.
fn run_phase(cluster: &Cluster, shared: &Shared, live: &mut LiveSeries, ms: u64) -> i64 {
    let deadline = Instant::now() + Duration::from_millis(ms);
    let mut max_occupancy = 0i64;
    while Instant::now() < deadline {
        let left = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(left.min(Duration::from_millis(250)));
        max_occupancy = max_occupancy.max(live.tick(cluster, shared));
    }
    max_occupancy
}

/// Publishes per-tick derived series into the registry the flight
/// recorder samples, so `watch` can plot a live run.
struct LiveSeries {
    window: HistogramWindow,
    p99: Arc<dstampede_obs::Gauge>,
    occupancy: Arc<dstampede_obs::Gauge>,
}

impl LiveSeries {
    fn new(cluster: &Cluster, shared: &Shared) -> Self {
        let metrics = cluster.spaces()[0].metrics();
        LiveSeries {
            window: HistogramWindow::opened_at(shared.recorder.corrected()),
            p99: metrics.gauge("load", "p99_us"),
            occupancy: metrics.gauge("load", "occupancy"),
        }
    }

    /// One dashboard tick; returns current cluster STM occupancy.
    fn tick(&mut self, cluster: &Cluster, shared: &Shared) -> i64 {
        let delta = self
            .window
            .advance(shared.recorder.corrected(), window_id());
        if delta.count > 0 {
            self.p99
                .set(i64::try_from(delta.quantile(0.99)).unwrap_or(i64::MAX));
        }
        let occupancy: i64 = cluster
            .spaces()
            .iter()
            .map(|s| {
                s.metrics().gauge("stm", "channel_items").get()
                    + s.metrics().gauge("stm", "queue_items").get()
            })
            .sum();
        self.occupancy.set(occupancy);
        occupancy
    }
}

struct SweepEntry {
    rate: u64,
    steady: PhaseStats,
    churn: Option<(PhaseStats, i64)>,
}

struct StallResult {
    rate: u64,
    stall_ms: u64,
    stats: PhaseStats,
}

/// `Threads:` from `/proc/self/status` — the resident thread count the
/// sessions-per-core assertions are made against.
fn resident_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// One real TCP end-device session for the sessions-per-core A/B: its
/// own channel, driven put-mostly with a periodic consume to keep the
/// GC horizon bounded.
struct AbSession {
    out: dstampede_client::ClientChanOut,
    inp: dstampede_client::ClientChanIn,
    clock: i64,
    _dev: dstampede_client::EndDevice,
}

impl AbSession {
    fn open(addr: std::net::SocketAddr, tag: &str) -> AbSession {
        let dev = dstampede_client::EndDevice::attach_c(addr, tag).expect("attach");
        let chan = dev
            .create_channel(None, ChannelAttrs::default())
            .expect("create channel");
        let out = dev.connect_channel_out(chan).expect("connect out");
        let inp = dev
            .connect_channel_in(chan, Interest::FromEarliest)
            .expect("connect in");
        AbSession {
            out,
            inp,
            clock: 1,
            _dev: dev,
        }
    }

    /// One arrival: a put RPC; every 16th also consumes the prefix, so
    /// per-session occupancy never exceeds 16 items.
    fn run_op(&mut self, payload: &[u8]) -> Result<(), ()> {
        let ts = Timestamp::new(self.clock);
        self.clock += 1;
        self.out
            .put(ts, Item::copy_from_slice(payload), WaitSpec::NonBlocking)
            .map_err(|_| ())?;
        if self.clock % 16 == 0 {
            self.inp.consume_until(ts).map_err(|_| ())?;
        }
        Ok(())
    }
}

/// Cross-worker state for one A/B side.
struct AbShared {
    recorder: LatencyRecorder,
    offered: AtomicU64,
    achieved: AtomicU64,
    dropped: AtomicU64,
    errors: AtomicU64,
    stop: AtomicBool,
}

/// One A/B worker: the same open-loop intended-start schedule as the
/// in-process harness, over real TCP sessions.
fn ab_worker_loop(
    shared: &AbShared,
    mut sessions: Vec<AbSession>,
    interval: Duration,
    late_drop: Duration,
    payload: &[u8],
) {
    let t0 = Instant::now();
    let mut k: u64 = 0;
    let mut sid = 0usize;
    while !shared.stop.load(Ordering::Acquire) {
        let intended = t0 + interval.saturating_mul(u32::try_from(k).unwrap_or(u32::MAX));
        k += 1;
        shared.offered.fetch_add(1, Ordering::Relaxed);
        let mut now = Instant::now();
        if intended > now {
            hybrid_sleep(intended - now);
            now = Instant::now();
        } else if now.duration_since(intended) > late_drop {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let svc_start = now;
        match sessions[sid].run_op(payload) {
            Ok(()) => {
                let end = Instant::now();
                shared.achieved.fetch_add(1, Ordering::Relaxed);
                shared.recorder.record_op(
                    duration_us(end.duration_since(intended)),
                    duration_us(end.duration_since(svc_start)),
                    duration_us(interval),
                );
            }
            Err(()) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        sid = (sid + 1) % sessions.len();
    }
}

/// One side's steady-state readout.
struct AbSideStats {
    sessions: usize,
    rate: f64,
    secs: f64,
    offered: u64,
    achieved: u64,
    dropped: u64,
    errors: u64,
    corrected: HistogramSample,
    naive: HistogramSample,
    /// Resident threads with the cluster up but no sessions open.
    base_threads: usize,
    /// Resident threads mid-steady-state (includes the client workers).
    steady_threads: usize,
}

impl AbSideStats {
    fn achieved_rate(&self) -> f64 {
        if self.secs > 0.0 {
            self.achieved as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Drives `n_sessions` real TCP sessions against `addr` open-loop at
/// `n_sessions × ab_session_rate` aggregate, returning the post-warmup
/// steady-state stats.
fn run_session_ab_side(
    addr: std::net::SocketAddr,
    label: &str,
    n_sessions: usize,
    base_threads: usize,
    config: &Config,
) -> AbSideStats {
    let opened = Instant::now();
    let mut slices: Vec<Vec<AbSession>> = (0..config.workers).map(|_| Vec::new()).collect();
    for sid in 0..n_sessions {
        slices[sid % config.workers].push(AbSession::open(addr, &format!("{label}-{sid}")));
    }
    eprintln!(
        "load_perf: session-ab {label}: opened {n_sessions} TCP sessions in {:.1}s",
        opened.elapsed().as_secs_f64()
    );

    let reg = Arc::new(dstampede_obs::MetricsRegistry::new("session-ab"));
    let shared = Arc::new(AbShared {
        recorder: LatencyRecorder::over(
            reg.histogram("ab", "latency_naive_us"),
            reg.histogram("ab", "latency_us"),
        ),
        offered: AtomicU64::new(0),
        achieved: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let rate = n_sessions as f64 * config.ab_session_rate;
    let interval = Duration::from_secs_f64(config.workers as f64 / rate.max(1e-9));
    let late_drop = Duration::from_millis(config.late_drop_ms);

    let mut handles = Vec::new();
    for (w, slice) in slices.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let payload = vec![0xabu8; config.payload];
        handles.push(
            std::thread::Builder::new()
                .name(format!("ab-worker-{w}"))
                .spawn(move || ab_worker_loop(&shared, slice, interval, late_drop, &payload))
                .expect("spawn ab worker"),
        );
    }

    std::thread::sleep(Duration::from_millis(config.ab_warmup_ms));
    let mut corrected = HistogramWindow::opened_at(shared.recorder.corrected());
    let mut naive = HistogramWindow::opened_at(shared.recorder.naive());
    let offered0 = shared.offered.load(Ordering::Relaxed);
    let achieved0 = shared.achieved.load(Ordering::Relaxed);
    let dropped0 = shared.dropped.load(Ordering::Relaxed);
    let errors0 = shared.errors.load(Ordering::Relaxed);
    let started = Instant::now();

    std::thread::sleep(Duration::from_millis(config.ab_duration_ms / 2));
    let steady_threads = resident_threads();
    std::thread::sleep(Duration::from_millis(
        config.ab_duration_ms - config.ab_duration_ms / 2,
    ));

    let stats = AbSideStats {
        sessions: n_sessions,
        rate,
        secs: started.elapsed().as_secs_f64(),
        offered: shared.offered.load(Ordering::Relaxed) - offered0,
        achieved: shared.achieved.load(Ordering::Relaxed) - achieved0,
        dropped: shared.dropped.load(Ordering::Relaxed) - dropped0,
        errors: shared.errors.load(Ordering::Relaxed) - errors0,
        corrected: corrected.advance(shared.recorder.corrected(), window_id()),
        naive: naive.advance(shared.recorder.naive(), window_id()),
        base_threads,
        steady_threads,
    };
    shared.stop.store(true, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }
    eprintln!(
        "load_perf: session-ab {label}: {n_sessions} sessions at {:.0}/s -> achieved {:.0}/s \
         p50 {}us p99 {}us drops {} errors {} threads {} (base {})",
        rate,
        stats.achieved_rate(),
        stats.corrected.quantile(0.50),
        stats.corrected.quantile(0.99),
        stats.dropped,
        stats.errors,
        steady_threads,
        base_threads,
    );
    stats
}

/// The bare-attach scale probe's readout.
struct ThreadCeiling {
    sessions: usize,
    threads: usize,
    base_threads: usize,
}

/// The whole sessions-per-core A/B section.
struct SessionAbResult {
    legacy: AbSideStats,
    reactor: AbSideStats,
    ceiling: Option<ThreadCeiling>,
}

/// Runs the sessions-per-core A/B: N thread-per-session TCP sessions
/// versus `ab_ratio × N` reactor sessions, both open-loop at the same
/// per-session arrival rate, both held to the same corrected-p99
/// budget — then, optionally, a bare-attach probe holding
/// `thread_ceiling` idle sessions on the reactor cluster to show the
/// resident thread count stays O(cores), not O(sessions).
fn run_session_ab(config: &Config) -> SessionAbResult {
    let legacy_cluster = Cluster::builder()
        .address_spaces(1)
        .flight_recorder_off()
        .build()
        .expect("legacy cluster");
    let legacy_base = resident_threads();
    let legacy = run_session_ab_side(
        legacy_cluster.listener_addr(0).expect("legacy listener"),
        "legacy",
        config.session_ab,
        legacy_base,
        config,
    );
    legacy_cluster.shutdown();

    let reactor_cluster = Cluster::builder()
        .address_spaces(1)
        .flight_recorder_off()
        .reactor(dstampede_runtime::reactor::ReactorConfig::default())
        .build()
        .expect("reactor cluster");
    let reactor_base = resident_threads();
    let reactor = run_session_ab_side(
        reactor_cluster.listener_addr(0).expect("reactor listener"),
        "reactor",
        config.session_ab * config.ab_ratio,
        reactor_base,
        config,
    );

    // The AB sessions are closed — and their server-side descriptors
    // reaped — before the probe opens, so the probe's descriptor
    // high-water mark is just its own 2 fds per session.
    let ceiling = (config.thread_ceiling > 0).then(|| {
        let active = reactor_cluster.spaces()[0]
            .metrics()
            .gauge("session", "active");
        let drain_deadline = Instant::now() + Duration::from_secs(20);
        while active.get() > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
        let addr = reactor_cluster.listener_addr(0).expect("reactor listener");
        let opened = Instant::now();
        let held: Vec<_> = (0..config.thread_ceiling)
            .map(|i| {
                let mut last_err = None;
                for _ in 0..5 {
                    match dstampede_client::EndDevice::attach_c(addr, &format!("ceiling-{i}")) {
                        Ok(dev) => return dev,
                        Err(e) => {
                            last_err = Some(e);
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                }
                panic!("ceiling attach {i}: {last_err:?}")
            })
            .collect();
        let threads = resident_threads();
        eprintln!(
            "load_perf: thread ceiling: {} bare sessions held, {} resident threads \
             (base {}), opened in {:.1}s",
            held.len(),
            threads,
            reactor_base,
            opened.elapsed().as_secs_f64()
        );
        drop(held);
        ThreadCeiling {
            sessions: config.thread_ceiling,
            threads,
            base_threads: reactor_base,
        }
    });
    reactor_cluster.shutdown();

    SessionAbResult {
        legacy,
        reactor,
        ceiling,
    }
}

fn json_ab_side(s: &AbSideStats) -> String {
    format!(
        "{{\"sessions\": {}, \"rate\": {:.1}, \"achieved_rate\": {:.1}, \"offered\": {}, \
         \"completed\": {}, \"drops\": {}, \"errors\": {}, \"p50_us\": {}, \"p90_us\": {}, \
         \"p99_us\": {}, \"p999_us\": {}, \"naive_p99_us\": {}, \"base_threads\": {}, \
         \"steady_threads\": {}}}",
        s.sessions,
        s.rate,
        s.achieved_rate(),
        s.offered,
        s.achieved,
        s.dropped,
        s.errors,
        s.corrected.quantile(0.50),
        s.corrected.quantile(0.90),
        s.corrected.quantile(0.99),
        s.corrected.quantile(0.999),
        s.naive.quantile(0.99),
        s.base_threads,
        s.steady_threads,
    )
}

fn hist_quantiles(h: &HistogramSample) -> (u64, u64, u64, u64) {
    (
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
    )
}

fn json_phase(p: &PhaseStats) -> String {
    let (p50, p90, p99, p999) = hist_quantiles(&p.corrected);
    format!(
        "\"achieved_rate\": {:.1}, \"offered\": {}, \"completed\": {}, \"drops\": {}, \
         \"errors\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
         \"naive_p50_us\": {}, \"naive_p99_us\": {}, \"backfilled\": {}",
        p.achieved_rate(),
        p.offered,
        p.achieved,
        p.dropped,
        p.errors,
        p50,
        p90,
        p99,
        p999,
        p.naive.quantile(0.50),
        p.naive.quantile(0.99),
        p.backfilled,
    )
}

fn write_report(
    config: &Config,
    sweep: &[SweepEntry],
    stall: Option<&StallResult>,
    session_ab: Option<&SessionAbResult>,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"bench-load-v1\",\n");
    out.push_str(&format!(
        "  \"sessions\": {}, \"workers\": {}, \"spaces\": {}, \"channels\": {}, \
         \"queues\": {},\n  \"payload\": {}, \"warmup_ms\": {}, \"duration_ms\": {}, \
         \"churn_ms\": {}, \"churn_pct\": {}, \"stall_ms\": {}, \"late_drop_ms\": {}, \
         \"seed\": {},\n  \"reference_rate\": {},\n  \"sweep\": [",
        config.sessions,
        config.workers,
        config.spaces,
        config.channels,
        config.queues,
        config.payload,
        config.warmup_ms,
        config.duration_ms,
        config.churn_ms,
        config.churn_pct,
        config.stall_ms,
        config.late_drop_ms,
        config.seed,
        config.rates[0],
    ));
    for (i, entry) in sweep.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rate\": {}, {}",
            entry.rate,
            json_phase(&entry.steady)
        ));
        match &entry.churn {
            Some((churn, max_occupancy)) => {
                out.push_str(&format!(
                    ", \"churn\": {{\"churns\": {}, {}, \"max_occupancy\": {}}}}}",
                    churn.churns,
                    json_phase(churn),
                    max_occupancy
                ));
            }
            None => out.push_str(", \"churn\": null}"),
        }
    }
    out.push_str("\n  ],\n  \"stall\": ");
    match stall {
        Some(s) => out.push_str(&format!(
            "{{\"rate\": {}, \"stall_ms\": {}, {}}}",
            s.rate,
            s.stall_ms,
            json_phase(&s.stats)
        )),
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"session_ab\": ");
    match session_ab {
        Some(ab) => {
            out.push_str(&format!(
                "{{\n    \"ratio\": {}, \"per_session_rate\": {}, \"p99_budget_us\": {},\n    \
                 \"legacy\": {},\n    \"reactor\": {},\n    \"thread_ceiling\": ",
                config.ab_ratio,
                config.ab_session_rate,
                config.ab_p99_budget_us,
                json_ab_side(&ab.legacy),
                json_ab_side(&ab.reactor),
            ));
            match &ab.ceiling {
                Some(c) => out.push_str(&format!(
                    "{{\"sessions\": {}, \"threads\": {}, \"base_threads\": {}}}\n  }}\n",
                    c.sessions, c.threads, c.base_threads
                )),
                None => out.push_str("null\n  }\n"),
            }
        }
        None => out.push_str("null\n"),
    }
    out.push_str("}\n");
    out
}

#[allow(clippy::too_many_lines)]
fn main() {
    let config = parse_args();
    let occupancy_bound = config.occupancy_bound();

    eprintln!(
        "load_perf: {} sessions over {} spaces ({} channels + {} queues), {} workers, rates {:?}",
        config.sessions,
        config.spaces,
        config.channels,
        config.queues,
        config.workers,
        config.rates
    );

    // Seeded faults stay on for the whole run: light duplication
    // exercises the dedup/replay path without failing operations.
    let plan = FaultPlan::new(config.seed);
    plan.duplicate_every_nth(997);
    let cluster = Arc::new(
        Cluster::builder()
            .address_spaces(config.spaces)
            .listeners(false)
            .fault_plan(Arc::clone(&plan))
            .flight_recorder(RecorderConfig {
                tick: Duration::from_millis(500),
                occupancy_watermark: occupancy_bound,
                ..RecorderConfig::default()
            })
            .build()
            .expect("cluster"),
    );

    // Placed containers, created round-robin from every space so the
    // rendezvous hash spreads primaries across the membership.
    let mut containers = Containers {
        chans: Vec::with_capacity(config.channels),
        queues: Vec::with_capacity(config.queues),
        clocks: Vec::new(),
    };
    for c in 0..config.channels {
        let creator = &cluster.spaces()[c % cluster.spaces().len()];
        containers.chans.push(
            creator
                .create_channel_placed(None, ChannelAttrs::default())
                .expect("create channel"),
        );
    }
    for q in 0..config.queues {
        let creator = &cluster.spaces()[q % cluster.spaces().len()];
        containers.queues.push(
            creator
                .create_queue_placed(None, QueueAttrs::default())
                .expect("create queue"),
        );
    }
    containers.clocks = (0..containers.count())
        .map(|_| Arc::new(AtomicI64::new(1)))
        .collect();
    let containers = Arc::new(containers);

    // The recorder writes into registry histograms on space 0, so the
    // corrected distribution rides every stats/history/watch path.
    let metrics = cluster.spaces()[0].metrics();
    let shared = Arc::new(Shared {
        recorder: LatencyRecorder::over(
            metrics.histogram("load", "latency_naive_us"),
            metrics.histogram("load", "latency_us"),
        ),
        offered: metrics.counter("load", "offered_ops"),
        achieved: metrics.counter("load", "achieved_ops"),
        dropped: metrics.counter("load", "dropped_ops"),
        errors: metrics.counter("load", "errors"),
        churns: metrics.counter("load", "session_churns"),
        interval_ns: AtomicU64::new(0),
        churn_on: AtomicBool::new(false),
        stall_ms: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let sessions_gauge = metrics.gauge("load", "sessions");

    // Open the virtual sessions, sliced per worker.
    let setup = Instant::now();
    let mut slices: Vec<Vec<(usize, Session)>> = (0..config.workers).map(|_| Vec::new()).collect();
    for sid in 0..config.sessions {
        slices[sid % config.workers].push((sid, open_session(&cluster, &containers, sid)));
    }
    sessions_gauge.set(config.sessions as i64);
    eprintln!(
        "load_perf: opened {} sessions in {:.1}s",
        config.sessions,
        setup.elapsed().as_secs_f64()
    );

    // First rate before the workers start, so no worker spins at rate 0.
    let interval_for =
        |rate: u64| -> u64 { (1_000_000_000u64 * config.workers as u64) / rate.max(1) };
    shared
        .interval_ns
        .store(interval_for(config.rates[0]), Ordering::Release);

    let mut handles = Vec::new();
    for (w, slice) in slices.into_iter().enumerate() {
        let cluster = Arc::clone(&cluster);
        let containers = Arc::clone(&containers);
        let shared = Arc::clone(&shared);
        let config = config.clone();
        let payload = vec![0xabu8; config.payload];
        handles.push(
            std::thread::Builder::new()
                .name(format!("load-worker-{w}"))
                .spawn(move || worker_loop(cluster, containers, shared, config, w, slice, payload))
                .expect("spawn worker"),
        );
    }

    let mut live = LiveSeries::new(&cluster, &shared);
    let mut sweep = Vec::new();
    let mut churn_bound_violated = None;
    for &rate in &config.rates {
        shared
            .interval_ns
            .store(interval_for(rate), Ordering::Release);
        eprintln!("load_perf: rate {rate}/s warmup");
        run_phase(&cluster, &shared, &mut live, config.warmup_ms);

        let cursor = PhaseCursor::open(&shared);
        run_phase(&cluster, &shared, &mut live, config.duration_ms);
        let steady = cursor.close(&shared);
        let (p50, _, p99, p999) = hist_quantiles(&steady.corrected);
        eprintln!(
            "load_perf: rate {rate}/s achieved {:.0}/s p50 {p50}us p99 {p99}us p99.9 {p999}us \
             drops {} errors {}",
            steady.achieved_rate(),
            steady.dropped,
            steady.errors
        );

        let churn = if config.churn_ms > 0 {
            let cursor = PhaseCursor::open(&shared);
            shared.churn_on.store(true, Ordering::Release);
            let max_occupancy = run_phase(&cluster, &shared, &mut live, config.churn_ms);
            shared.churn_on.store(false, Ordering::Release);
            let stats = cursor.close(&shared);
            eprintln!(
                "load_perf: rate {rate}/s churn {} replacements, p99 {}us, max occupancy {}",
                stats.churns,
                stats.corrected.quantile(0.99),
                max_occupancy
            );
            if max_occupancy > occupancy_bound {
                churn_bound_violated = Some((rate, max_occupancy));
            }
            Some((stats, max_occupancy))
        } else {
            None
        };
        sweep.push(SweepEntry {
            rate,
            steady,
            churn,
        });
    }

    // Paired corrected-vs-naive honesty check under an injected stall.
    let stall = if config.stall_ms > 0 {
        let rate = config.rates[0];
        shared
            .interval_ns
            .store(interval_for(rate), Ordering::Release);
        run_phase(&cluster, &shared, &mut live, config.warmup_ms);
        let cursor = PhaseCursor::open(&shared);
        let half = config.duration_ms / 2;
        run_phase(&cluster, &shared, &mut live, half);
        shared.stall_ms.store(config.stall_ms, Ordering::Release);
        run_phase(&cluster, &shared, &mut live, config.duration_ms - half);
        let stats = cursor.close(&shared);
        eprintln!(
            "load_perf: stall {}ms at {rate}/s -> corrected p99 {}us vs naive p99 {}us \
             ({} backfilled)",
            config.stall_ms,
            stats.corrected.quantile(0.99),
            stats.naive.quantile(0.99),
            stats.backfilled
        );
        Some(StallResult {
            rate,
            stall_ms: config.stall_ms,
            stats,
        })
    } else {
        None
    };

    shared.stop.store(true, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }
    // Drop sessions before the cluster so cursors release cleanly.
    cluster.shutdown();

    // The sessions-per-core A/B runs after the in-process harness has
    // torn down, so its clusters own the machine.
    let session_ab = (config.session_ab > 0).then(|| run_session_ab(&config));

    let report = write_report(&config, &sweep, stall.as_ref(), session_ab.as_ref());
    match &config.out {
        Some(path) => {
            std::fs::write(path, &report).expect("write report");
            eprintln!("load_perf: wrote {path}");
        }
        None => print!("{report}"),
    }

    let mut failed = false;
    if let Some((rate, occupancy)) = churn_bound_violated {
        eprintln!(
            "load_perf: FAIL churn at rate {rate}/s pushed occupancy to {occupancy} \
             (bound {occupancy_bound}) — GC horizon unbounded"
        );
        failed = true;
    }
    if let Some(s) = &stall {
        let corrected = s.stats.corrected.quantile(0.99);
        let naive = s.stats.naive.quantile(0.99);
        if corrected < naive {
            eprintln!(
                "load_perf: FAIL corrected p99 {corrected}us < naive p99 {naive}us under a \
                 {}ms stall — coordinated-omission correction not engaged",
                s.stall_ms
            );
            failed = true;
        }
        if s.stats.backfilled == 0 {
            eprintln!("load_perf: FAIL injected stall backfilled no samples");
            failed = true;
        }
    }
    if let Some(ab) = &session_ab {
        let budget = config.ab_p99_budget_us;
        for (label, side) in [("legacy", &ab.legacy), ("reactor", &ab.reactor)] {
            let p99 = side.corrected.quantile(0.99);
            if p99 > budget {
                eprintln!(
                    "load_perf: FAIL session-ab {label} corrected p99 {p99}us exceeds the \
                     {budget}us budget at {} sessions",
                    side.sessions
                );
                failed = true;
            }
        }
        // Thread-per-session really is one thread per session; the
        // reactor side holds ab_ratio× the sessions on O(cores) threads.
        if ab.legacy.steady_threads < ab.legacy.base_threads + ab.legacy.sessions {
            eprintln!(
                "load_perf: FAIL legacy side ran {} sessions on {} threads (base {}) — not \
                 thread-per-session; the A/B is not measuring what it claims",
                ab.legacy.sessions, ab.legacy.steady_threads, ab.legacy.base_threads
            );
            failed = true;
        }
        let reactor_extra = ab
            .reactor
            .steady_threads
            .saturating_sub(ab.reactor.base_threads);
        if reactor_extra > config.workers + 16 {
            eprintln!(
                "load_perf: FAIL reactor side grew {reactor_extra} threads for {} sessions \
                 — not O(cores)",
                ab.reactor.sessions
            );
            failed = true;
        }
        if let Some(c) = &ab.ceiling {
            let extra = c.threads.saturating_sub(c.base_threads);
            if extra > 16 {
                eprintln!(
                    "load_perf: FAIL thread ceiling: {} bare sessions grew {extra} threads",
                    c.sessions
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
