//! Runs every experiment of the paper's §5 with quick settings and writes
//! CSVs under `results/`, plus a cluster telemetry snapshot
//! (`results/BENCH_obs.json`) from an instrumented in-process workload
//! and the open-loop saturation smoke sweep (`results/BENCH_load.json`,
//! via `load_perf --suite smoke`).
//!
//! Equivalent to running each binary individually with `--quick --csv ...`;
//! use the individual binaries for full-resolution sweeps.

use std::process::Command;

use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_runtime::{gc_epoch, Cluster};
use dstampede_wire::WaitSpec;

const EXPERIMENTS: &[&str] = &[
    "exp1_intra_cluster",
    "exp2_c_client",
    "exp3_java_client",
    "app_single_threaded",
    "app_multi_threaded",
    "app_bandwidth_table",
];

/// Runs a small cross-space workload on a fresh 2-address-space cluster
/// and writes the merged telemetry snapshot as JSON.
fn dump_obs_snapshot(path: &str) -> Result<(), String> {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .map_err(|e| e.to_string())?;
    let owner = cluster.space(0).map_err(|e| e.to_string())?;
    let peer = cluster.space(1).map_err(|e| e.to_string())?;
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let out = owner
        .open_channel(chan.id())
        .and_then(|c| c.connect_output())
        .map_err(|e| e.to_string())?;
    let inp = peer
        .open_channel(chan.id())
        .and_then(|c| c.connect_input(Interest::FromEarliest))
        .map_err(|e| e.to_string())?;
    for i in 0..32 {
        out.put(
            Timestamp::new(i),
            Item::from_vec(vec![i as u8; 1024]),
            WaitSpec::Forever,
        )
        .map_err(|e| e.to_string())?;
        let (ts, _) = inp
            .get_blocking(GetSpec::Exact(Timestamp::new(i)))
            .map_err(|e| e.to_string())?;
        inp.consume_until(ts).map_err(|e| e.to_string())?;
    }
    for space in cluster.spaces() {
        gc_epoch::report_once(space);
    }
    let json = cluster.stats_snapshot().to_json();
    cluster.shutdown();
    std::fs::write(path, json).map_err(|e| e.to_string())
}

fn main() {
    std::fs::create_dir_all("results").expect("create results dir");
    let this = std::env::current_exe().expect("current exe");
    let bin_dir = this.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        println!("=== {exp} ===");
        let status = Command::new(&path)
            .arg("--quick")
            .arg("--csv")
            .arg(format!("results/{exp}.csv"))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                dstampede_obs::warn("bench", format!("{exp} exited with {s}"));
                failures.push(*exp);
            }
            Err(e) => {
                dstampede_obs::warn(
                    "bench",
                    format!("failed to launch {exp} ({e}); build bench binaries first"),
                );
                failures.push(*exp);
            }
        }
    }

    println!("=== obs snapshot ===");
    match dump_obs_snapshot("results/BENCH_obs.json") {
        Ok(()) => println!("wrote results/BENCH_obs.json"),
        Err(e) => {
            dstampede_obs::warn("bench", format!("obs snapshot failed: {e}"));
            failures.push("obs_snapshot");
        }
    }

    println!("=== load smoke ===");
    let status = Command::new(bin_dir.join("load_perf"))
        .args(["--suite", "smoke", "--out", "results/BENCH_load.json"])
        .status();
    match status {
        Ok(s) if s.success() => println!("wrote results/BENCH_load.json"),
        Ok(s) => {
            dstampede_obs::warn("bench", format!("load_perf exited with {s}"));
            failures.push("load_perf");
        }
        Err(e) => {
            dstampede_obs::warn(
                "bench",
                format!("failed to launch load_perf ({e}); build bench binaries first"),
            );
            failures.push("load_perf");
        }
    }

    if failures.is_empty() {
        println!("\nall experiments complete; CSVs in results/");
    } else {
        dstampede_obs::warn("bench", format!("experiments failed: {failures:?}"));
        std::process::exit(1);
    }
}
