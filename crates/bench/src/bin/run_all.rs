//! Runs every experiment of the paper's §5 with quick settings and writes
//! CSVs under `results/`.
//!
//! Equivalent to running each binary individually with `--quick --csv ...`;
//! use the individual binaries for full-resolution sweeps.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp1_intra_cluster",
    "exp2_c_client",
    "exp3_java_client",
    "app_single_threaded",
    "app_multi_threaded",
    "app_bandwidth_table",
];

fn main() {
    std::fs::create_dir_all("results").expect("create results dir");
    let this = std::env::current_exe().expect("current exe");
    let bin_dir = this.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        println!("=== {exp} ===");
        let status = Command::new(&path)
            .arg("--quick")
            .arg("--csv")
            .arg(format!("results/{exp}.csv"))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("failed to launch {exp} ({e}); build bench binaries first");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments complete; CSVs in results/");
    } else {
        eprintln!("\nexperiments failed: {failures:?}");
        std::process::exit(1);
    }
}
