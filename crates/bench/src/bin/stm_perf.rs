//! `stm_perf` — machine-readable STM perf trajectory.
//!
//! Runs the channel put → get → consume cycle outside criterion and
//! writes throughput plus latency quantiles as JSON, so the repo keeps
//! a perf trajectory that scripts (and the tracing-overhead acceptance
//! gate) can diff run over run:
//!
//! ```text
//! stm_perf [--out BENCH_stm.json] [--iters N] [--trials N] [--payload BYTES]
//!          [--sampling EVERY_NTH] [--compare BASELINE] [--ab EVERY_NTH]
//!          [--tolerance PCT]
//! ```
//!
//! Each trial runs the full cycle loop; the best trial (by cycle
//! throughput) is reported, damping scheduler noise on shared
//! machines.
//!
//! `--sampling N` enables causal tracing on the benched channel
//! (every nth timestamp). `--compare BASELINE` reports the drift of
//! cycle throughput against a previous JSON (trajectory tracking;
//! never fails the run — separate processes see different machine
//! load). `--ab N` is the tracing-overhead gate: it interleaves
//! untraced and traced (sampling = N) trials in the SAME process so
//! both sides see the same noise, and exits non-zero when tracing
//! costs more than `--tolerance` percent (default 3) of cycle
//! throughput.

use std::time::Instant;

use dstampede_core::{AsId, ChanId, Channel, ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_obs::MetricsRegistry;

struct OpStats {
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

struct CycleStats {
    put: OpStats,
    get: OpStats,
    consume: OpStats,
    cycle: OpStats,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stats(mut samples: Vec<f64>) -> OpStats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let total_s: f64 = samples.iter().sum::<f64>() / 1e6;
    OpStats {
        ops_per_sec: if total_s > 0.0 {
            samples.len() as f64 / total_s
        } else {
            0.0
        },
        p50_us: quantile(&samples, 0.5),
        p99_us: quantile(&samples, 0.99),
    }
}

fn json_op(name: &str, s: &OpStats) -> String {
    format!(
        "    \"{name}\": {{ \"ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3} }}",
        s.ops_per_sec, s.p50_us, s.p99_us
    )
}

/// Pulls `"ops_per_sec": <num>` for one op out of a previous report
/// without a JSON parser (we own both ends of the format).
fn extract_ops_per_sec(json: &str, op: &str) -> Option<f64> {
    let start = json.find(&format!("\"{op}\""))?;
    let rest = &json[start..];
    let key = rest.find("\"ops_per_sec\":")?;
    let tail = rest[key + 14..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The benched fixture: one standalone channel on a private registry.
struct Rig {
    reg: MetricsRegistry,
    out: dstampede_core::OutputConn,
    inp: dstampede_core::InputConn,
    item: Item,
    /// Monotone timestamp cursor; each measured block gets fresh
    /// timestamps so puts never collide.
    next_ts: i64,
}

impl Rig {
    fn new(payload: usize) -> Rig {
        // A dedicated registry so sampling here never touches the
        // process-global one.
        let reg = MetricsRegistry::new("bench");
        let chan = Channel::new_in(
            ChanId {
                owner: AsId(0),
                index: 0,
            },
            None,
            ChannelAttrs::default(),
            &reg,
        );
        let out = chan.connect_output();
        let inp = chan.connect_input(Interest::FromEarliest);
        Rig {
            reg,
            out,
            inp,
            item: Item::from_vec(vec![0xa5; payload]),
            next_ts: 0,
        }
    }

    /// One measured block of `iters` put → get → consume cycles.
    fn run_block(&mut self, iters: usize) -> CycleStats {
        let mut put_us = Vec::with_capacity(iters);
        let mut get_us = Vec::with_capacity(iters);
        let mut consume_us = Vec::with_capacity(iters);
        let mut cycle_us = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Timestamp::new(self.next_ts);
            self.next_ts += 1;
            let c0 = Instant::now();
            self.out.put(t, self.item.clone()).unwrap();
            let after_put = Instant::now();
            let (_, got) = self.inp.get(GetSpec::Exact(t)).unwrap();
            std::hint::black_box(got.len());
            let after_get = Instant::now();
            self.inp.consume_until(t).unwrap();
            let after_consume = Instant::now();
            put_us.push((after_put - c0).as_secs_f64() * 1e6);
            get_us.push((after_get - after_put).as_secs_f64() * 1e6);
            consume_us.push((after_consume - after_get).as_secs_f64() * 1e6);
            cycle_us.push((after_consume - c0).as_secs_f64() * 1e6);
        }
        CycleStats {
            put: stats(put_us),
            get: stats(get_us),
            consume: stats(consume_us),
            cycle: stats(cycle_us),
        }
    }

    /// Best of `trials` blocks by cycle throughput: one slow block on a
    /// noisy machine must not poison the recorded trajectory.
    fn run_best(&mut self, iters: usize, trials: usize) -> CycleStats {
        let mut best: Option<CycleStats> = None;
        for _ in 0..trials {
            let candidate = self.run_block(iters);
            if best
                .as_ref()
                .is_none_or(|b| candidate.cycle.ops_per_sec > b.cycle.ops_per_sec)
            {
                best = Some(candidate);
            }
        }
        best.expect("at least one trial")
    }
}

fn main() {
    let mut out_path = "BENCH_stm.json".to_owned();
    let mut iters: usize = 50_000;
    let mut trials: usize = 3;
    let mut payload: usize = 64;
    let mut sampling: u64 = 0;
    let mut compare: Option<String> = None;
    let mut ab: Option<u64> = None;
    let mut tolerance: f64 = 3.0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = take("--out"),
            "--iters" => iters = take("--iters").parse().expect("bad --iters"),
            "--trials" => {
                trials = take("--trials")
                    .parse::<usize>()
                    .expect("bad --trials")
                    .max(1)
            }
            "--payload" => payload = take("--payload").parse().expect("bad --payload"),
            "--sampling" => sampling = take("--sampling").parse().expect("bad --sampling"),
            "--compare" => compare = Some(take("--compare")),
            "--ab" => ab = Some(take("--ab").parse().expect("bad --ab")),
            "--tolerance" => tolerance = take("--tolerance").parse().expect("bad --tolerance"),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut rig = Rig::new(payload);
    rig.reg.tracer().set_sampling(sampling);
    // Warmup.
    rig.run_block((iters / 10).max(1));

    let report = rig.run_best(iters, trials);
    let spans = rig.reg.tracer().dump().spans.len();

    let json = format!(
        "{{\n  \"schema\": \"bench-stm-v1\",\n  \"iters\": {iters},\n  \"trials\": {trials},\n  \"payload_bytes\": {payload},\n  \"trace_sampling\": {sampling},\n  \"spans_recorded\": {spans},\n  \"ops\": {{\n{},\n{},\n{},\n{}\n  }}\n}}\n",
        json_op("put", &report.put),
        json_op("get", &report.get),
        json_op("consume", &report.consume),
        json_op("cycle", &report.cycle),
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!(
        "wrote {out_path}: cycle {:.0} ops/s (p50 {:.2}us p99 {:.2}us), sampling={sampling}, {spans} spans",
        report.cycle.ops_per_sec, report.cycle.p50_us, report.cycle.p99_us
    );

    if let Some(baseline_path) = compare {
        let baseline = std::fs::read_to_string(&baseline_path).expect("read baseline");
        let base_cycle = extract_ops_per_sec(&baseline, "cycle").expect("baseline cycle ops/s");
        let drift_pct = (report.cycle.ops_per_sec - base_cycle) / base_cycle * 100.0;
        println!(
            "cycle throughput vs {baseline_path}: {base_cycle:.1} -> {:.1} ops/s ({drift_pct:+.2}%)",
            report.cycle.ops_per_sec
        );
    }

    if let Some(every_nth) = ab {
        // Paired overhead gate: many small back-to-back (untraced,
        // traced) block pairs, alternating order, so machine-load
        // drift hits both sides equally; the median of the per-pair
        // throughput ratios is then robust to load spikes in a way no
        // whole-run comparison on a shared machine can be.
        const PAIRS: usize = 24;
        let block = (iters / 8).max(1_000);
        let mut ratios = Vec::with_capacity(PAIRS);
        for pair in 0..PAIRS {
            let (first, second) = if pair % 2 == 0 {
                (0, every_nth)
            } else {
                (every_nth, 0)
            };
            rig.reg.tracer().set_sampling(first);
            let a = rig.run_block(block).cycle.ops_per_sec;
            rig.reg.tracer().set_sampling(second);
            let b = rig.run_block(block).cycle.ops_per_sec;
            let (off, on) = if pair % 2 == 0 { (a, b) } else { (b, a) };
            ratios.push(on / off);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let median = (ratios[PAIRS / 2 - 1] + ratios[PAIRS / 2]) / 2.0;
        let overhead_pct = (1.0 - median) * 100.0;
        println!(
            "tracing overhead (sampling={every_nth}, median of {PAIRS} paired blocks of {block}): \
             {overhead_pct:+.2}%"
        );
        if overhead_pct > tolerance {
            eprintln!("FAIL: overhead {overhead_pct:.2}% exceeds tolerance {tolerance}%");
            std::process::exit(1);
        }
        println!("within tolerance ({tolerance}%)");
    }
}
