//! `stm_perf` — machine-readable STM perf trajectory.
//!
//! Runs the channel put → get → consume cycle outside criterion and
//! writes throughput plus latency quantiles as JSON, so the repo keeps
//! a perf trajectory that scripts (and the tracing-overhead acceptance
//! gate) can diff run over run:
//!
//! ```text
//! stm_perf [--out BENCH_stm.json] [--iters N] [--trials N] [--payload BYTES]
//!          [--threads T] [--batch B] [--shards N] [--suite]
//!          [--min-speedup X] [--sampling EVERY_NTH] [--compare BASELINE]
//!          [--ab EVERY_NTH] [--recorder-ab TICK_MS] [--replicate-ab]
//!          [--exec-ab] [--tolerance PCT]
//! ```
//!
//! Each trial runs the full cycle loop; the best trial (by cycle
//! throughput) is reported, damping scheduler noise on shared
//! machines.
//!
//! `--threads T` runs T cycle loops concurrently against ONE channel,
//! each thread striding a disjoint timestamp residue class and
//! attending only its own tag stripe, so the sharded store is hammered
//! from all sides while per-connection cursors stay independent.
//! Throughput in threaded mode is wall-clock aggregate (items / wall
//! seconds), not a sum of per-op latencies. `--batch B` drives the
//! cycle through `put_many`/`get_many` in blocks of B items. `--shards
//! N` pins the channel's shard count (0 = the core default);
//! `--shards 1` is the pre-sharding single-lock baseline.
//!
//! `--suite` runs the recorded bench-stm-v2 trajectory in one process:
//! single-thread, 8-thread (against both the default shard count and
//! the `--shards 1` single-lock configuration, reporting the speedup),
//! and batch=32. `--min-speedup X` makes the suite exit non-zero when
//! the 8-thread sharded/single-lock ratio falls below the required
//! bound — the CI bench gate passes 2.0, the floor the sharded store
//! is held to. Wall-clock speedup from sharding is limited by physical
//! parallelism, so the bound is scaled to the machine:
//! `min(X, max(0.7, cores / 4))` — the full 2x on 8+ cores, parity-ish
//! on 4, and a no-catastrophic-regression floor of 0.7 on small boxes
//! where the ratio is scheduler noise around 1.0.
//!
//! `--sampling N` enables causal tracing on the benched channel
//! (every nth timestamp). `--compare BASELINE` reports the drift of
//! cycle throughput against a previous JSON (trajectory tracking;
//! never fails the run — separate processes see different machine
//! load). `--ab N` is the tracing-overhead gate: it interleaves
//! untraced and traced (sampling = N) trials in the SAME process so
//! both sides see the same noise, and exits non-zero when tracing
//! costs more than `--tolerance` percent (default 3) of cycle
//! throughput. `--recorder-ab TICK_MS` is the same paired gate for the
//! flight recorder: one side of each pair runs with a background
//! sampler thread scraping the rig's registry into a history ring
//! every TICK_MS, the other without, and the run fails when the
//! sampler costs more than `--tolerance` percent.
//!
//! `--replicate-ab` is the paired gate for channel replication: a
//! two-space in-process cluster hosts two channels on the same
//! primary — one replicated to the peer (put hook feeding the async
//! replication window, batched `ReplicatePut` shipping), one plain —
//! and alternating measured blocks drive the same cycle loop through
//! each. The gated number is the *put-path* overhead: each block is
//! timed in short bursts with the replication window drained off the
//! clock between bursts, so the measurement captures the synchronous
//! cost the hook adds to every accepted put (the contract of the
//! async design) rather than how many spare cores the machine has for
//! the pump and the follower's executor. The run fails when that
//! put-path cost exceeds `--tolerance` percent of cycle throughput
//! (CI passes 10, the durability budget from the failover design).
//! A second, ungated series measures the same pair at saturation with
//! shipping on the clock — the whole-pipeline cost, reported for the
//! trajectory because it is machine-limited: with spare cores the
//! pump and the follower overlap the producer for free; on a starved
//! box they time-slice with it. With `--suite` both series are
//! recorded in a `replication_ab` section of the JSON report.
//!
//! `--exec-ab` is the paired gate for the event-driven runtime core:
//! two single-space clusters serve one real TCP end-device session
//! each — one from a dedicated surrogate thread (the legacy path), one
//! from the cooperative reactor (readiness-parked surrogate task,
//! blocking-shim dispatch) — and alternating blocks drive the same
//! closed-loop client cycle through each. The run fails when the
//! reactor session's cycle cost exceeds `--tolerance` percent over
//! thread-per-session (CI passes 5, the shim's latency budget).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dstampede_core::{
    AsId, ChanId, Channel, ChannelAttrs, GetSpec, Interest, Item, Timestamp, DEFAULT_STM_SHARDS,
};
use dstampede_obs::{HistoryRecorder, MetricsRegistry, DEFAULT_HISTORY_CAPACITY};

struct OpStats {
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

struct CycleStats {
    put: OpStats,
    get: OpStats,
    consume: OpStats,
    cycle: OpStats,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stats(mut samples: Vec<f64>) -> OpStats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let total_s: f64 = samples.iter().sum::<f64>() / 1e6;
    OpStats {
        ops_per_sec: if total_s > 0.0 {
            samples.len() as f64 / total_s
        } else {
            0.0
        },
        p50_us: quantile(&samples, 0.5),
        p99_us: quantile(&samples, 0.99),
    }
}

/// Latency quantiles from the merged samples, throughput from the wall
/// clock: with T concurrent loops, summing per-op latencies would count
/// overlapped time T times over.
fn stats_wall(mut samples: Vec<f64>, wall_s: f64) -> OpStats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    OpStats {
        ops_per_sec: if wall_s > 0.0 {
            samples.len() as f64 / wall_s
        } else {
            0.0
        },
        p50_us: quantile(&samples, 0.5),
        p99_us: quantile(&samples, 0.99),
    }
}

fn json_op(name: &str, s: &OpStats) -> String {
    format!(
        "      \"{name}\": {{ \"ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3} }}",
        s.ops_per_sec, s.p50_us, s.p99_us
    )
}

fn json_ops(report: &CycleStats) -> String {
    format!(
        "    \"ops\": {{\n{},\n{},\n{},\n{}\n    }}",
        json_op("put", &report.put),
        json_op("get", &report.get),
        json_op("consume", &report.consume),
        json_op("cycle", &report.cycle),
    )
}

/// Pulls `"ops_per_sec": <num>` for one op out of a previous report
/// without a JSON parser (we own both ends of the format).
fn extract_ops_per_sec(json: &str, op: &str) -> Option<f64> {
    let start = json.find(&format!("\"{op}\""))?;
    let rest = &json[start..];
    let key = rest.find("\"ops_per_sec\":")?;
    let tail = rest[key + 14..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The benched fixture: one standalone channel on a private registry.
struct Rig {
    reg: Arc<MetricsRegistry>,
    chan: Arc<Channel>,
    out: dstampede_core::OutputConn,
    inp: dstampede_core::InputConn,
    item: Item,
    /// Monotone timestamp cursor; each measured block gets fresh
    /// timestamps so puts never collide.
    next_ts: i64,
}

impl Rig {
    fn new(payload: usize, shards: u32) -> Rig {
        // A dedicated registry so sampling here never touches the
        // process-global one.
        let reg = Arc::new(MetricsRegistry::new("bench"));
        let mut attrs = ChannelAttrs::default();
        if shards > 0 {
            attrs = attrs.with_shards(shards);
        }
        let chan = Channel::new_in(
            ChanId {
                owner: AsId(0),
                index: 0,
            },
            None,
            attrs,
            &reg,
        );
        let out = chan.connect_output();
        let inp = chan.connect_input(Interest::FromEarliest);
        Rig {
            reg,
            chan,
            out,
            inp,
            item: Item::from_vec(vec![0xa5; payload]),
            next_ts: 0,
        }
    }

    /// One measured block of `iters` put → get → consume cycles.
    fn run_block(&mut self, iters: usize) -> CycleStats {
        let mut put_us = Vec::with_capacity(iters);
        let mut get_us = Vec::with_capacity(iters);
        let mut consume_us = Vec::with_capacity(iters);
        let mut cycle_us = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Timestamp::new(self.next_ts);
            self.next_ts += 1;
            let c0 = Instant::now();
            self.out.put(t, self.item.clone()).unwrap();
            let after_put = Instant::now();
            let (_, got) = self.inp.get(GetSpec::Exact(t)).unwrap();
            std::hint::black_box(got.len());
            let after_get = Instant::now();
            self.inp.consume_until(t).unwrap();
            let after_consume = Instant::now();
            put_us.push((after_put - c0).as_secs_f64() * 1e6);
            get_us.push((after_get - after_put).as_secs_f64() * 1e6);
            consume_us.push((after_consume - after_get).as_secs_f64() * 1e6);
            cycle_us.push((after_consume - c0).as_secs_f64() * 1e6);
        }
        CycleStats {
            put: stats(put_us),
            get: stats(get_us),
            consume: stats(consume_us),
            cycle: stats(cycle_us),
        }
    }

    /// One measured block of `iters` items driven through the batch
    /// APIs in chunks of `batch`. Per-phase latencies are amortised
    /// per item so the sample count matches the unbatched mode.
    fn run_block_batched(&mut self, iters: usize, batch: usize) -> CycleStats {
        let batch = batch.max(1);
        let blocks = iters.div_ceil(batch);
        let mut put_us = Vec::with_capacity(iters);
        let mut get_us = Vec::with_capacity(iters);
        let mut consume_us = Vec::with_capacity(iters);
        let mut cycle_us = Vec::with_capacity(iters);
        for _ in 0..blocks {
            let entries: Vec<(Timestamp, Item)> = (0..batch)
                .map(|k| (Timestamp::new(self.next_ts + k as i64), self.item.clone()))
                .collect();
            let specs: Vec<GetSpec> = entries.iter().map(|(t, _)| GetSpec::Exact(*t)).collect();
            let last = entries.last().expect("batch >= 1").0;
            self.next_ts += batch as i64;
            let c0 = Instant::now();
            for r in self.out.put_many(entries) {
                r.unwrap();
            }
            let after_put = Instant::now();
            for r in self.inp.get_many(&specs) {
                let (_, got) = r.unwrap();
                std::hint::black_box(got.len());
            }
            let after_get = Instant::now();
            self.inp.consume_until(last).unwrap();
            let after_consume = Instant::now();
            let per = 1e6 / batch as f64;
            for _ in 0..batch {
                put_us.push((after_put - c0).as_secs_f64() * per);
                get_us.push((after_get - after_put).as_secs_f64() * per);
                consume_us.push((after_consume - after_get).as_secs_f64() * per);
                cycle_us.push((after_consume - c0).as_secs_f64() * per);
            }
        }
        CycleStats {
            put: stats(put_us),
            get: stats(get_us),
            consume: stats(consume_us),
            cycle: stats(cycle_us),
        }
    }

    /// One measured block of `threads` concurrent cycle loops, `iters`
    /// cycles each. Thread k owns the timestamp residue class
    /// `ts % threads == k`; every thread attends the whole stream (as
    /// concurrent consumers do), so reclamation advances once all
    /// cursors pass an item.
    fn run_block_threads(&mut self, iters: usize, threads: usize) -> CycleStats {
        let threads = threads.max(1);
        let base = self.next_ts;
        self.next_ts += (iters * threads) as i64;
        let barrier = Barrier::new(threads);
        let chan = &self.chan;
        let item = &self.item;
        let (wall_s, mut per_thread) = {
            let started = std::sync::Mutex::new(None::<Instant>);
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|k| {
                        let barrier = &barrier;
                        let started = &started;
                        s.spawn(move || {
                            let out = chan.connect_output();
                            let inp = chan.connect_input(Interest::FromEarliest);
                            barrier.wait();
                            started.lock().unwrap().get_or_insert_with(Instant::now);
                            let mut put_us = Vec::with_capacity(iters);
                            let mut get_us = Vec::with_capacity(iters);
                            let mut consume_us = Vec::with_capacity(iters);
                            let mut cycle_us = Vec::with_capacity(iters);
                            for i in 0..iters {
                                let t = Timestamp::new(base + (i * threads + k) as i64);
                                let c0 = Instant::now();
                                out.put(t, item.clone()).unwrap();
                                let after_put = Instant::now();
                                let (_, got) = inp.get(GetSpec::Exact(t)).unwrap();
                                std::hint::black_box(got.len());
                                let after_get = Instant::now();
                                inp.consume_until(t).unwrap();
                                let after_consume = Instant::now();
                                put_us.push((after_put - c0).as_secs_f64() * 1e6);
                                get_us.push((after_get - after_put).as_secs_f64() * 1e6);
                                consume_us.push((after_consume - after_get).as_secs_f64() * 1e6);
                                cycle_us.push((after_consume - c0).as_secs_f64() * 1e6);
                            }
                            (put_us, get_us, consume_us, cycle_us)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("bench thread"))
                    .collect::<Vec<_>>()
            });
            let t0 = started.lock().unwrap().expect("at least one thread ran");
            (t0.elapsed().as_secs_f64(), results)
        };
        let mut put_us = Vec::with_capacity(iters * threads);
        let mut get_us = Vec::with_capacity(iters * threads);
        let mut consume_us = Vec::with_capacity(iters * threads);
        let mut cycle_us = Vec::with_capacity(iters * threads);
        for (p, g, c, cy) in per_thread.drain(..) {
            put_us.extend(p);
            get_us.extend(g);
            consume_us.extend(c);
            cycle_us.extend(cy);
        }
        CycleStats {
            put: stats_wall(put_us, wall_s),
            get: stats_wall(get_us, wall_s),
            consume: stats_wall(consume_us, wall_s),
            cycle: stats_wall(cycle_us, wall_s),
        }
    }

    fn run_block_mode(&mut self, iters: usize, threads: usize, batch: usize) -> CycleStats {
        if threads > 1 {
            self.run_block_threads(iters, threads)
        } else if batch > 1 {
            self.run_block_batched(iters, batch)
        } else {
            self.run_block(iters)
        }
    }

    /// Best of `trials` blocks by cycle throughput: one slow block on a
    /// noisy machine must not poison the recorded trajectory.
    fn run_best(
        &mut self,
        iters: usize,
        trials: usize,
        threads: usize,
        batch: usize,
    ) -> CycleStats {
        let mut best: Option<CycleStats> = None;
        for _ in 0..trials {
            let candidate = self.run_block_mode(iters, threads, batch);
            if best
                .as_ref()
                .is_none_or(|b| candidate.cycle.ops_per_sec > b.cycle.ops_per_sec)
            {
                best = Some(candidate);
            }
        }
        best.expect("at least one trial")
    }
}

/// A background flight-recorder tick, mirroring what the runtime's
/// `FlightRecorder` thread does: scrape the registry into the history
/// ring every `tick_ms` until stopped.
struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Sampler {
    fn start(reg: Arc<MetricsRegistry>, recorder: Arc<HistoryRecorder>, tick_ms: u64) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                let now_ms = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| i64::try_from(d.as_millis()).unwrap_or(i64::MAX));
                recorder.sample(&reg, now_ms);
                std::thread::sleep(Duration::from_millis(tick_ms));
            }
        });
        Sampler { stop, handle }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// One side of a recorder A/B pair: a measured block with the sampler
/// thread running (`on`) or idle.
fn recorder_side(
    rig: &mut Rig,
    recorder: &Arc<HistoryRecorder>,
    tick_ms: u64,
    block: usize,
    on: bool,
) -> f64 {
    if on {
        let sampler = Sampler::start(rig.reg.clone(), recorder.clone(), tick_ms);
        let ops = rig.run_block(block).cycle.ops_per_sec;
        sampler.stop();
        ops
    } else {
        rig.run_block(block).cycle.ops_per_sec
    }
}

/// One side of the replication A/B: a put → get → consume cycle loop
/// over core connections to a runtime-hosted channel. Throughput comes
/// from the wall clock — the replication pump runs concurrently, and
/// its contention is exactly the overhead being measured.
struct ReplSide {
    out: dstampede_core::OutputConn,
    inp: dstampede_core::InputConn,
    item: Item,
    next_ts: i64,
}

impl ReplSide {
    fn new(chan: &Arc<Channel>, payload: usize) -> ReplSide {
        ReplSide {
            out: chan.connect_output(),
            inp: chan.connect_input(Interest::FromEarliest),
            item: Item::from_vec(vec![0xa5; payload]),
            next_ts: 0,
        }
    }

    fn run_block(&mut self, iters: usize) -> f64 {
        let t0 = Instant::now();
        for _ in 0..iters {
            let t = Timestamp::new(self.next_ts);
            self.next_ts += 1;
            self.out.put(t, self.item.clone()).unwrap();
            let (_, got) = self.inp.get(GetSpec::Exact(t)).unwrap();
            std::hint::black_box(got.len());
            self.inp.consume_until(t).unwrap();
        }
        iters as f64 / t0.elapsed().as_secs_f64()
    }

    /// The put-path variant: the same cycle loop, timed in short
    /// bursts with `drain` run off the clock after each one so the
    /// pump ships its backlog between measurements instead of during
    /// them. The block's rate is the 75th-percentile burst:
    /// interference (a pump tick or scheduler preemption landing
    /// inside a burst) only ever *slows* a burst, so with one-sided
    /// noise a high percentile estimates the true synchronous cost of
    /// put + hook + enqueue — the same estimator on both sides of the
    /// pair keeps it fair.
    fn run_block_bursts(&mut self, bursts: usize, burst: usize, drain: &dyn Fn()) -> f64 {
        let mut rates = Vec::with_capacity(bursts);
        for _ in 0..bursts {
            // A few untimed cycles re-warm the caches the pipeline
            // threads polluted during the drain, so the timed burst
            // measures steady state, not cold-start.
            for _ in 0..(burst / 8).max(8) {
                let t = Timestamp::new(self.next_ts);
                self.next_ts += 1;
                self.out.put(t, self.item.clone()).unwrap();
                let (_, got) = self.inp.get(GetSpec::Exact(t)).unwrap();
                std::hint::black_box(got.len());
                self.inp.consume_until(t).unwrap();
            }
            let t0 = Instant::now();
            for _ in 0..burst {
                let t = Timestamp::new(self.next_ts);
                self.next_ts += 1;
                self.out.put(t, self.item.clone()).unwrap();
                let (_, got) = self.inp.get(GetSpec::Exact(t)).unwrap();
                std::hint::black_box(got.len());
                self.inp.consume_until(t).unwrap();
            }
            rates.push(burst as f64 / t0.elapsed().as_secs_f64());
            drain();
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        rates[(bursts * 3) / 4]
    }
}

struct ReplAbReport {
    /// Gated series: put-path overhead from burst-timed blocks with
    /// shipping off the clock.
    median_ratio: f64,
    overhead_pct: f64,
    replicated_ops: f64,
    plain_ops: f64,
    /// Informational series: whole-pipeline overhead at saturation
    /// with shipping on the clock (machine-limited, never gated).
    pipeline_ratio: f64,
    pipeline_overhead_pct: f64,
    pipeline_replicated_ops: f64,
    pipeline_plain_ops: f64,
    block: usize,
    burst: usize,
    pairs: usize,
}

/// The replication A/B: alternating paired blocks against a replicated
/// and a plain channel hosted by the same primary of a two-space
/// in-process cluster. Two series come out of the same rig:
///
/// * **put-path** (gated) — blocks timed in bursts with the window
///   drained off the clock between bursts, bounding the synchronous
///   cost the hook adds to each accepted put;
/// * **pipeline** (informational) — continuous blocks with shipping on
///   the clock, the end-to-end cost including the pump and the
///   follower's executor time-slicing with the producer, which is a
///   property of the machine's spare parallelism rather than of the
///   put path.
///
/// Both use the median per-pair throughput ratio, alternating which
/// side runs first so drift cancels.
fn replicate_ab(iters: usize, payload: usize) -> ReplAbReport {
    const PAIRS: usize = 24;
    const PIPELINE_PAIRS: usize = 8;
    // Short enough that most bursts dodge the pump's linger tick and
    // the scheduler's slice boundaries entirely.
    const BURST: usize = 128;
    let block = (iters / 8).max(1_000);
    let bursts = (block / BURST).max(8);
    let cluster = dstampede_runtime::Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .expect("two-space cluster");
    let primary = cluster.space(0).expect("space 0");
    let replicated = primary.host_channel(Some("repl-ab".into()), ChannelAttrs::default());
    assert!(
        primary.replicator().is_some_and(|r| r
            .follower_of(dstampede_core::ResourceId::Channel(replicated.id()))
            .is_some()),
        "replication route missing: the A/B would measure nothing"
    );
    // The control channel bypasses host_channel, so it carries no put
    // hook — the same store, same registry, zero replication.
    let plain = primary.create_channel(None, ChannelAttrs::default());
    let repl = primary.replicator().expect("replicator running");
    let drain = |deadline_s: u64| {
        // Quiescence, not just an empty window: the pump drains the
        // window *before* shipping, so `lag() == 0` can race a batch
        // still in flight — which would bleed into the next burst.
        let until = Instant::now() + Duration::from_secs(deadline_s);
        while !repl.quiesced() && Instant::now() < until {
            std::thread::sleep(Duration::from_millis(1));
        }
    };

    let mut on = ReplSide::new(&replicated, payload);
    let mut off = ReplSide::new(&plain, payload);
    on.run_block((block / 10).max(1));
    off.run_block((block / 10).max(1));
    drain(10);
    let burst_drain = || drain(5);

    // Put-path series: burst-timed, shipping off the clock. The drain
    // closure is a no-op on the plain side (lag stays 0), so both
    // sides run byte-identical loops.
    let mut ratios = Vec::with_capacity(PAIRS);
    let (mut on_sum, mut off_sum) = (0.0f64, 0.0f64);
    for pair in 0..PAIRS {
        let (on_ops, off_ops) = if pair % 2 == 0 {
            let a = off.run_block_bursts(bursts, BURST, &burst_drain);
            let b = on.run_block_bursts(bursts, BURST, &burst_drain);
            (b, a)
        } else {
            let b = on.run_block_bursts(bursts, BURST, &burst_drain);
            let a = off.run_block_bursts(bursts, BURST, &burst_drain);
            (b, a)
        };
        on_sum += on_ops;
        off_sum += off_ops;
        ratios.push(on_ops / off_ops);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = (ratios[PAIRS / 2 - 1] + ratios[PAIRS / 2]) / 2.0;

    // Pipeline series: continuous blocks, shipping on the clock.
    let mut pipe_ratios = Vec::with_capacity(PIPELINE_PAIRS);
    let (mut pipe_on_sum, mut pipe_off_sum) = (0.0f64, 0.0f64);
    for pair in 0..PIPELINE_PAIRS {
        let (on_ops, off_ops) = if pair % 2 == 0 {
            let a = off.run_block(block);
            let b = on.run_block(block);
            drain(10);
            (b, a)
        } else {
            let b = on.run_block(block);
            drain(10);
            let a = off.run_block(block);
            (b, a)
        };
        pipe_on_sum += on_ops;
        pipe_off_sum += off_ops;
        pipe_ratios.push(on_ops / off_ops);
    }
    cluster.shutdown();
    pipe_ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let pipe_median = (pipe_ratios[PIPELINE_PAIRS / 2 - 1] + pipe_ratios[PIPELINE_PAIRS / 2]) / 2.0;
    ReplAbReport {
        median_ratio: median,
        overhead_pct: (1.0 - median) * 100.0,
        replicated_ops: on_sum / PAIRS as f64,
        plain_ops: off_sum / PAIRS as f64,
        pipeline_ratio: pipe_median,
        pipeline_overhead_pct: (1.0 - pipe_median) * 100.0,
        pipeline_replicated_ops: pipe_on_sum / PIPELINE_PAIRS as f64,
        pipeline_plain_ops: pipe_off_sum / PIPELINE_PAIRS as f64,
        block,
        burst: BURST,
        pairs: PAIRS,
    }
}

/// Runs the replication A/B, prints it, and exits non-zero when the
/// overhead exceeds `tolerance` percent. Returns the report for JSON
/// recording in suite mode.
fn replicate_ab_gate(iters: usize, payload: usize, tolerance: f64) -> ReplAbReport {
    let r = replicate_ab(iters, payload);
    println!(
        "replication put-path overhead (median of {} pairs, bursts of {}): {:+.2}% \
         (replicated {:.0} ops/s vs plain {:.0} ops/s)",
        r.pairs, r.burst, r.overhead_pct, r.replicated_ops, r.plain_ops
    );
    println!(
        "replication pipeline overhead at saturation (informational, machine-limited): \
         {:+.2}% (replicated {:.0} ops/s vs plain {:.0} ops/s)",
        r.pipeline_overhead_pct, r.pipeline_replicated_ops, r.pipeline_plain_ops
    );
    if r.overhead_pct > tolerance {
        eprintln!(
            "FAIL: replication put-path overhead {:.2}% exceeds tolerance {tolerance}%",
            r.overhead_pct
        );
        std::process::exit(1);
    }
    println!("within tolerance ({tolerance}%)");
    r
}

struct ExecAbReport {
    median_ratio: f64,
    overhead_pct: f64,
    reactor_ops: f64,
    legacy_ops: f64,
    block: usize,
    pairs: usize,
}

/// One real TCP end-device session against a listener: a private
/// channel driven through the client-side put → get → consume cycle,
/// closed-loop, so ops/sec is the reciprocal of single-session RPC
/// latency.
struct ExecAbSide {
    out: dstampede_client::ClientChanOut,
    inp: dstampede_client::ClientChanIn,
    clock: i64,
    payload: Vec<u8>,
    _dev: dstampede_client::EndDevice,
}

impl ExecAbSide {
    fn open(addr: std::net::SocketAddr, tag: &str, payload: usize) -> ExecAbSide {
        let dev = dstampede_client::EndDevice::attach_c(addr, tag).expect("attach");
        let chan = dev
            .create_channel(None, ChannelAttrs::default())
            .expect("create channel");
        let out = dev.connect_channel_out(chan).expect("connect out");
        let inp = dev
            .connect_channel_in(chan, Interest::FromEarliest)
            .expect("connect in");
        ExecAbSide {
            out,
            inp,
            clock: 1,
            payload: vec![0xabu8; payload],
            _dev: dev,
        }
    }

    fn run_block(&mut self, n: usize) -> f64 {
        use dstampede_wire::WaitSpec;
        let t0 = Instant::now();
        for _ in 0..n {
            let ts = Timestamp::new(self.clock);
            self.clock += 1;
            let item = Item::copy_from_slice(&self.payload);
            self.out.put(ts, item, WaitSpec::NonBlocking).expect("put");
            let (_, got) = self
                .inp
                .get(GetSpec::Exact(ts), WaitSpec::NonBlocking)
                .expect("get");
            std::hint::black_box(got.len());
            self.inp.consume_until(ts).expect("consume");
        }
        n as f64 / t0.elapsed().as_secs_f64()
    }
}

/// The executor-shim A/B: the same closed-loop TCP session cycle
/// against two single-space clusters — one serving from a dedicated
/// surrogate thread (the legacy path), one from the cooperative
/// reactor (readiness-parked surrogate task, blocking-shim dispatch).
/// Alternating paired blocks, median per-pair ratio, same design as
/// the replication gate: the number bounds what moving the hot path
/// onto the executor costs a single session's latency.
fn exec_ab(iters: usize, payload: usize) -> ExecAbReport {
    const PAIRS: usize = 16;
    let block = (iters / 32).max(250);

    let legacy = dstampede_runtime::Cluster::builder()
        .address_spaces(1)
        .flight_recorder_off()
        .build()
        .expect("legacy cluster");
    let reactor = dstampede_runtime::Cluster::builder()
        .address_spaces(1)
        .flight_recorder_off()
        .reactor(dstampede_runtime::reactor::ReactorConfig::default())
        .build()
        .expect("reactor cluster");

    let mut on = ExecAbSide::open(
        reactor.listener_addr(0).expect("reactor listener"),
        "exec-ab-reactor",
        payload,
    );
    let mut off = ExecAbSide::open(
        legacy.listener_addr(0).expect("legacy listener"),
        "exec-ab-legacy",
        payload,
    );
    on.run_block((block / 4).max(50));
    off.run_block((block / 4).max(50));

    let mut ratios = Vec::with_capacity(PAIRS);
    let (mut on_sum, mut off_sum) = (0.0f64, 0.0f64);
    for pair in 0..PAIRS {
        let (on_ops, off_ops) = if pair % 2 == 0 {
            let a = off.run_block(block);
            let b = on.run_block(block);
            (b, a)
        } else {
            let b = on.run_block(block);
            let a = off.run_block(block);
            (b, a)
        };
        on_sum += on_ops;
        off_sum += off_ops;
        ratios.push(on_ops / off_ops);
    }
    drop(on);
    drop(off);
    reactor.shutdown();
    legacy.shutdown();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = (ratios[PAIRS / 2 - 1] + ratios[PAIRS / 2]) / 2.0;
    ExecAbReport {
        median_ratio: median,
        overhead_pct: (1.0 - median) * 100.0,
        reactor_ops: on_sum / PAIRS as f64,
        legacy_ops: off_sum / PAIRS as f64,
        block,
        pairs: PAIRS,
    }
}

/// Runs the executor-shim A/B, prints it, and exits non-zero when the
/// reactor session's cycle cost exceeds `tolerance` percent over the
/// thread-per-session one.
fn exec_ab_gate(iters: usize, payload: usize, tolerance: f64) {
    let r = exec_ab(iters, payload);
    println!(
        "exec shim overhead (median of {} pairs, blocks of {}): {:+.2}% \
         (reactor {:.0} ops/s vs thread-per-session {:.0} ops/s, ratio {:.4})",
        r.pairs, r.block, r.overhead_pct, r.reactor_ops, r.legacy_ops, r.median_ratio
    );
    if r.overhead_pct > tolerance {
        eprintln!(
            "FAIL: exec shim overhead {:.2}% exceeds tolerance {tolerance}%",
            r.overhead_pct
        );
        std::process::exit(1);
    }
    println!("within tolerance ({tolerance}%)");
}

/// One measured configuration: fresh rig, warmup, best-of-trials.
fn measure(
    payload: usize,
    shards: u32,
    iters: usize,
    trials: usize,
    threads: usize,
    batch: usize,
) -> CycleStats {
    let mut rig = Rig::new(payload, shards);
    rig.run_block_mode((iters / 10).max(1), threads, batch);
    rig.run_best(iters, trials, threads, batch)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut out_path = "BENCH_stm.json".to_owned();
    let mut iters: usize = 50_000;
    let mut trials: usize = 3;
    let mut payload: usize = 64;
    let mut threads: usize = 1;
    let mut batch: usize = 1;
    let mut shards: u32 = 0;
    let mut suite = false;
    let mut min_speedup: f64 = 0.0;
    let mut sampling: u64 = 0;
    let mut compare: Option<String> = None;
    let mut ab: Option<u64> = None;
    let mut recorder_ab: Option<u64> = None;
    let mut replicate: bool = false;
    let mut exec: bool = false;
    let mut tolerance: f64 = 3.0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = take("--out"),
            "--iters" => iters = take("--iters").parse().expect("bad --iters"),
            "--trials" => {
                trials = take("--trials")
                    .parse::<usize>()
                    .expect("bad --trials")
                    .max(1)
            }
            "--payload" => payload = take("--payload").parse().expect("bad --payload"),
            "--threads" => {
                threads = take("--threads")
                    .parse::<usize>()
                    .expect("bad --threads")
                    .max(1)
            }
            "--batch" => {
                batch = take("--batch")
                    .parse::<usize>()
                    .expect("bad --batch")
                    .max(1)
            }
            "--shards" => shards = take("--shards").parse().expect("bad --shards"),
            "--suite" => suite = true,
            "--min-speedup" => {
                min_speedup = take("--min-speedup").parse().expect("bad --min-speedup");
            }
            "--sampling" => sampling = take("--sampling").parse().expect("bad --sampling"),
            "--compare" => compare = Some(take("--compare")),
            "--ab" => ab = Some(take("--ab").parse().expect("bad --ab")),
            "--recorder-ab" => {
                recorder_ab = Some(
                    take("--recorder-ab")
                        .parse::<u64>()
                        .expect("bad --recorder-ab")
                        .max(1),
                );
            }
            "--replicate-ab" => replicate = true,
            "--exec-ab" => exec = true,
            "--tolerance" => tolerance = take("--tolerance").parse().expect("bad --tolerance"),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    if suite {
        // The committed trajectory: three configurations plus the
        // single-lock control, all in one process so they share
        // machine load.
        let single = measure(payload, shards, iters, trials, 1, 1);
        println!(
            "single_thread: cycle {:.0} ops/s (p50 {:.2}us p99 {:.2}us)",
            single.cycle.ops_per_sec, single.cycle.p50_us, single.cycle.p99_us
        );
        let threaded = measure(payload, shards, iters, trials, 8, 1);
        println!(
            "threads_8 (sharded): cycle {:.0} ops/s (p50 {:.2}us p99 {:.2}us)",
            threaded.cycle.ops_per_sec, threaded.cycle.p50_us, threaded.cycle.p99_us
        );
        let single_lock = measure(payload, 1, iters, trials, 8, 1);
        let speedup = threaded.cycle.ops_per_sec / single_lock.cycle.ops_per_sec;
        println!(
            "threads_8 (--shards 1 single lock): cycle {:.0} ops/s; sharded speedup {speedup:.2}x",
            single_lock.cycle.ops_per_sec
        );
        let batched = measure(payload, shards, iters, trials, 1, 32);
        println!(
            "batch_32: cycle {:.0} ops/s (p50 {:.2}us p99 {:.2}us)",
            batched.cycle.ops_per_sec, batched.cycle.p50_us, batched.cycle.p99_us
        );

        // Optional fourth section: the replication A/B, recorded so the
        // committed trajectory carries the measured durability cost.
        let repl_section = replicate
            .then(|| replicate_ab_gate(iters, payload, tolerance))
            .map_or(String::new(), |r| {
                format!(
                    ",\n  \"replication_ab\": {{\n    \"pairs\": {},\n    \"burst\": {},\n    \
                     \"block\": {},\n    \
                     \"put_path_median_ratio\": {:.4},\n    \"put_path_overhead_pct\": {:.2},\n    \
                     \"replicated_cycle_ops_per_sec\": {:.1},\n    \
                     \"plain_cycle_ops_per_sec\": {:.1},\n    \
                     \"pipeline_median_ratio\": {:.4},\n    \"pipeline_overhead_pct\": {:.2},\n    \
                     \"pipeline_replicated_cycle_ops_per_sec\": {:.1},\n    \
                     \"pipeline_plain_cycle_ops_per_sec\": {:.1}\n  }}",
                    r.pairs,
                    r.burst,
                    r.block,
                    r.median_ratio,
                    r.overhead_pct,
                    r.replicated_ops,
                    r.plain_ops,
                    r.pipeline_ratio,
                    r.pipeline_overhead_pct,
                    r.pipeline_replicated_ops,
                    r.pipeline_plain_ops
                )
            });

        let effective_shards = if shards > 0 {
            shards
        } else {
            DEFAULT_STM_SHARDS
        };
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let json = format!(
            "{{\n  \"schema\": \"bench-stm-v2\",\n  \"iters\": {iters},\n  \"trials\": {trials},\n  \
             \"payload_bytes\": {payload},\n  \"shards\": {effective_shards},\n  \"cores\": {cores},\n  \
             \"single_thread\": {{\n    \"threads\": 1,\n    \"batch\": 1,\n{}\n  }},\n  \
             \"threads_8\": {{\n    \"threads\": 8,\n    \"batch\": 1,\n    \
             \"single_lock_cycle_ops_per_sec\": {:.1},\n    \
             \"speedup_vs_single_lock\": {speedup:.2},\n{}\n  }},\n  \
             \"batch_32\": {{\n    \"threads\": 1,\n    \"batch\": 32,\n{}\n  }}{repl_section}\n}}\n",
            json_ops(&single),
            single_lock.cycle.ops_per_sec,
            json_ops(&threaded),
            json_ops(&batched),
        );
        std::fs::write(&out_path, &json).expect("write report");
        println!("wrote {out_path}");
        if min_speedup > 0.0 {
            let required = min_speedup.min((cores as f64 / 4.0).max(0.7));
            println!(
                "speedup gate: {speedup:.2}x measured, {required:.2}x required \
                 ({min_speedup:.2}x requested, scaled to {cores} cores)"
            );
            if speedup < required {
                eprintln!(
                    "FAIL: 8-thread sharded speedup {speedup:.2}x below required {required:.2}x"
                );
                std::process::exit(1);
            }
        }
        return;
    }

    let mut rig = Rig::new(payload, shards);
    rig.reg.tracer().set_sampling(sampling);
    // Warmup.
    rig.run_block_mode((iters / 10).max(1), threads, batch);

    let report = rig.run_best(iters, trials, threads, batch);
    let spans = rig.reg.tracer().dump().spans.len();

    let json = format!(
        "{{\n  \"schema\": \"bench-stm-v2\",\n  \"iters\": {iters},\n  \"trials\": {trials},\n  \
         \"payload_bytes\": {payload},\n  \"threads\": {threads},\n  \"batch\": {batch},\n  \
         \"shards\": {shards},\n  \"trace_sampling\": {sampling},\n  \
         \"spans_recorded\": {spans},\n  \"run\": {{\n{}\n  }}\n}}\n",
        json_ops(&report),
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!(
        "wrote {out_path}: cycle {:.0} ops/s (p50 {:.2}us p99 {:.2}us), threads={threads}, \
         batch={batch}, sampling={sampling}, {spans} spans",
        report.cycle.ops_per_sec, report.cycle.p50_us, report.cycle.p99_us
    );

    if let Some(baseline_path) = compare {
        let baseline = std::fs::read_to_string(&baseline_path).expect("read baseline");
        let base_cycle = extract_ops_per_sec(&baseline, "cycle").expect("baseline cycle ops/s");
        let drift_pct = (report.cycle.ops_per_sec - base_cycle) / base_cycle * 100.0;
        println!(
            "cycle throughput vs {baseline_path}: {base_cycle:.1} -> {:.1} ops/s ({drift_pct:+.2}%)",
            report.cycle.ops_per_sec
        );
    }

    if let Some(every_nth) = ab {
        // Paired overhead gate: many small back-to-back (untraced,
        // traced) block pairs, alternating order, so machine-load
        // drift hits both sides equally; the median of the per-pair
        // throughput ratios is then robust to load spikes in a way no
        // whole-run comparison on a shared machine can be.
        const PAIRS: usize = 24;
        let block = (iters / 8).max(1_000);
        let mut ratios = Vec::with_capacity(PAIRS);
        for pair in 0..PAIRS {
            let (first, second) = if pair % 2 == 0 {
                (0, every_nth)
            } else {
                (every_nth, 0)
            };
            rig.reg.tracer().set_sampling(first);
            let a = rig.run_block(block).cycle.ops_per_sec;
            rig.reg.tracer().set_sampling(second);
            let b = rig.run_block(block).cycle.ops_per_sec;
            let (off, on) = if pair % 2 == 0 { (a, b) } else { (b, a) };
            ratios.push(on / off);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let median = (ratios[PAIRS / 2 - 1] + ratios[PAIRS / 2]) / 2.0;
        let overhead_pct = (1.0 - median) * 100.0;
        println!(
            "tracing overhead (sampling={every_nth}, median of {PAIRS} paired blocks of {block}): \
             {overhead_pct:+.2}%"
        );
        if overhead_pct > tolerance {
            eprintln!("FAIL: overhead {overhead_pct:.2}% exceeds tolerance {tolerance}%");
            std::process::exit(1);
        }
        println!("within tolerance ({tolerance}%)");
    }

    if let Some(tick_ms) = recorder_ab {
        // Same paired-block design as --ab, toggling a flight-recorder
        // sampler thread instead of trace sampling. Tracing stays off
        // on both sides so only the recorder's cost is measured.
        rig.reg.tracer().set_sampling(0);
        const PAIRS: usize = 24;
        let block = (iters / 8).max(1_000);
        let recorder = Arc::new(HistoryRecorder::new(DEFAULT_HISTORY_CAPACITY));
        let mut ratios = Vec::with_capacity(PAIRS);
        for pair in 0..PAIRS {
            let first_on = pair % 2 == 1;
            let a = recorder_side(&mut rig, &recorder, tick_ms, block, first_on);
            let b = recorder_side(&mut rig, &recorder, tick_ms, block, !first_on);
            let (off, on) = if first_on { (b, a) } else { (a, b) };
            ratios.push(on / off);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let median = (ratios[PAIRS / 2 - 1] + ratios[PAIRS / 2]) / 2.0;
        let overhead_pct = (1.0 - median) * 100.0;
        println!(
            "recorder overhead (tick={tick_ms}ms, median of {PAIRS} paired blocks of {block}): \
             {overhead_pct:+.2}%, {} ring overwrites",
            recorder.total_dropped()
        );
        if overhead_pct > tolerance {
            eprintln!("FAIL: recorder overhead {overhead_pct:.2}% exceeds tolerance {tolerance}%");
            std::process::exit(1);
        }
        println!("within tolerance ({tolerance}%)");
    }

    if replicate {
        replicate_ab_gate(iters, payload, tolerance);
    }

    if exec {
        exec_ab_gate(iters, payload, tolerance);
    }
}
