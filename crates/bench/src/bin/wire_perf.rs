//! `wire_perf` — machine-readable data-plane perf trajectory.
//!
//! Measures codec encode/decode cost (ns per frame) and CLF UDP
//! loopback throughput (MB/s) at 64 B / 4 KiB / 64 KiB item payloads
//! and writes the numbers as JSON (schema `bench-wire-v1`), so the
//! repo keeps a wire-path trajectory that
//! `scripts/check_bench_regression.py` can diff run over run:
//!
//! ```text
//! wire_perf [--out BENCH_wire.json] [--iters N] [--trials N]
//!           [--min-speedup X] [--min-clf MBPS]
//! ```
//!
//! Each configuration runs `--trials` measured blocks and reports the
//! best one (by throughput), damping scheduler noise on shared
//! machines. This build measures the zero-copy scatter-gather paths
//! (`"mode": "zero-copy"`) **and** the retained legacy contiguous
//! paths in the same process, so every report carries its own A/B; the
//! pre-rework record lives at `results/BENCH_wire_baseline.json`.
//! `--min-speedup X` turns the 4 KiB A/B into a self-gate: the run
//! fails unless zero-copy encode+decode throughput is at least `X`
//! times the legacy path for both codecs. `--min-clf MBPS` gates the
//! 4 KiB CLF loopback number the same way, pinning the sliding-window
//! SACK transport's throughput floor.

use std::time::Instant;

use bytes::Bytes;
use dstampede_clf::{udp_mesh, ClfError, ClfTransport, UdpConfig};
use dstampede_core::{AsId, Timestamp};
use dstampede_wire::{codec_for, CodecId, JdrCodec, Request, RequestFrame, WaitSpec, XdrCodec};

/// Payload sizes from the issue: tiny control-ish, typical item, jumbo.
const SIZES: [usize; 3] = [64, 4096, 65536];

/// The A/B self-gate applies at this payload size.
const GATE_SIZE: usize = 4096;

/// One measured codec configuration: the zero-copy path plus the
/// legacy contiguous path, same frame, same process.
struct CodecStats {
    encode_ns: f64,
    decode_ns: f64,
    /// Encode+decode round trips per second (zero-copy path).
    ops_per_sec: f64,
    legacy_encode_ns: f64,
    legacy_decode_ns: f64,
    legacy_ops_per_sec: f64,
}

impl CodecStats {
    /// Zero-copy over legacy round-trip throughput.
    fn speedup(&self) -> f64 {
        self.ops_per_sec / self.legacy_ops_per_sec
    }
}

fn put_frame(size: usize) -> RequestFrame {
    RequestFrame::new(
        7,
        Request::ChannelPut {
            conn: 3,
            ts: Timestamp::new(42),
            tag: 0,
            payload: Bytes::from(vec![0xa5; size]),
            wait: WaitSpec::Forever,
        },
    )
}

/// Iteration count scaled down for big payloads so the byte-at-a-time
/// JDR decode of a 64 KiB frame doesn't dominate the wall clock.
fn codec_iters(base: usize, size: usize) -> usize {
    (base * 256 / size.max(1)).clamp(500, base)
}

/// Times `iters` runs of `op`, returning (total seconds, ns per op).
fn timed<T>(iters: usize, mut op: impl FnMut() -> T) -> (f64, f64) {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    let s = t0.elapsed().as_secs_f64();
    (s, s * 1e9 / iters as f64)
}

/// One measured block: `iters` encodes then `iters` decodes of the
/// same frame through both the zero-copy and the legacy path, timed as
/// totals (per-op cost is well under timer granularity).
fn run_codec_block(id: CodecId, size: usize, iters: usize) -> CodecStats {
    let codec = codec_for(id);
    let frame = put_frame(size);
    let wire = codec.encode_request(&frame).expect("encode").to_bytes();

    let (enc_s, encode_ns) = timed(iters, || codec.encode_request(&frame).expect("encode"));
    let (dec_s, decode_ns) = timed(iters, || codec.decode_request(&wire).expect("decode"));

    // Legacy contiguous A/B: inherent methods on the concrete codecs.
    let (legacy_enc_s, legacy_encode_ns, legacy_dec_s, legacy_decode_ns) = match id {
        CodecId::Xdr => {
            let c = XdrCodec::new();
            let (es, en) = timed(iters, || c.encode_request_legacy(&frame).expect("encode"));
            let (ds, dn) = timed(iters, || c.decode_request_legacy(&wire).expect("decode"));
            (es, en, ds, dn)
        }
        CodecId::Jdr => {
            let c = JdrCodec::new();
            let (es, en) = timed(iters, || c.encode_request_legacy(&frame).expect("encode"));
            let (ds, dn) = timed(iters, || c.decode_request_legacy(&wire).expect("decode"));
            (es, en, ds, dn)
        }
    };

    CodecStats {
        encode_ns,
        decode_ns,
        ops_per_sec: iters as f64 / (enc_s + dec_s),
        legacy_encode_ns,
        legacy_decode_ns,
        legacy_ops_per_sec: iters as f64 / (legacy_enc_s + legacy_dec_s),
    }
}

fn run_codec_best(id: CodecId, size: usize, iters: usize, trials: usize) -> CodecStats {
    run_codec_block(id, size, (iters / 10).max(1)); // warmup
    (0..trials)
        .map(|_| run_codec_block(id, size, iters))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one trial")
}

/// Message count per CLF block, scaled to roughly constant byte volume.
fn clf_msgs(size: usize) -> usize {
    (8 * 1024 * 1024 / size.max(1)).clamp(200, 4000)
}

/// Sends with a bounded-window retry: the UDP ARQ signals
/// `Backpressure` when the unacked window is full, which on loopback
/// just means the acks are a poll behind.
fn send_windowed<T: ClfTransport + ?Sized>(ep: &T, dst: AsId, msg: Bytes) {
    loop {
        match ep.send(dst, msg.clone()) {
            Ok(()) => return,
            Err(ClfError::Backpressure { .. }) => {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Err(e) => panic!("clf send: {e}"),
        }
    }
}

/// One-way UDP loopback throughput: MB (1e6 bytes) per second from
/// first send to last delivery.
fn run_clf_block(size: usize, msgs: usize) -> f64 {
    let mut endpoints = udp_mesh(2, UdpConfig::default()).expect("udp mesh");
    let rx = endpoints.pop().expect("rx endpoint");
    let tx = endpoints.pop().expect("tx endpoint");
    let msg = Bytes::from(vec![0x5a; size]);

    // Warmup round trip so peer addresses and socket buffers are hot.
    send_windowed(&*tx, AsId(1), msg.clone());
    rx.recv().expect("warmup recv");

    let receiver = std::thread::spawn(move || {
        let mut bytes_in = 0usize;
        for _ in 0..msgs {
            let (_, m) = rx.recv().expect("recv");
            bytes_in += m.len();
        }
        rx.shutdown();
        bytes_in
    });

    let t0 = Instant::now();
    for _ in 0..msgs {
        send_windowed(&*tx, AsId(1), msg.clone());
    }
    let bytes_in = receiver.join().expect("receiver thread");
    let wall_s = t0.elapsed().as_secs_f64();
    tx.shutdown();
    assert_eq!(bytes_in, size * msgs, "short delivery");
    bytes_in as f64 / 1e6 / wall_s
}

fn run_clf_best(size: usize, trials: usize) -> f64 {
    (0..trials)
        .map(|_| run_clf_block(size, clf_msgs(size)))
        .max_by(f64::total_cmp)
        .expect("at least one trial")
}

fn json_codec(label: &str, size: usize, s: &CodecStats) -> String {
    format!(
        "  \"{label}_{size}\": {{ \"encode_ns\": {:.1}, \"decode_ns\": {:.1}, \
         \"ops_per_sec\": {:.1}, \"legacy_encode_ns\": {:.1}, \"legacy_decode_ns\": {:.1}, \
         \"legacy_ops_per_sec\": {:.1}, \"speedup\": {:.2} }}",
        s.encode_ns,
        s.decode_ns,
        s.ops_per_sec,
        s.legacy_encode_ns,
        s.legacy_decode_ns,
        s.legacy_ops_per_sec,
        s.speedup()
    )
}

fn main() {
    let mut out_path = "BENCH_wire.json".to_owned();
    let mut iters: usize = 20_000;
    let mut trials: usize = 3;
    let mut min_speedup: Option<f64> = None;
    let mut min_clf: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = take("--out"),
            "--iters" => iters = take("--iters").parse().expect("bad --iters"),
            "--trials" => {
                trials = take("--trials")
                    .parse::<usize>()
                    .expect("bad --trials")
                    .max(1)
            }
            "--min-speedup" => {
                min_speedup = Some(take("--min-speedup").parse().expect("bad --min-speedup"));
            }
            "--min-clf" => {
                min_clf = Some(take("--min-clf").parse().expect("bad --min-clf"));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut sections = Vec::new();
    let mut gate_failures = Vec::new();
    for size in SIZES {
        let n = codec_iters(iters, size);
        for (label, id) in [("xdr", CodecId::Xdr), ("jdr", CodecId::Jdr)] {
            let s = run_codec_best(id, size, n, trials);
            println!(
                "{label}_{size}: encode {:.0} ns, decode {:.0} ns, {:.0} roundtrips/s \
                 (legacy {:.0}/{:.0} ns, {:.2}x)",
                s.encode_ns,
                s.decode_ns,
                s.ops_per_sec,
                s.legacy_encode_ns,
                s.legacy_decode_ns,
                s.speedup()
            );
            if size == GATE_SIZE {
                if let Some(min) = min_speedup {
                    if s.speedup() < min {
                        gate_failures.push(format!(
                            "{label}_{size}: zero-copy is only {:.2}x legacy, need {min:.2}x",
                            s.speedup()
                        ));
                    }
                }
            }
            sections.push(json_codec(label, size, &s));
        }
        let mb_s = run_clf_best(size, trials);
        println!("clf_{size}: {mb_s:.1} MB/s one-way loopback");
        if size == GATE_SIZE {
            if let Some(min) = min_clf {
                if mb_s < min {
                    gate_failures.push(format!(
                        "clf_{size}: {mb_s:.1} MB/s under the {min:.1} MB/s floor"
                    ));
                }
            }
        }
        sections.push(format!("  \"clf_{size}\": {{ \"mb_per_sec\": {mb_s:.2} }}"));
    }

    let json = format!(
        "{{\n  \"schema\": \"bench-wire-v1\",\n  \"mode\": \"zero-copy\",\n  \
         \"iters\": {iters},\n  \"trials\": {trials},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("min-speedup gate: {f}");
        }
        std::process::exit(1);
    }
}
