//! Shared driver for Experiments 2 and 3 (paper §5.1, Figures 12–13):
//! end device ↔ cluster data exchange.
//!
//! The producer runs on an end device using the client library over TCP;
//! Experiment 2 uses the C flavour (XDR), Experiment 3 the Java flavour
//! (JDR) — they differ *only* in codec, which is exactly the paper's
//! comparison. Three configurations vary the consumer's location, as in
//! Figures 8–10:
//!
//! * **Configuration 1** — consumer co-located with the channel on the
//!   cluster: one device↔cluster traversal. Shows the exact D-Stampede
//!   overhead over TCP (paper: ≤ ~12 % at best for the C client).
//! * **Configuration 2** — consumer on the cluster but in a *different*
//!   address space from the channel: adds one intra-cluster traversal.
//! * **Configuration 3** — consumer on a second end device: two
//!   device↔cluster traversals; the largest overhead.
//!
//! Baseline: a raw-TCP producer/consumer pair (half a round trip), since
//! every configuration's client link is TCP. As the paper observes
//! (Result 2), the TCP baseline looks the same from C and Java; the
//! D-Stampede difference comes from marshalling.
//!
//! Like Experiment 1, both raw-loopback and 2002-shaped numbers are
//! reported unless `--raw` is given.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use dstampede_clf::shaping::precise_sleep;
use dstampede_clf::{NetProfile, ShapedStream, TokenBucket};
use dstampede_client::EndDevice;
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_runtime::Cluster;
use dstampede_wire::{read_frame, write_frame, CodecId, WaitSpec};

use crate::{measure_us, median_us, message_sizes, ExpOptions, ResultTable};

/// Consumer placement, mirroring Figures 8–10.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    CoLocated,
    OtherAddressSpace,
    SecondEndDevice,
}

/// Shaping for one run: client link and intra-cluster link profiles.
#[derive(Clone, Copy)]
struct Shaping {
    client: Option<NetProfile>,
    cluster: Option<NetProfile>,
}

impl Shaping {
    fn raw() -> Self {
        Shaping {
            client: None,
            cluster: None,
        }
    }

    fn year_2002() -> Self {
        Shaping {
            client: Some(NetProfile::end_device_2002()),
            cluster: Some(NetProfile::gige_2002()),
        }
    }
}

fn attach(
    addr: std::net::SocketAddr,
    codec: CodecId,
    name: &str,
    profile: Option<NetProfile>,
) -> EndDevice {
    match profile {
        None => EndDevice::attach(addr, codec, name).expect("attach"),
        Some(p) => {
            let stream = dstampede_clf::tcp_connect(addr).expect("connect");
            EndDevice::attach_over(Box::new(ShapedStream::new(stream, p)), codec, name)
                .expect("attach")
        }
    }
}

fn config_latency(
    codec: CodecId,
    config: Config,
    size: usize,
    iters: usize,
    shaping: Shaping,
) -> f64 {
    let mut builder = Cluster::builder().address_spaces(2);
    if let Some(p) = shaping.cluster {
        builder = builder.shaped(p);
    }
    let cluster = builder.build().expect("cluster");
    let addr = cluster.listener_addr(0).expect("listener");

    // Producer end device; its channel is created in the surrogate's
    // address space (AS 0).
    let producer = attach(addr, codec, "producer", shaping.client);
    let chan = producer
        .create_channel(None, ChannelAttrs::default())
        .expect("create");
    let out = producer.connect_channel_out(chan).expect("connect");

    enum Consumer {
        InCluster(dstampede_runtime::ChanInput),
        EndDevice(
            dstampede_client::ClientChanIn,
            #[allow(dead_code)] EndDevice,
        ),
    }

    let consumer = match config {
        Config::CoLocated => Consumer::InCluster(
            cluster
                .space(0)
                .expect("as0")
                .open_channel(chan)
                .expect("open")
                .connect_input(Interest::FromEarliest)
                .expect("connect"),
        ),
        Config::OtherAddressSpace => Consumer::InCluster(
            cluster
                .space(1)
                .expect("as1")
                .open_channel(chan)
                .expect("open")
                .connect_input(Interest::FromEarliest)
                .expect("connect"),
        ),
        Config::SecondEndDevice => {
            let device = attach(addr, codec, "consumer", shaping.client);
            let inp = device
                .connect_channel_in(chan, Interest::FromEarliest)
                .expect("connect");
            Consumer::EndDevice(inp, device)
        }
    };

    let mut ts = 0i64;
    let samples = measure_us(8, iters, || {
        let t = Timestamp::new(ts);
        ts += 1;
        out.put(t, Item::from_vec(vec![0xa5; size]), WaitSpec::Forever)
            .expect("put");
        let item = match &consumer {
            Consumer::InCluster(inp) => {
                let (_, item) = inp.get(GetSpec::Exact(t), WaitSpec::Forever).expect("get");
                inp.consume_until(t).expect("consume");
                item
            }
            Consumer::EndDevice(inp, _) => {
                let (_, item) = inp.get(GetSpec::Exact(t), WaitSpec::Forever).expect("get");
                inp.consume_until(t).expect("consume");
                item
            }
        };
        assert_eq!(item.len(), size);
    });
    let result = median_us(&samples);
    drop(consumer);
    drop(out);
    producer.detach().expect("detach");
    cluster.shutdown();
    result
}

fn tcp_baseline(size: usize, iters: usize, profile: Option<NetProfile>) -> f64 {
    let listener = dstampede_clf::tcp_listen_loopback().expect("listen");
    let addr = listener.local_addr().expect("addr");
    let echo = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).expect("nodelay");
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let mut len = [0u8; 4];
            if s.read_exact(&mut len).is_err() {
                return;
            }
            let n = u32::from_be_bytes(len) as usize;
            s.read_exact(&mut buf[..n]).expect("read");
            s.write_all(&len).expect("write");
            s.write_all(&buf[..n]).expect("write");
        }
    });
    let bucket = profile
        .and_then(|p| p.bandwidth)
        .map(|r| Arc::new(TokenBucket::new(r)));
    let latency = profile.map_or(Duration::ZERO, |p| p.latency);
    let charge = |bytes: usize| {
        if let Some(b) = &bucket {
            b.consume(bytes);
        }
        precise_sleep(latency);
    };
    let mut stream = dstampede_clf::tcp_connect(addr).expect("connect");
    let msg = vec![0x3c_u8; size];
    let samples = measure_us(8, iters, || {
        charge(size);
        write_frame(&mut stream, &msg).expect("send");
        charge(size);
        let back = read_frame(&mut stream).expect("recv");
        assert_eq!(back.len(), size);
    });
    drop(stream);
    echo.join().expect("echo");
    median_us(&samples) / 2.0
}

/// Shared driver for Experiments 2 and 3 (they differ only in codec).
pub fn run(codec: CodecId, figure: &str, opts: &ExpOptions) {
    let iters = if opts.quick { 10 } else { 30 };
    let modes: Vec<(&str, Shaping)> = if opts.raw_only {
        vec![("raw", Shaping::raw())]
    } else {
        vec![("raw", Shaping::raw()), ("2002", Shaping::year_2002())]
    };

    let mut columns: Vec<String> = vec!["size_bytes".to_owned()];
    for (label, _) in &modes {
        for series in ["config1", "config2", "config3", "tcp"] {
            columns.push(format!("{series}_{label}_us"));
        }
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        &format!("{figure} — {codec} client end device ↔ cluster latency (µs)"),
        &column_refs,
    );

    for size in message_sizes(opts.quick) {
        let mut row = vec![size.to_string()];
        for (label, shaping) in &modes {
            let c1 = config_latency(codec, Config::CoLocated, size, iters, *shaping);
            let c2 = config_latency(codec, Config::OtherAddressSpace, size, iters, *shaping);
            let c3 = config_latency(codec, Config::SecondEndDevice, size, iters, *shaping);
            let tcp = tcp_baseline(size, iters, shaping.client);
            row.extend([
                format!("{c1:.1}"),
                format!("{c2:.1}"),
                format!("{c3:.1}"),
                format!("{tcp:.1}"),
            ]);
            eprintln!("size={size} [{label}]: c1={c1:.1} c2={c2:.1} c3={c3:.1} tcp={tcp:.1}");
        }
        table.row(&row);
    }
    table.emit(opts.csv.as_deref());
    println!(
        "Paper shape check: config1 < config2 < config3, every curve tracking the \
         TCP baseline's slope (§5.1, {figure})."
    );
}
