//! # dstampede-bench — experiment harness
//!
//! Regenerates every results figure and table of the paper's §5:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Figure 11 (Experiment 1, intra-cluster)        | `exp1_intra_cluster` |
//! | Figure 12 (Experiment 2, C client, 3 configs)  | `exp2_c_client` |
//! | Figure 13 (Experiment 3, Java client)          | `exp3_java_client` |
//! | Figure 14 (app, single-threaded mixers)        | `app_single_threaded` |
//! | Figure 15 (app, multi-threaded mixer)          | `app_multi_threaded` |
//! | Table 1 (delivered bandwidth)                  | `app_bandwidth_table` |
//! | everything, quick settings                     | `run_all` |
//!
//! Each binary prints a markdown table with the same rows/series the paper
//! reports and accepts `--quick` (sparser sweeps) and `--csv PATH`.
//! Criterion micro-benchmarks (`benches/`) cover the core data structures,
//! transports, codecs and the REF-vs-TGC garbage-collection ablation.

#![warn(missing_docs)]

pub mod exp_client;

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measures the latencies of `iters` runs of `op` after `warmup` runs,
/// returning microseconds per run.
pub fn measure_us<F: FnMut()>(warmup: usize, iters: usize, mut op: F) -> Vec<f64> {
    for _ in 0..warmup {
        op();
    }
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        op();
        out.push(start.elapsed().as_secs_f64() * 1e6);
    }
    out
}

/// The median of a latency sample (microseconds).
///
/// # Panics
///
/// Panics on an empty sample.
#[must_use]
pub fn median_us(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// A result table with named columns, printable as markdown and CSV.
#[derive(Debug, Clone)]
pub struct ResultTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// An empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        ResultTable {
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the markdown rendering and optionally writes CSV to a path.
    pub fn emit(&self, csv_path: Option<&str>) {
        println!("{}", self.to_markdown());
        if let Some(path) = csv_path {
            if let Err(e) = std::fs::write(path, self.to_csv()) {
                dstampede_obs::warn("bench", format!("failed to write {path}: {e}"));
            } else {
                dstampede_obs::info("bench", format!("wrote {path}"));
            }
        }
    }
}

/// Shared command-line options for the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct ExpOptions {
    /// Sparser sweep / fewer iterations.
    pub quick: bool,
    /// Write CSV output here.
    pub csv: Option<String>,
    /// Disable the 2002 shaping profiles (report raw modern-loopback
    /// numbers only).
    pub raw_only: bool,
}

impl ExpOptions {
    /// Parses `--quick`, `--raw`, and `--csv PATH` from `std::env::args`.
    #[must_use]
    pub fn from_args() -> Self {
        // Experiment binaries are interactive tools: echo Info events
        // (progress, "wrote <csv>") to the terminal.
        dstampede_obs::global()
            .events()
            .set_echo(Some(dstampede_obs::Level::Info));
        let mut opts = ExpOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--raw" => opts.raw_only = true,
                "--csv" => opts.csv = args.next(),
                other => {
                    dstampede_obs::warn("bench", format!("ignoring unknown argument {other}"));
                }
            }
        }
        opts
    }
}

/// The paper's message-size sweep: 1000..=60000 bytes. The quick variant
/// keeps every fourth point.
#[must_use]
pub fn message_sizes(quick: bool) -> Vec<usize> {
    let step = if quick { 4000 } else { 1000 };
    (1..=60)
        .map(|k| k * 1000)
        .filter(|s| s % step == 0)
        .collect()
}

/// The paper's application image sizes (Figures 14–15, Table 1), in bytes.
#[must_use]
pub fn image_sizes(quick: bool) -> Vec<usize> {
    let kb: &[usize] = if quick {
        &[74, 125, 190]
    } else {
        &[74, 89, 106, 125, 145, 160, 175, 190]
    };
    kb.iter().map(|k| k * 1024).collect()
}

/// Busy-waits `d` (sub-millisecond precision for latency experiments).
pub fn spin_sleep(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median_us(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_us(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn measure_collects_samples() {
        let samples = measure_us(2, 5, || spin_sleep(Duration::from_micros(50)));
        assert_eq!(samples.len(), 5);
        assert!(median_us(&samples) >= 40.0);
    }

    #[test]
    fn table_renders_both_formats() {
        let mut t = ResultTable::new("Demo", &["size", "latency"]);
        t.row(&["1000".into(), "12.5".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 1000 | 12.5 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("size,latency\n"));
        assert!(csv.contains("1000,12.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = ResultTable::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn sweeps_have_expected_shape() {
        let full = message_sizes(false);
        assert_eq!(full.len(), 60);
        assert_eq!(full[0], 1000);
        assert_eq!(*full.last().unwrap(), 60000);
        let quick = message_sizes(true);
        assert!(quick.len() < full.len());
        assert_eq!(image_sizes(false).len(), 8);
        assert_eq!(image_sizes(true).len(), 3);
    }
}
