//! Transport errors.

use std::error::Error;
use std::fmt;

use dstampede_core::AsId;

/// Errors produced by the CLF transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClfError {
    /// The destination address space is not known to this fabric.
    UnknownPeer,
    /// The endpoint has been shut down.
    Closed,
    /// A timed receive expired.
    Timeout,
    /// A non-blocking receive found nothing.
    Empty,
    /// An underlying socket failed.
    Io(String),
    /// The sender's packet window for the named peer is genuinely full:
    /// staged plus unacknowledged packets have reached the configured
    /// `max_unacked` bound (the peer has stopped ACKing, or is being
    /// outrun). Retry later or declare the peer dead. Pacer deferral and
    /// the in-flight byte budget never raise this — they only delay
    /// transmission of packets the window has already accepted.
    Backpressure {
        /// The destination whose packet window is full.
        peer: AsId,
    },
}

impl fmt::Display for ClfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClfError::UnknownPeer => write!(f, "unknown destination address space"),
            ClfError::Closed => write!(f, "endpoint is shut down"),
            ClfError::Timeout => write!(f, "receive timed out"),
            ClfError::Empty => write!(f, "no message available"),
            ClfError::Io(s) => write!(f, "transport i/o error: {s}"),
            ClfError::Backpressure { peer } => {
                write!(f, "send buffer full for peer as-{}", peer.0)
            }
        }
    }
}

impl Error for ClfError {}

impl From<std::io::Error> for ClfError {
    fn from(e: std::io::Error) -> Self {
        ClfError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClfError>();
        for e in [
            ClfError::UnknownPeer,
            ClfError::Closed,
            ClfError::Timeout,
            ClfError::Empty,
            ClfError::Io("x".into()),
            ClfError::Backpressure { peer: AsId(3) },
        ] {
            assert!(!e.to_string().is_empty());
        }
        // Backpressure names the peer whose window is full.
        assert!(ClfError::Backpressure { peer: AsId(3) }
            .to_string()
            .contains("as-3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        assert!(matches!(ClfError::from(io), ClfError::Io(_)));
    }
}
