//! Deterministic fault injection for any [`ClfTransport`].
//!
//! [`LossInjection`](crate::udp::LossInjection) can only drop DATA
//! packets inside the UDP backend. Chaos testing the runtime needs more:
//! partitions (full and one-way), delays, duplicates, and whole-process
//! crashes, on *any* backend including the in-memory fabric. A
//! [`FaultPlan`] holds those rules — mutable mid-run, deterministic under
//! a fixed seed — and [`FaultTransport`] applies them on the send and
//! receive paths of a wrapped transport.
//!
//! Crash semantics: once an address space is crashed (explicitly via
//! [`FaultPlan::crash`] or by tripping [`FaultPlan::crash_at_packet`]),
//! its sends fail with [`ClfError::Closed`] and its receive loop
//! reports [`ClfError::Closed`], so the owning dispatcher exits exactly
//! as if the process died. Traffic *to* a crashed space is silently
//! dropped, like a network feeding a dead host.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use dstampede_core::AsId;
use dstampede_obs::MetricsRegistry;

use crate::error::ClfError;
use crate::transport::{ClfTransport, TransportStats};

/// How often a crashed endpoint's blocked `recv` re-checks the plan.
const CRASH_POLL: Duration = Duration::from_millis(20);

/// Counters describing what a [`FaultPlan`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages silently dropped (loss rules, partitions, dead peers).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages delayed before delivery.
    pub delayed: u64,
    /// Sends refused because the sender is crashed.
    pub refused: u64,
}

#[derive(Debug, Default)]
struct PlanState {
    rng: u64,
    sent: u64,
    drop_every_nth: Option<u32>,
    drop_permille: Option<u32>,
    delay: Option<Duration>,
    duplicate_every_nth: Option<u32>,
    /// One-way cuts: messages from `.0` to `.1` vanish.
    cuts: HashSet<(AsId, AsId)>,
    crashed: HashSet<AsId>,
    /// Space → packet budget; decremented per send, crash at zero.
    crash_after: HashMap<AsId, u64>,
    stats: FaultStats,
}

impl PlanState {
    /// xorshift-free LCG step (Knuth's MMIX constants); deterministic
    /// under a fixed seed and cheap enough for the send path.
    fn next_rand(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng >> 11
    }
}

/// What [`FaultPlan::on_send`] decided for one message.
enum SendVerdict {
    /// The sender is dead; fail the send with [`ClfError::Closed`].
    Refused,
    /// Swallow the message silently.
    Dropped,
    /// Deliver it, optionally late and/or twice.
    Deliver {
        delay: Option<Duration>,
        duplicate: bool,
    },
}

/// What [`FaultPlan::on_packet`] decided for one packet on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// The packet vanishes on the wire.
    Dropped,
    /// The packet arrives, optionally twice.
    Deliver {
        /// Deliver a second copy immediately after the first.
        duplicate: bool,
    },
}

/// A mutable, seeded set of fault-injection rules shared by any number
/// of [`FaultTransport`] wrappers (one per address space under test).
///
/// All rules can be changed mid-run; chaos tests typically start clean,
/// let the pipeline warm up, then flip a crash or partition on.
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan with no active rules, seeded for deterministic randomness.
    #[must_use]
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FaultPlan {
            state: Mutex::new(PlanState {
                rng: seed ^ 0x9E37_79B9_7F4A_7C15,
                ..PlanState::default()
            }),
        })
    }

    /// Drop every n-th message plan-wide (n ≥ 2; smaller disables).
    pub fn drop_every_nth(&self, n: u32) {
        self.state.lock().drop_every_nth = (n >= 2).then_some(n);
    }

    /// Drop each message with probability `permille`/1000, decided by
    /// the seeded generator (0 disables).
    pub fn drop_permille(&self, permille: u32) {
        self.state.lock().drop_permille = (permille > 0).then_some(permille.min(1000));
    }

    /// Delay every delivered message by `d` (applied synchronously on
    /// the send path; `None`-like zero disables).
    pub fn delay(&self, d: Duration) {
        self.state.lock().delay = (d > Duration::ZERO).then_some(d);
    }

    /// Deliver every n-th message twice (n ≥ 2; smaller disables).
    pub fn duplicate_every_nth(&self, n: u32) {
        self.state.lock().duplicate_every_nth = (n >= 2).then_some(n);
    }

    /// Cut the link between `a` and `b` in both directions.
    pub fn partition(&self, a: AsId, b: AsId) {
        let mut st = self.state.lock();
        st.cuts.insert((a, b));
        st.cuts.insert((b, a));
    }

    /// Cut only the `from` → `to` direction (asymmetric partition).
    pub fn partition_one_way(&self, from: AsId, to: AsId) {
        self.state.lock().cuts.insert((from, to));
    }

    /// Restore the link between `a` and `b` in both directions.
    pub fn heal(&self, a: AsId, b: AsId) {
        let mut st = self.state.lock();
        st.cuts.remove(&(a, b));
        st.cuts.remove(&(b, a));
    }

    /// Remove every partition (crashes stay crashed).
    pub fn heal_all(&self) {
        self.state.lock().cuts.clear();
    }

    /// Kill `space` now: its sends and receives fail with
    /// [`ClfError::Closed`], traffic to it vanishes.
    pub fn crash(&self, space: AsId) {
        let mut st = self.state.lock();
        st.crashed.insert(space);
        st.crash_after.remove(&space);
    }

    /// Kill `space` after it sends `n` more messages — deterministic
    /// mid-stream death for reproducible chaos tests.
    pub fn crash_at_packet(&self, space: AsId, n: u64) {
        if n == 0 {
            self.crash(space);
        } else {
            self.state.lock().crash_after.insert(space, n);
        }
    }

    /// Whether `space` is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, space: AsId) -> bool {
        self.state.lock().crashed.contains(&space)
    }

    /// What the plan has done so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Packet-level variant of the send-path decision: applies the
    /// plan's loss, duplication, and partition rules (not crash budgets,
    /// refusal, or delay) to one packet on the `src → dst` link. This is
    /// the channel hook the model-based protocol suite uses to drive the
    /// ARQ window state machines through a deterministic lossy network;
    /// the same seed always yields the same verdict sequence.
    pub fn on_packet(&self, src: AsId, dst: AsId) -> FaultVerdict {
        let mut st = self.state.lock();
        st.sent += 1;
        if st.crashed.contains(&dst) || st.cuts.contains(&(src, dst)) {
            st.stats.dropped += 1;
            return FaultVerdict::Dropped;
        }
        if let Some(n) = st.drop_every_nth {
            if st.sent.is_multiple_of(u64::from(n)) {
                st.stats.dropped += 1;
                return FaultVerdict::Dropped;
            }
        }
        if let Some(p) = st.drop_permille {
            let roll = st.next_rand() % 1000;
            if roll < u64::from(p) {
                st.stats.dropped += 1;
                return FaultVerdict::Dropped;
            }
        }
        let duplicate = st
            .duplicate_every_nth
            .is_some_and(|n| st.sent.is_multiple_of(u64::from(n)));
        if duplicate {
            st.stats.duplicated += 1;
        }
        FaultVerdict::Deliver { duplicate }
    }

    fn on_send(&self, src: AsId, dst: AsId) -> SendVerdict {
        let mut st = self.state.lock();
        if st.crashed.contains(&src) {
            st.stats.refused += 1;
            return SendVerdict::Refused;
        }
        if let Some(budget) = st.crash_after.get_mut(&src) {
            *budget -= 1;
            if *budget == 0 {
                st.crash_after.remove(&src);
                st.crashed.insert(src);
                st.stats.refused += 1;
                return SendVerdict::Refused;
            }
        }
        st.sent += 1;
        if st.crashed.contains(&dst) || st.cuts.contains(&(src, dst)) {
            st.stats.dropped += 1;
            return SendVerdict::Dropped;
        }
        if let Some(n) = st.drop_every_nth {
            if st.sent.is_multiple_of(u64::from(n)) {
                st.stats.dropped += 1;
                return SendVerdict::Dropped;
            }
        }
        if let Some(p) = st.drop_permille {
            let roll = st.next_rand() % 1000;
            if roll < u64::from(p) {
                st.stats.dropped += 1;
                return SendVerdict::Dropped;
            }
        }
        let duplicate = st
            .duplicate_every_nth
            .is_some_and(|n| st.sent.is_multiple_of(u64::from(n)));
        if duplicate {
            st.stats.duplicated += 1;
        }
        let delay = st.delay;
        if delay.is_some() {
            st.stats.delayed += 1;
        }
        SendVerdict::Deliver { delay, duplicate }
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FaultPlan")
            .field("crashed", &st.crashed)
            .field("cuts", &st.cuts)
            .field("stats", &st.stats)
            .finish()
    }
}

/// Applies a shared [`FaultPlan`] to a wrapped transport.
pub struct FaultTransport {
    inner: Arc<dyn ClfTransport>,
    plan: Arc<FaultPlan>,
}

impl FaultTransport {
    /// Wraps `inner` so every send/receive consults `plan`.
    #[must_use]
    pub fn wrap(inner: Arc<dyn ClfTransport>, plan: Arc<FaultPlan>) -> Arc<Self> {
        Arc::new(FaultTransport { inner, plan })
    }
}

impl ClfTransport for FaultTransport {
    fn local(&self) -> AsId {
        self.inner.local()
    }

    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError> {
        match self.plan.on_send(self.local(), dst) {
            SendVerdict::Refused => Err(ClfError::Closed),
            SendVerdict::Dropped => Ok(()),
            SendVerdict::Deliver { delay, duplicate } => {
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
                self.inner.send(dst, msg.clone())?;
                if duplicate {
                    self.inner.send(dst, msg)?;
                }
                Ok(())
            }
        }
    }

    fn send_segments(&self, dst: AsId, segments: &[Bytes]) -> Result<(), ClfError> {
        match self.plan.on_send(self.local(), dst) {
            SendVerdict::Refused => Err(ClfError::Closed),
            SendVerdict::Dropped => Ok(()),
            SendVerdict::Deliver { delay, duplicate } => {
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
                self.inner.send_segments(dst, segments)?;
                if duplicate {
                    self.inner.send_segments(dst, segments)?;
                }
                Ok(())
            }
        }
    }

    fn recv(&self) -> Result<(AsId, Bytes), ClfError> {
        loop {
            if self.plan.is_crashed(self.local()) {
                return Err(ClfError::Closed);
            }
            match self.inner.recv_timeout(CRASH_POLL) {
                Ok(m) => return Ok(m),
                Err(ClfError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.plan.is_crashed(self.local()) {
                return Err(ClfError::Closed);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClfError::Timeout);
            }
            match self.inner.recv_timeout(left.min(CRASH_POLL)) {
                Ok(m) => return Ok(m),
                Err(ClfError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError> {
        if self.plan.is_crashed(self.local()) {
            return Err(ClfError::Closed);
        }
        self.inner.try_recv()
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn bind_metrics(&self, registry: &MetricsRegistry) {
        self.inner.bind_metrics(registry);
    }

    fn purge_peer(&self, peer: AsId) {
        self.inner.purge_peer(peer);
    }

    fn set_peer_sack(&self, peer: AsId, enabled: bool) {
        self.inner.set_peer_sack(peer, enabled);
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

impl fmt::Debug for FaultTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultTransport")
            .field("local", &self.inner.local())
            .field("plan", &self.plan)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemFabric;

    fn faulted_pair(plan: &Arc<FaultPlan>) -> (Arc<FaultTransport>, Arc<FaultTransport>) {
        let fabric = MemFabric::new();
        let a = FaultTransport::wrap(fabric.endpoint(AsId(0)), Arc::clone(plan));
        let b = FaultTransport::wrap(fabric.endpoint(AsId(1)), Arc::clone(plan));
        (a, b)
    }

    #[test]
    fn clean_plan_is_transparent() {
        let plan = FaultPlan::new(7);
        let (a, b) = faulted_pair(&plan);
        a.send(AsId(1), Bytes::from_static(b"hi")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(1)).unwrap().1[..],
            b"hi"
        );
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn drop_every_nth_is_deterministic() {
        let plan = FaultPlan::new(7);
        plan.drop_every_nth(3);
        let (a, b) = faulted_pair(&plan);
        for i in 0..9u8 {
            a.send(AsId(1), Bytes::from(vec![i])).unwrap();
        }
        let mut got = Vec::new();
        while let Ok((_, m)) = b.recv_timeout(Duration::from_millis(100)) {
            got.push(m[0]);
        }
        // Messages 3, 6, 9 (1-based) vanish.
        assert_eq!(got, vec![0, 1, 3, 4, 6, 7]);
        assert_eq!(plan.stats().dropped, 3);
    }

    #[test]
    fn duplicate_every_nth_duplicates() {
        let plan = FaultPlan::new(7);
        plan.duplicate_every_nth(2);
        let (a, b) = faulted_pair(&plan);
        for i in 0..4u8 {
            a.send(AsId(1), Bytes::from(vec![i])).unwrap();
        }
        let mut got = Vec::new();
        while let Ok((_, m)) = b.recv_timeout(Duration::from_millis(100)) {
            got.push(m[0]);
        }
        assert_eq!(got, vec![0, 1, 1, 2, 3, 3]);
        assert_eq!(plan.stats().duplicated, 2);
    }

    #[test]
    fn seeded_permille_drops_are_reproducible() {
        let run = || {
            let plan = FaultPlan::new(42);
            plan.drop_permille(300);
            let (a, b) = faulted_pair(&plan);
            for i in 0..30u8 {
                a.send(AsId(1), Bytes::from(vec![i])).unwrap();
            }
            let mut got = Vec::new();
            while let Ok((_, m)) = b.recv_timeout(Duration::from_millis(100)) {
                got.push(m[0]);
            }
            (got, plan.stats().dropped)
        };
        let (got1, dropped1) = run();
        let (got2, dropped2) = run();
        assert_eq!(got1, got2, "same seed must drop the same messages");
        assert_eq!(dropped1, dropped2);
        assert!(dropped1 > 0, "300‰ over 30 sends should drop something");
    }

    #[test]
    fn partition_and_heal() {
        let plan = FaultPlan::new(7);
        let (a, b) = faulted_pair(&plan);
        plan.partition(AsId(0), AsId(1));
        a.send(AsId(1), Bytes::from_static(b"lost")).unwrap();
        b.send(AsId(0), Bytes::from_static(b"lost")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            ClfError::Timeout
        );
        plan.heal(AsId(0), AsId(1));
        a.send(AsId(1), Bytes::from_static(b"through")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(1)).unwrap().1[..],
            b"through"
        );
        assert_eq!(plan.stats().dropped, 2);
    }

    #[test]
    fn one_way_partition_is_asymmetric() {
        let plan = FaultPlan::new(7);
        let (a, b) = faulted_pair(&plan);
        plan.partition_one_way(AsId(0), AsId(1));
        a.send(AsId(1), Bytes::from_static(b"lost")).unwrap();
        b.send(AsId(0), Bytes::from_static(b"back")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            ClfError::Timeout
        );
        assert_eq!(
            &a.recv_timeout(Duration::from_secs(1)).unwrap().1[..],
            b"back"
        );
    }

    #[test]
    fn crash_at_packet_kills_mid_stream() {
        let plan = FaultPlan::new(7);
        let (a, b) = faulted_pair(&plan);
        plan.crash_at_packet(AsId(0), 3);
        a.send(AsId(1), Bytes::from(vec![0])).unwrap();
        a.send(AsId(1), Bytes::from(vec![1])).unwrap();
        assert_eq!(
            a.send(AsId(1), Bytes::from(vec![2])).unwrap_err(),
            ClfError::Closed
        );
        assert!(plan.is_crashed(AsId(0)));
        // The victim's receive path reports death too.
        assert_eq!(
            a.recv_timeout(Duration::from_millis(60)).unwrap_err(),
            ClfError::Closed
        );
        // Survivor still drains what made it out.
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1[0], 0);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1[0], 1);
        // Traffic to the dead space vanishes rather than erroring.
        b.send(AsId(0), Bytes::from_static(b"to the dead")).unwrap();
        assert_eq!(plan.stats().dropped, 1);
    }

    #[test]
    fn delay_is_applied() {
        let plan = FaultPlan::new(7);
        plan.delay(Duration::from_millis(30));
        let (a, b) = faulted_pair(&plan);
        let t0 = Instant::now();
        a.send(AsId(1), Bytes::from_static(b"slow")).unwrap();
        let m = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&m.1[..], b"slow");
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(plan.stats().delayed, 1);
    }
}
