//! # dstampede-clf — the CLF packet transport
//!
//! Reimplementation of **CLF**, the message-passing substrate the
//! D-Stampede server library is built on (paper §3.2.2): reliable, ordered,
//! point-to-point packet transport between address spaces with the illusion
//! of an infinite packet queue.
//!
//! Two backends provide the [`ClfTransport`] contract:
//!
//! * [`mem::MemEndpoint`] — in-process channels, the "shared memory within
//!   an SMP" fast path;
//! * [`udp::UdpEndpoint`] — a sliding-window ARQ protocol (sequencing,
//!   cumulative-ack + SACK-bitmap acknowledgment, hole-only retransmission,
//!   fragmentation, RTT-paced batched syscalls) over real UDP sockets, the
//!   "UDP over a LAN" path. The pure protocol state machines live in
//!   [`window`] so tests can drive them on a virtual clock.
//!
//! [`shaping`] wraps any transport or byte stream in a 2002-calibrated
//! latency/bandwidth model for experiment reproduction, and [`stream`]
//! holds the TCP/duplex-pipe helpers used by the end-device client path.
//!
//! ## Example
//!
//! ```
//! use bytes::Bytes;
//! use dstampede_clf::{ClfTransport, MemFabric};
//! use dstampede_core::AsId;
//!
//! # fn main() -> Result<(), dstampede_clf::ClfError> {
//! let fabric = MemFabric::new();
//! let a = fabric.endpoint(AsId(0));
//! let b = fabric.endpoint(AsId(1));
//! a.send(AsId(1), Bytes::from_static(b"frame 0"))?;
//! assert_eq!(&b.recv()?.1[..], b"frame 0");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fault;
pub mod mem;
pub mod shaping;
pub mod stream;
pub mod transport;
pub mod udp;
mod udp_sys;
pub mod window;

pub use error::ClfError;
pub use fault::{FaultPlan, FaultStats, FaultTransport, FaultVerdict};
pub use mem::{MemEndpoint, MemFabric};
pub use shaping::{NetProfile, Pacer, ShapedStream, ShapedTransport, TokenBucket};
pub use stream::{duplex, tcp_connect, tcp_listen_loopback, PipeEnd};
pub use transport::{ClfTransport, TransportStats};
pub use udp::{udp_mesh, LossInjection, UdpConfig, UdpEndpoint};
pub use window::{RecvWindow, RttEstimator, SendWindow};
