//! In-process CLF backend — "shared memory within an SMP".
//!
//! Every address space hosted in the same OS process exchanges messages
//! through unbounded lock-free channels: reliable, ordered, and never
//! blocking the sender — CLF's contract comes for free. This is the
//! fast path the paper gets from shared memory inside one SMP node.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::RwLock;

use dstampede_core::AsId;
use dstampede_obs::MetricsRegistry;

use crate::error::ClfError;
use crate::transport::{ClfTransport, StatCounters, TransportStats};

type Wire = (AsId, Bytes);

/// A fabric connecting in-process address spaces.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use dstampede_clf::{MemFabric, ClfTransport};
/// use dstampede_core::AsId;
///
/// # fn main() -> Result<(), dstampede_clf::ClfError> {
/// let fabric = MemFabric::new();
/// let a = fabric.endpoint(AsId(0));
/// let b = fabric.endpoint(AsId(1));
/// a.send(AsId(1), Bytes::from_static(b"hi"))?;
/// let (from, msg) = b.recv()?;
/// assert_eq!(from, AsId(0));
/// assert_eq!(&msg[..], b"hi");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct MemFabric {
    peers: Arc<RwLock<HashMap<AsId, Sender<Wire>>>>,
}

impl MemFabric {
    /// An empty fabric.
    #[must_use]
    pub fn new() -> Self {
        MemFabric::default()
    }

    /// Creates (or replaces) the endpoint for an address space.
    ///
    /// Replacing an endpoint disconnects the old one's inbox from the
    /// fabric, which models an address space restarting.
    #[must_use]
    pub fn endpoint(&self, as_id: AsId) -> Arc<MemEndpoint> {
        let (tx, rx) = unbounded();
        self.peers.write().insert(as_id, tx);
        Arc::new(MemEndpoint {
            local: as_id,
            fabric: self.clone(),
            inbox: rx,
            stats: StatCounters::default(),
            closed: AtomicBool::new(false),
        })
    }

    /// Address spaces currently attached.
    #[must_use]
    pub fn members(&self) -> Vec<AsId> {
        let mut out: Vec<AsId> = self.peers.read().keys().copied().collect();
        out.sort();
        out
    }

    /// Detaches an address space from the fabric.
    pub fn remove(&self, as_id: AsId) {
        self.peers.write().remove(&as_id);
    }
}

impl fmt::Debug for MemFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemFabric")
            .field("members", &self.peers.read().len())
            .finish()
    }
}

/// One address space's endpoint on a [`MemFabric`].
pub struct MemEndpoint {
    local: AsId,
    fabric: MemFabric,
    inbox: Receiver<Wire>,
    stats: StatCounters,
    closed: AtomicBool,
}

impl MemEndpoint {
    fn check_open(&self) -> Result<(), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            Err(ClfError::Closed)
        } else {
            Ok(())
        }
    }
}

impl ClfTransport for MemEndpoint {
    fn local(&self) -> AsId {
        self.local
    }

    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError> {
        self.check_open()?;
        let peers = self.fabric.peers.read();
        let tx = peers.get(&dst).ok_or(ClfError::UnknownPeer)?;
        let len = msg.len();
        tx.send((self.local, msg))
            .map_err(|_| ClfError::UnknownPeer)?;
        self.stats.note_sent(len);
        Ok(())
    }

    fn recv(&self) -> Result<(AsId, Bytes), ClfError> {
        self.check_open()?;
        // A bounded wait loop so shutdown() eventually wakes us.
        loop {
            match self.inbox.recv_timeout(Duration::from_millis(50)) {
                Ok((from, msg)) => {
                    self.stats.note_received(msg.len());
                    return Ok((from, msg));
                }
                Err(RecvTimeoutError::Timeout) => self.check_open()?,
                Err(RecvTimeoutError::Disconnected) => return Err(ClfError::Closed),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError> {
        self.check_open()?;
        match self.inbox.recv_timeout(timeout) {
            Ok((from, msg)) => {
                self.stats.note_received(msg.len());
                Ok((from, msg))
            }
            Err(RecvTimeoutError::Timeout) => {
                self.check_open()?;
                Err(ClfError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError> {
        self.check_open()?;
        match self.inbox.try_recv() {
            Ok((from, msg)) => {
                self.stats.note_received(msg.len());
                Ok((from, msg))
            }
            Err(TryRecvError::Empty) => Err(ClfError::Empty),
            Err(TryRecvError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn bind_metrics(&self, registry: &MetricsRegistry) {
        self.stats.bind(registry, "mem");
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        self.fabric.remove(self.local);
    }
}

impl fmt::Debug for MemEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemEndpoint")
            .field("local", &self.local)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let b = fabric.endpoint(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"one")).unwrap();
        a.send(AsId(1), Bytes::from_static(b"two")).unwrap();
        assert_eq!(&b.recv().unwrap().1[..], b"one");
        assert_eq!(&b.recv().unwrap().1[..], b"two");
    }

    #[test]
    fn ordered_per_sender() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let b = fabric.endpoint(AsId(1));
        for i in 0..1000u32 {
            a.send(AsId(1), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..1000u32 {
            let (_, msg) = b.recv().unwrap();
            assert_eq!(u32::from_be_bytes(msg[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn unknown_peer_rejected() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        assert_eq!(
            a.send(AsId(9), Bytes::new()).unwrap_err(),
            ClfError::UnknownPeer
        );
    }

    #[test]
    fn try_recv_empty() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Empty);
    }

    #[test]
    fn recv_timeout_expires() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            ClfError::Timeout
        );
    }

    #[test]
    fn shutdown_wakes_blocked_receiver() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let a2 = Arc::clone(&a);
        let h = thread::spawn(move || a2.recv());
        thread::sleep(Duration::from_millis(20));
        a.shutdown();
        assert_eq!(h.join().unwrap().unwrap_err(), ClfError::Closed);
        assert_eq!(a.send(AsId(0), Bytes::new()).unwrap_err(), ClfError::Closed);
    }

    #[test]
    fn members_tracks_attach_detach() {
        let fabric = MemFabric::new();
        let _a = fabric.endpoint(AsId(0));
        let b = fabric.endpoint(AsId(1));
        assert_eq!(fabric.members(), vec![AsId(0), AsId(1)]);
        b.shutdown();
        assert_eq!(fabric.members(), vec![AsId(0)]);
    }

    #[test]
    fn loopback_send_to_self() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        a.send(AsId(0), Bytes::from_static(b"self")).unwrap();
        assert_eq!(&a.recv().unwrap().1[..], b"self");
    }

    #[test]
    fn stats_count_traffic() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let b = fabric.endpoint(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"abcd")).unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(a.stats().msgs_sent, 1);
        assert_eq!(a.stats().bytes_sent, 4);
        assert_eq!(b.stats().msgs_received, 1);
        assert_eq!(b.stats().bytes_received, 4);
    }

    #[test]
    fn endpoint_replacement_models_restart() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let old_b = fabric.endpoint(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"to old")).unwrap();
        assert_eq!(&old_b.recv().unwrap().1[..], b"to old");

        // "Restart" address space 1: its inbox is replaced; messages sent
        // afterwards go to the new incarnation only.
        let new_b = fabric.endpoint(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"to new")).unwrap();
        assert_eq!(&new_b.recv().unwrap().1[..], b"to new");
        // The old incarnation's inbox is disconnected from the fabric.
        assert_eq!(
            old_b.recv_timeout(Duration::from_millis(30)).unwrap_err(),
            ClfError::Closed
        );
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let fabric = MemFabric::new();
        let dst = fabric.endpoint(AsId(9));
        let mut handles = Vec::new();
        for p in 0..4u16 {
            let ep = fabric.endpoint(AsId(p));
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    ep.send(AsId(9), Bytes::from_static(b"m")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..400 {
            dst.recv().unwrap();
        }
        assert_eq!(dst.stats().msgs_received, 400);
    }
}
