//! Network shaping: bandwidth and latency models.
//!
//! The paper's measurements ran on a 2002-era cluster (Gigabit Ethernet,
//! 550 MHz Xeons) whose effective user-level throughput was orders of
//! magnitude below a modern loopback. To reproduce the *shape* of the
//! paper's results — in particular the application-level saturation knee of
//! Table 1 — experiments can wrap any transport or stream in a shaper that
//! imposes a per-link latency and a token-bucket bandwidth cap. Raw
//! (unshaped) numbers are always reported alongside; see `EXPERIMENTS.md`.

use std::fmt;
use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use dstampede_core::AsId;
use dstampede_obs::{Counter, MetricsRegistry};

use crate::error::ClfError;
use crate::transport::{ClfTransport, TransportStats};

/// Sleeps for `d` with sub-millisecond precision: the bulk of the wait
/// uses the OS sleep, the tail spins. Shaping sleeps are in the tens of
/// microseconds to low milliseconds, where a bare `thread::sleep` can
/// overshoot by a millisecond or more and destroy latency measurements.
pub fn precise_sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    if d > Duration::from_millis(2) {
        std::thread::sleep(d - Duration::from_millis(1));
    }
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// A link's latency/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetProfile {
    /// One-way delivery latency added per message.
    pub latency: Duration,
    /// Egress bandwidth cap in bytes per second (`None` = unlimited).
    pub bandwidth: Option<u64>,
}

impl NetProfile {
    /// No shaping: today's loopback.
    pub const LOOPBACK: NetProfile = NetProfile {
        latency: Duration::ZERO,
        bandwidth: None,
    };

    /// A 2002-era Gigabit Ethernet cluster link as the paper's application
    /// study observed it: ~50 MB/s deliverable from a node, ~150 µs one-way
    /// latency at user level.
    #[must_use]
    pub fn gige_2002() -> NetProfile {
        NetProfile {
            latency: Duration::from_micros(150),
            bandwidth: Some(50 * 1024 * 1024),
        }
    }

    /// An end-device uplink as the paper's micro-benchmarks observed TCP:
    /// ~22 MB/s effective, ~300 µs one-way.
    #[must_use]
    pub fn end_device_2002() -> NetProfile {
        NetProfile {
            latency: Duration::from_micros(300),
            bandwidth: Some(22 * 1024 * 1024),
        }
    }

    /// Whether this profile changes anything.
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.latency.is_zero() && self.bandwidth.is_none()
    }
}

/// Token bucket with a debt model: a consume always succeeds immediately
/// in accounting terms, and the caller sleeps off any debt, giving exact
/// long-run throughput without chunking logic.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
    rate: u64, // bytes per second
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket emitting `rate` bytes per second with a ~1 ms burst
    /// allowance, so each message effectively pays its transmission delay
    /// (`size / rate`) — the store-and-forward model a saturated NIC
    /// presents to its senders.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn new(rate: u64) -> Self {
        assert!(rate > 0, "token bucket rate must be non-zero");
        TokenBucket {
            state: Mutex::new(BucketState {
                tokens: Self::burst_for(rate),
                last_refill: Instant::now(),
            }),
            rate,
        }
    }

    fn burst_for(rate: u64) -> f64 {
        (rate as f64 / 1000.0).max(1500.0)
    }

    /// Accounts for `n` bytes, sleeping until the long-run rate is honored.
    pub fn consume(&self, n: usize) {
        let burst = Self::burst_for(self.rate);
        let debt_secs;
        {
            let mut st = self.state.lock();
            let now = Instant::now();
            let elapsed = now.duration_since(st.last_refill).as_secs_f64();
            st.last_refill = now;
            st.tokens = (st.tokens + elapsed * self.rate as f64).min(burst);
            st.tokens -= n as f64;
            debt_secs = if st.tokens < 0.0 {
                -st.tokens / self.rate as f64
            } else {
                0.0
            };
        }
        if debt_secs > 0.0 {
            precise_sleep(Duration::from_secs_f64(debt_secs));
        }
    }
}

/// Paces a sender to a byte rate with a debt-style token budget, so
/// transmissions spread across the round trip instead of blasting the
/// whole window into the kernel (and the path's queues) at once.
///
/// Unlike [`TokenBucket`], a pacer never sleeps: [`Pacer::grant`] is a
/// pure admission decision against an explicit clock, made under the
/// caller's lock. A grant is allowed whenever the token balance is
/// positive and may drive it negative — so a full-size datagram is
/// always admitted eventually, no matter how small the rate, and the
/// sender cannot wedge. Denied packets stay queued; the caller retries
/// after time passes or an acknowledgment arrives.
#[derive(Debug)]
pub struct Pacer {
    rate: Option<f64>,
    tokens: f64,
    last: Option<Instant>,
}

impl Pacer {
    /// A pacer emitting `rate` bytes per second, or unpaced for `None`.
    #[must_use]
    pub fn new(rate: Option<u64>) -> Pacer {
        Pacer {
            rate: rate.map(|r| r as f64).filter(|r| *r > 0.0),
            tokens: 0.0,
            last: None,
        }
    }

    /// Re-targets the rate (`None` or non-positive = unpaced). The token
    /// balance carries over, so adaptive re-targeting — e.g. from a
    /// smoothed RTT estimate — does not grant a fresh burst.
    pub fn set_rate(&mut self, rate: Option<f64>) {
        self.rate = rate.filter(|r| r.is_finite() && *r > 0.0);
    }

    /// The current rate in bytes per second, if pacing is active.
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        self.rate
    }

    /// Up to ~10 ms of credit may accumulate, with a floor of one
    /// datagram's worth so tiny rates still admit whole packets.
    fn burst(rate: f64) -> f64 {
        (rate / 100.0).max(65_536.0)
    }

    /// Decides whether `bytes` may be transmitted at `now`. Granting
    /// subtracts from the balance (possibly below zero); denial leaves
    /// the balance untouched and the caller's packet queued.
    pub fn grant(&mut self, bytes: usize, now: Instant) -> bool {
        let Some(rate) = self.rate else { return true };
        let burst = Self::burst(rate);
        match self.last {
            Some(last) => {
                let dt = now.saturating_duration_since(last).as_secs_f64();
                self.tokens = (self.tokens + rate * dt).min(burst);
            }
            None => self.tokens = burst,
        }
        self.last = Some(now);
        if self.tokens <= 0.0 {
            return false;
        }
        self.tokens -= bytes as f64;
        true
    }
}

/// A [`ClfTransport`] wrapper imposing a [`NetProfile`].
///
/// Bandwidth is charged on `send` (egress shaping); latency is added on
/// delivery. Per-message latency is approximated by sleeping in `recv`,
/// which is exact for request/reply traffic and conservative for pipelined
/// streams.
pub struct ShapedTransport {
    inner: Arc<dyn ClfTransport>,
    profile: NetProfile,
    bucket: Option<TokenBucket>,
    /// Egress counters under the `clf` subsystem (`shaped_msgs`,
    /// `shaped_bytes`), present once `bind_metrics` ran.
    obs: OnceLock<(Arc<Counter>, Arc<Counter>)>,
}

impl ShapedTransport {
    /// Wraps a transport in a profile.
    #[must_use]
    pub fn new(inner: Arc<dyn ClfTransport>, profile: NetProfile) -> Arc<Self> {
        Arc::new(ShapedTransport {
            inner,
            profile,
            bucket: profile.bandwidth.map(TokenBucket::new),
            obs: OnceLock::new(),
        })
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &Arc<dyn ClfTransport> {
        &self.inner
    }

    /// The applied profile.
    #[must_use]
    pub fn profile(&self) -> NetProfile {
        self.profile
    }

    fn delay(&self) {
        precise_sleep(self.profile.latency);
    }
}

impl ClfTransport for ShapedTransport {
    fn local(&self) -> AsId {
        self.inner.local()
    }

    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError> {
        if let Some(bucket) = &self.bucket {
            bucket.consume(msg.len());
        }
        if let Some((msgs, bytes)) = self.obs.get() {
            msgs.inc();
            bytes.add(msg.len() as u64);
        }
        self.inner.send(dst, msg)
    }

    fn send_segments(&self, dst: AsId, segments: &[Bytes]) -> Result<(), ClfError> {
        let total: usize = segments.iter().map(Bytes::len).sum();
        if let Some(bucket) = &self.bucket {
            bucket.consume(total);
        }
        if let Some((msgs, bytes)) = self.obs.get() {
            msgs.inc();
            bytes.add(total as u64);
        }
        self.inner.send_segments(dst, segments)
    }

    fn recv(&self) -> Result<(AsId, Bytes), ClfError> {
        let m = self.inner.recv()?;
        self.delay();
        Ok(m)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError> {
        let m = self.inner.recv_timeout(timeout)?;
        self.delay();
        Ok(m)
    }

    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError> {
        let m = self.inner.try_recv()?;
        self.delay();
        Ok(m)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn bind_metrics(&self, registry: &MetricsRegistry) {
        let _ = self.obs.set((
            registry.counter("clf", "shaped_msgs"),
            registry.counter("clf", "shaped_bytes"),
        ));
        self.inner.bind_metrics(registry);
    }

    fn purge_peer(&self, peer: AsId) {
        self.inner.purge_peer(peer);
    }

    fn set_peer_sack(&self, peer: AsId, enabled: bool) {
        self.inner.set_peer_sack(peer, enabled);
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

impl fmt::Debug for ShapedTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShapedTransport")
            .field("inner", &self.inner)
            .field("profile", &self.profile)
            .finish()
    }
}

/// A byte stream wrapper imposing a [`NetProfile`] on both directions of
/// a full-duplex link.
///
/// Each `write` is charged against the uplink bandwidth bucket and delayed
/// by the one-way latency; each `read` is charged against a separate
/// downlink bucket for the bytes received (the reply's transmission time on
/// the same physical link).
#[derive(Debug)]
pub struct ShapedStream<S> {
    inner: S,
    profile: NetProfile,
    bucket: Option<Arc<TokenBucket>>,
    down_bucket: Option<Arc<TokenBucket>>,
    latency_charged: bool,
}

impl<S> ShapedStream<S> {
    /// Wraps a stream in a profile.
    #[must_use]
    pub fn new(inner: S, profile: NetProfile) -> Self {
        ShapedStream {
            inner,
            profile,
            bucket: profile.bandwidth.map(|r| Arc::new(TokenBucket::new(r))),
            down_bucket: profile.bandwidth.map(|r| Arc::new(TokenBucket::new(r))),
            latency_charged: false,
        }
    }

    /// Wraps a stream in a profile whose uplink bandwidth budget is
    /// *shared* with other streams — several sockets leaving one node
    /// compete for the node's egress, as the paper's mixer node does.
    /// (The downlink is not shaped here: the receiving ends are distinct
    /// nodes with their own links.)
    #[must_use]
    pub fn with_shared_bucket(inner: S, profile: NetProfile, bucket: Arc<TokenBucket>) -> Self {
        ShapedStream {
            inner,
            profile,
            bucket: Some(bucket),
            down_bucket: None,
            latency_charged: false,
        }
    }

    /// Unwraps the inner stream.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for ShapedStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if let Some(bucket) = &self.down_bucket {
            bucket.consume(n);
        }
        Ok(n)
    }
}

impl<S: Write> Write for ShapedStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(bucket) = &self.bucket {
            bucket.consume(buf.len());
        }
        // Charge the one-way latency once per flush epoch, not per write
        // call, so a frame assembled from header+payload writes pays once.
        if !self.latency_charged && !self.profile.latency.is_zero() {
            precise_sleep(self.profile.latency);
            self.latency_charged = true;
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.latency_charged = false;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemFabric;

    #[test]
    fn loopback_profile_is_transparent() {
        assert!(NetProfile::LOOPBACK.is_transparent());
        assert!(!NetProfile::gige_2002().is_transparent());
    }

    #[test]
    fn token_bucket_enforces_long_run_rate() {
        let bucket = TokenBucket::new(10 * 1024 * 1024); // 10 MB/s
        let start = Instant::now();
        // 2 MB total => ≥ ~150 ms even counting the initial burst credit.
        for _ in 0..20 {
            bucket.consume(100 * 1024);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(120),
            "2MB at 10MB/s took only {elapsed:?}"
        );
        assert!(elapsed < Duration::from_millis(800), "took {elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0);
    }

    #[test]
    fn pacer_unpaced_always_grants() {
        let mut p = Pacer::new(None);
        let t0 = Instant::now();
        for _ in 0..1000 {
            assert!(p.grant(1 << 20, t0));
        }
    }

    #[test]
    fn pacer_defers_and_refills_on_virtual_clock() {
        // 1 MB/s → 64 KiB burst floor dominates the 10 ms credit.
        let mut p = Pacer::new(Some(1024 * 1024));
        let t0 = Instant::now();
        let mut granted = 0usize;
        while p.grant(8192, t0) {
            granted += 8192;
            assert!(granted <= 128 * 1024, "burst credit never ran out");
        }
        // The initial burst is ~64 KiB; the balance may dip below zero
        // by at most one packet (the debt model's no-wedge guarantee).
        assert!((64 * 1024..=80 * 1024).contains(&granted), "{granted}");
        // No time passed: still denied.
        assert!(!p.grant(8192, t0));
        // 100 ms later the rate has minted ~100 KiB of credit.
        let later = t0 + Duration::from_millis(100);
        assert!(p.grant(8192, later));
    }

    #[test]
    fn pacer_debt_admits_oversized_packets() {
        // 10 KB/s with 64 KiB burst floor: a 1 MiB packet exceeds any
        // balance, but the debt model admits it while tokens > 0.
        let mut p = Pacer::new(Some(10 * 1024));
        let t0 = Instant::now();
        assert!(p.grant(1 << 20, t0), "positive balance admits any size");
        assert!(!p.grant(1, t0), "deep in debt now");
        // The debt is bounded, so credit eventually returns.
        let much_later = t0 + Duration::from_secs(200);
        assert!(p.grant(1, much_later));
    }

    #[test]
    fn pacer_retarget_keeps_balance() {
        let mut p = Pacer::new(Some(1024));
        let t0 = Instant::now();
        while p.grant(65_536, t0) {}
        // Raising the rate does not mint a fresh burst out of thin air.
        p.set_rate(Some(2048.0));
        assert!(!p.grant(65_536, t0));
        // Dropping to unpaced always grants.
        p.set_rate(None);
        assert!(p.grant(1 << 30, t0));
    }

    #[test]
    fn shaped_transport_passes_messages() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let b = fabric.endpoint(AsId(1));
        let shaped_a = ShapedTransport::new(
            a,
            NetProfile {
                latency: Duration::from_millis(5),
                bandwidth: Some(1024 * 1024),
            },
        );
        shaped_a
            .send(AsId(1), Bytes::from_static(b"hello"))
            .unwrap();
        assert_eq!(&b.recv().unwrap().1[..], b"hello");
        assert_eq!(shaped_a.local(), AsId(0));
        assert_eq!(shaped_a.stats().msgs_sent, 1);
    }

    #[test]
    fn shaped_transport_adds_recv_latency() {
        let fabric = MemFabric::new();
        let a = fabric.endpoint(AsId(0));
        let b = ShapedTransport::new(
            fabric.endpoint(AsId(1)),
            NetProfile {
                latency: Duration::from_millis(20),
                bandwidth: None,
            },
        );
        a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        let start = Instant::now();
        let _ = b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn shaped_stream_rate_limits_writes() {
        let sink = Vec::new();
        let mut s = ShapedStream::new(
            sink,
            NetProfile {
                latency: Duration::ZERO,
                bandwidth: Some(1024 * 1024), // 1 MB/s
            },
        );
        let start = Instant::now();
        // 200 KB at 1 MB/s => ~200ms minus the 50ms burst credit.
        for _ in 0..20 {
            s.write_all(&[0u8; 10 * 1024]).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(120));
        assert_eq!(s.into_inner().len(), 200 * 1024);
    }

    #[test]
    fn shaped_stream_charges_latency_once_per_flush() {
        let sink = Vec::new();
        let mut s = ShapedStream::new(
            sink,
            NetProfile {
                latency: Duration::from_millis(10),
                bandwidth: None,
            },
        );
        let start = Instant::now();
        s.write_all(b"header").unwrap();
        s.write_all(b"payload").unwrap(); // same flush epoch: no extra delay
        s.flush().unwrap();
        let one = start.elapsed();
        assert!(one >= Duration::from_millis(10));
        assert!(one < Duration::from_millis(30));
    }
}
