//! Byte-stream helpers for the client↔cluster TCP path.
//!
//! End devices talk to the cluster over TCP (paper §3.2.1). This module
//! provides the small pieces the client and listener share: TCP setup with
//! sane defaults, and an in-process duplex byte pipe for exercising
//! stream-shaped code (framing, shaping wrappers) without sockets.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Connects a TCP stream with `TCP_NODELAY` set (RPC traffic is
/// latency-sensitive).
///
/// # Errors
///
/// Propagates connection errors.
pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Binds a TCP listener on an ephemeral loopback port.
///
/// # Errors
///
/// Propagates bind errors.
pub fn tcp_listen_loopback() -> io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

#[derive(Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
}

struct PipeShared {
    buf: Mutex<PipeBuf>,
    cv: Condvar,
}

/// One end of an in-process duplex byte pipe (see [`duplex`]).
pub struct PipeEnd {
    read_from: Arc<PipeShared>,
    write_to: Arc<PipeShared>,
}

impl fmt::Debug for PipeEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipeEnd").finish_non_exhaustive()
    }
}

/// Creates a connected pair of in-process byte streams.
///
/// Each end implements [`Read`] and [`Write`]; dropping an end closes its
/// outgoing direction, which the peer observes as EOF. The pair behaves
/// like a loopback TCP connection without the sockets.
///
/// # Examples
///
/// ```
/// use std::io::{Read, Write};
/// use dstampede_clf::duplex;
///
/// # fn main() -> std::io::Result<()> {
/// let (mut a, mut b) = duplex();
/// a.write_all(b"ping")?;
/// let mut buf = [0u8; 4];
/// b.read_exact(&mut buf)?;
/// assert_eq!(&buf, b"ping");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let ab = Arc::new(PipeShared {
        buf: Mutex::new(PipeBuf::default()),
        cv: Condvar::new(),
    });
    let ba = Arc::new(PipeShared {
        buf: Mutex::new(PipeBuf::default()),
        cv: Condvar::new(),
    });
    (
        PipeEnd {
            read_from: Arc::clone(&ba),
            write_to: Arc::clone(&ab),
        },
        PipeEnd {
            read_from: ab,
            write_to: ba,
        },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut buf = self.read_from.buf.lock();
        while buf.data.is_empty() {
            if buf.closed {
                return Ok(0); // EOF
            }
            self.read_from.cv.wait(&mut buf);
        }
        let n = out.len().min(buf.data.len());
        // Bulk-copy from the ring's (at most two) contiguous runs
        // instead of popping byte by byte.
        let (front, back) = buf.data.as_slices();
        let take_front = n.min(front.len());
        out[..take_front].copy_from_slice(&front[..take_front]);
        if take_front < n {
            out[take_front..n].copy_from_slice(&back[..n - take_front]);
        }
        buf.data.drain(..n);
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut buf = self.write_to.buf.lock();
        if buf.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer end closed"));
        }
        buf.data.extend(data);
        drop(buf);
        self.write_to.cv.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        for side in [&self.write_to, &self.read_from] {
            side.buf.lock().closed = true;
            side.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn duplex_round_trip_both_directions() {
        let (mut a, mut b) = duplex();
        a.write_all(b"to-b").unwrap();
        b.write_all(b"to-a").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"to-b");
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"to-a");
    }

    #[test]
    fn read_blocks_until_write() {
        let (mut a, mut b) = duplex();
        let h = thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(std::time::Duration::from_millis(20));
        a.write_all(b"delay").unwrap();
        assert_eq!(&h.join().unwrap(), b"delay");
    }

    #[test]
    fn drop_signals_eof() {
        let (a, mut b) = duplex();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_after_peer_drop_fails() {
        let (mut a, b) = duplex();
        drop(b);
        let err = a.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn large_transfer_in_chunks() {
        let (mut a, mut b) = duplex();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 255) as u8).collect();
        let expected = data.clone();
        let h = thread::spawn(move || {
            a.write_all(&data).unwrap();
        });
        let mut got = vec![0u8; expected.len()];
        b.read_exact(&mut got).unwrap();
        assert_eq!(got, expected);
        h.join().unwrap();
    }

    #[test]
    fn tcp_helpers_connect() {
        let listener = tcp_listen_loopback().unwrap();
        let addr = listener.local_addr().unwrap();
        let h = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 2];
            s.read_exact(&mut buf).unwrap();
            buf
        });
        let mut c = tcp_connect(addr).unwrap();
        c.write_all(b"ok").unwrap();
        assert_eq!(&h.join().unwrap(), b"ok");
    }

    #[test]
    fn zero_length_read_is_ok() {
        let (_a, mut b) = duplex();
        let mut empty = [0u8; 0];
        assert_eq!(b.read(&mut empty).unwrap(), 0);
    }
}
