//! The CLF transport contract.
//!
//! CLF (paper §3.2.2) is "a low level packet transport layer \[providing\]
//! reliable, ordered point-to-point packet transport between the D-Stampede
//! address spaces within the cluster, with the illusion of an infinite
//! packet queue. It exploits shared memory within an SMP, and any available
//! network between the nodes". The [`ClfTransport`] trait captures that
//! contract; backends provide it over in-process channels
//! ([`crate::mem`], the "shared memory within an SMP" case) and real UDP
//! sockets ([`crate::udp`], the "UDP over a LAN" case).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use bytes::Bytes;

use dstampede_core::AsId;
use dstampede_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::error::ClfError;

/// Monotonic counters describing an endpoint's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages delivered to `recv`.
    pub msgs_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_received: u64,
    /// Packets retransmitted (UDP backend only).
    pub retransmits: u64,
    /// Duplicate or stale packets discarded (UDP backend only).
    pub duplicates_dropped: u64,
    /// Sends rejected with [`ClfError::Backpressure`] because the
    /// destination's unacknowledged-packet window was full (UDP
    /// backend only).
    pub backpressure: u64,
    /// Selective-acknowledgment frames received and integrated into the
    /// send window (UDP backend only).
    pub sack_frames: u64,
    /// Hole packets retransmitted on duplicate-SACK evidence, without
    /// waiting for the retransmission timeout (UDP backend only).
    pub fast_retransmits: u64,
}

/// Registry-backed handles mirrored by a bound [`StatCounters`].
#[derive(Debug)]
struct ObsHandles {
    msgs_sent: Arc<Counter>,
    msgs_received: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    retransmits: Arc<Counter>,
    duplicates_dropped: Arc<Counter>,
    backpressure: Arc<Counter>,
    rtt: Arc<Histogram>,
    srtt: Arc<Gauge>,
    coalesced: Arc<Histogram>,
    sack_sent: Arc<Counter>,
    sack_received: Arc<Counter>,
    fast_retransmits: Arc<Counter>,
    batch_tx: Arc<Histogram>,
    batch_rx: Arc<Histogram>,
}

/// Shared atomic counter block used by the backends.
///
/// Optionally bound (once) to a `dstampede-obs` registry, after which
/// every update is mirrored into registry-backed series under the `clf`
/// subsystem, labeled with the backend (`transport=udp` / `transport=mem`).
#[derive(Debug, Default)]
pub struct StatCounters {
    pub(crate) msgs_sent: AtomicU64,
    pub(crate) msgs_received: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) retransmits: AtomicU64,
    pub(crate) duplicates_dropped: AtomicU64,
    pub(crate) backpressure: AtomicU64,
    pub(crate) sack_frames: AtomicU64,
    pub(crate) fast_retransmits: AtomicU64,
    obs: OnceLock<ObsHandles>,
}

impl StatCounters {
    /// Binds these counters to `registry`; the first bind wins, later
    /// calls are ignored. Safe to call after the endpoint's pump thread
    /// is running (updates before the bind are simply not mirrored —
    /// they remain visible via [`StatCounters::snapshot`]).
    pub fn bind(&self, registry: &MetricsRegistry, transport: &str) {
        let labels = [("transport", transport)];
        let _ = self.obs.set(ObsHandles {
            msgs_sent: registry.counter_labeled("clf", "msgs_sent", &labels),
            msgs_received: registry.counter_labeled("clf", "msgs_received", &labels),
            bytes_sent: registry.counter_labeled("clf", "bytes_sent", &labels),
            bytes_received: registry.counter_labeled("clf", "bytes_received", &labels),
            retransmits: registry.counter_labeled("clf", "retransmits", &labels),
            duplicates_dropped: registry.counter_labeled("clf", "duplicates_dropped", &labels),
            backpressure: registry.counter_labeled("clf", "backpressure", &labels),
            rtt: registry.histogram_labeled("clf", "rtt_us", &labels),
            srtt: registry.gauge_labeled("clf", "srtt_us", &labels),
            coalesced: registry.histogram_labeled("clf", "coalesced_frames", &labels),
            sack_sent: registry.counter_labeled("clf", "sack_frames_sent", &labels),
            sack_received: registry.counter_labeled("clf", "sack_frames_received", &labels),
            fast_retransmits: registry.counter_labeled("clf", "sack_fast_retransmits", &labels),
            batch_tx: registry.histogram_labeled("clf", "batch_tx_datagrams", &labels),
            batch_rx: registry.histogram_labeled("clf", "batch_rx_datagrams", &labels),
        });
    }

    pub(crate) fn note_sent(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.msgs_sent.inc();
            obs.bytes_sent.add(bytes as u64);
        }
    }

    pub(crate) fn note_received(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.msgs_received.inc();
            obs.bytes_received.add(bytes as u64);
        }
    }

    pub(crate) fn note_retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.retransmits.inc();
        }
    }

    pub(crate) fn note_duplicate(&self) {
        self.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.duplicates_dropped.inc();
        }
    }

    /// Records a send rejected for lack of window space — the signal
    /// the health engine folds into a peer's `Degraded` level.
    pub(crate) fn note_backpressure(&self) {
        self.backpressure.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.backpressure.inc();
        }
    }

    /// Records an observed packet round-trip time (UDP backend: DATA
    /// transmit to cumulative ACK).
    pub(crate) fn note_rtt(&self, rtt: Duration) {
        if let Some(obs) = self.obs.get() {
            obs.rtt.record_duration(rtt);
        }
    }

    /// Publishes the current smoothed round-trip estimate (UDP backend:
    /// the Jacobson/Karels SRTT driving the adaptive retransmission
    /// timeout) as a live gauge.
    pub(crate) fn note_srtt(&self, srtt: Duration) {
        if let Some(obs) = self.obs.get() {
            obs.srtt
                .set(i64::try_from(srtt.as_micros()).unwrap_or(i64::MAX));
        }
    }

    /// Records how many protocol frames one transmitted datagram carried
    /// (UDP backend: the transmit coalescer's packing factor).
    pub(crate) fn note_coalesced(&self, frames: u64) {
        if let Some(obs) = self.obs.get() {
            obs.coalesced.record(frames);
        }
    }

    /// Records one selective-acknowledgment frame emitted toward a peer.
    pub(crate) fn note_sack_sent(&self) {
        if let Some(obs) = self.obs.get() {
            obs.sack_sent.inc();
        }
    }

    /// Records one selective-acknowledgment frame received and folded
    /// into a peer's send window.
    pub(crate) fn note_sack_received(&self) {
        self.sack_frames.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.sack_received.inc();
        }
    }

    /// Records one hole packet fast-retransmitted on duplicate-SACK
    /// evidence (also counted in the aggregate retransmit counter).
    pub(crate) fn note_fast_retransmit(&self) {
        self.fast_retransmits.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.fast_retransmits.inc();
        }
    }

    /// Records how many datagrams one transmit syscall carried.
    pub(crate) fn note_batch_tx(&self, datagrams: u64) {
        if let Some(obs) = self.obs.get() {
            obs.batch_tx.record(datagrams);
        }
    }

    /// Records how many datagrams one receive syscall drained.
    pub(crate) fn note_batch_rx(&self, datagrams: u64) {
        if let Some(obs) = self.obs.get() {
            obs.batch_rx.record(datagrams);
        }
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            backpressure: self.backpressure.load(Ordering::Relaxed),
            sack_frames: self.sack_frames.load(Ordering::Relaxed),
            fast_retransmits: self.fast_retransmits.load(Ordering::Relaxed),
        }
    }
}

/// Reliable, ordered, point-to-point message transport between address
/// spaces with the illusion of an infinite packet queue.
///
/// Guarantees, for any ordered pair of address spaces `(A, B)`:
///
/// * every message `A` sends to `B` is delivered exactly once (while both
///   endpoints are up);
/// * messages are delivered in send order;
/// * `send` never blocks on the receiver (unbounded buffering).
pub trait ClfTransport: Send + Sync + fmt::Debug {
    /// The address space this endpoint belongs to.
    fn local(&self) -> AsId;

    /// Sends a message to another address space.
    ///
    /// # Errors
    ///
    /// [`ClfError::UnknownPeer`] for unroutable destinations,
    /// [`ClfError::Closed`] after shutdown, [`ClfError::Io`] on socket
    /// failure.
    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError>;

    /// Sends a message assembled from scatter-gather segments; the
    /// receiver observes the concatenation, exactly as if
    /// [`ClfTransport::send`] had been called with the flattened bytes.
    ///
    /// The default implementation flattens — a single segment is
    /// forwarded without copying, multiple segments are gathered into one
    /// buffer first. Backends that can transmit segments directly (the
    /// UDP endpoint fragments across segment boundaries without
    /// materializing the message) override this to stay zero-copy.
    ///
    /// # Errors
    ///
    /// As for [`ClfTransport::send`].
    fn send_segments(&self, dst: AsId, segments: &[Bytes]) -> Result<(), ClfError> {
        match segments {
            [] => self.send(dst, Bytes::new()),
            [one] => self.send(dst, one.clone()),
            many => {
                let total = many.iter().map(Bytes::len).sum();
                let mut flat = Vec::with_capacity(total);
                for seg in many {
                    flat.extend_from_slice(seg);
                }
                self.send(dst, Bytes::from(flat))
            }
        }
    }

    /// Blocks until the next message arrives.
    ///
    /// # Errors
    ///
    /// [`ClfError::Closed`] after shutdown.
    fn recv(&self) -> Result<(AsId, Bytes), ClfError>;

    /// Waits up to `timeout` for the next message.
    ///
    /// # Errors
    ///
    /// [`ClfError::Timeout`] on expiry, [`ClfError::Closed`] after shutdown.
    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError>;

    /// Returns the next message if one is already queued.
    ///
    /// # Errors
    ///
    /// [`ClfError::Empty`] when nothing is queued, [`ClfError::Closed`]
    /// after shutdown.
    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError>;

    /// Traffic counters.
    fn stats(&self) -> TransportStats;

    /// Mirrors this endpoint's counters into a telemetry registry (see
    /// `dstampede-obs`). Backends without counters may ignore the call;
    /// only the first bind takes effect.
    fn bind_metrics(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }

    /// Enables or disables the selective-acknowledgment fast path toward
    /// one peer. Disabling forces the legacy per-datagram cumulative-ack
    /// exchange — the downgrade used when a peer predates SACK. Backends
    /// without a SACK path ignore the call; the UDP backend applies it
    /// to subsequent sends.
    fn set_peer_sack(&self, peer: AsId, enabled: bool) {
        let _ = (peer, enabled);
    }

    /// Runs one pass of time-driven protocol housekeeping — retransmission
    /// scan, deferred/aged-batch flush — outside the backend's own pump
    /// cadence. Reactor-mode runtimes call this from the unified timer
    /// wheel so RTO and pacing deadlines share one clock with every other
    /// runtime timer. Backends without timed protocol state ignore it.
    fn housekeep(&self) {}

    /// Discards per-peer protocol state for a peer declared dead:
    /// unacknowledged send buffers, reassembly state. Backends without
    /// per-peer buffering may ignore the call. Idempotent; the peer may
    /// be re-learned later (e.g. after a restart).
    fn purge_peer(&self, peer: AsId) {
        let _ = peer;
    }

    /// Shuts the endpoint down; subsequent operations fail with
    /// [`ClfError::Closed`]. Idempotent.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_counters_snapshot() {
        let c = StatCounters::default();
        c.note_sent(10);
        c.note_sent(5);
        c.note_received(7);
        let s = c.snapshot();
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 15);
        assert_eq!(s.msgs_received, 1);
        assert_eq!(s.bytes_received, 7);
        assert_eq!(s.retransmits, 0);
    }

    #[test]
    fn bound_counters_mirror_into_registry() {
        let reg = MetricsRegistry::new("test");
        let c = StatCounters::default();
        c.note_sent(3); // before bind: counted locally, not mirrored
        c.bind(&reg, "udp");
        c.bind(&reg, "udp"); // second bind is ignored
        c.note_sent(5);
        c.note_received(2);
        c.note_retransmit();
        c.note_duplicate();
        c.note_rtt(Duration::from_micros(40));
        c.note_srtt(Duration::from_micros(80));
        c.note_coalesced(3);
        c.note_backpressure();
        c.note_sack_sent();
        c.note_sack_received();
        c.note_fast_retransmit();
        c.note_batch_tx(4);
        c.note_batch_rx(6);
        assert_eq!(c.snapshot().msgs_sent, 2);
        assert_eq!(c.snapshot().backpressure, 1);
        assert_eq!(c.snapshot().sack_frames, 1);
        assert_eq!(c.snapshot().fast_retransmits, 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("clf", "msgs_sent"), Some(1));
        assert_eq!(snap.counter_value("clf", "bytes_sent"), Some(5));
        assert_eq!(snap.counter_value("clf", "msgs_received"), Some(1));
        assert_eq!(snap.counter_value("clf", "retransmits"), Some(1));
        assert_eq!(snap.counter_value("clf", "duplicates_dropped"), Some(1));
        assert_eq!(snap.counter_value("clf", "backpressure"), Some(1));
        let rtt = snap.histogram("clf", "rtt_us").expect("rtt series");
        assert_eq!(rtt.count, 1);
        assert_eq!(rtt.sum, 40);
        assert_eq!(snap.gauge_value("clf", "srtt_us"), Some(80));
        let co = snap
            .histogram("clf", "coalesced_frames")
            .expect("coalesced series");
        assert_eq!(co.count, 1);
        assert_eq!(co.sum, 3);
        assert_eq!(snap.counter_value("clf", "sack_frames_sent"), Some(1));
        assert_eq!(snap.counter_value("clf", "sack_frames_received"), Some(1));
        assert_eq!(snap.counter_value("clf", "sack_fast_retransmits"), Some(1));
        let bt = snap
            .histogram("clf", "batch_tx_datagrams")
            .expect("batch tx series");
        assert_eq!((bt.count, bt.sum), (1, 4));
        let br = snap
            .histogram("clf", "batch_rx_datagrams")
            .expect("batch rx series");
        assert_eq!((br.count, br.sum), (1, 6));
    }
}
