//! The CLF transport contract.
//!
//! CLF (paper §3.2.2) is "a low level packet transport layer \[providing\]
//! reliable, ordered point-to-point packet transport between the D-Stampede
//! address spaces within the cluster, with the illusion of an infinite
//! packet queue. It exploits shared memory within an SMP, and any available
//! network between the nodes". The [`ClfTransport`] trait captures that
//! contract; backends provide it over in-process channels
//! ([`crate::mem`], the "shared memory within an SMP" case) and real UDP
//! sockets ([`crate::udp`], the "UDP over a LAN" case).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;

use dstampede_core::AsId;

use crate::error::ClfError;

/// Monotonic counters describing an endpoint's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages delivered to `recv`.
    pub msgs_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_received: u64,
    /// Packets retransmitted (UDP backend only).
    pub retransmits: u64,
    /// Duplicate or stale packets discarded (UDP backend only).
    pub duplicates_dropped: u64,
}

/// Shared atomic counter block used by the backends.
#[derive(Debug, Default)]
pub struct StatCounters {
    pub(crate) msgs_sent: AtomicU64,
    pub(crate) msgs_received: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) retransmits: AtomicU64,
    pub(crate) duplicates_dropped: AtomicU64,
}

impl StatCounters {
    pub(crate) fn note_sent(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_received(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Reliable, ordered, point-to-point message transport between address
/// spaces with the illusion of an infinite packet queue.
///
/// Guarantees, for any ordered pair of address spaces `(A, B)`:
///
/// * every message `A` sends to `B` is delivered exactly once (while both
///   endpoints are up);
/// * messages are delivered in send order;
/// * `send` never blocks on the receiver (unbounded buffering).
pub trait ClfTransport: Send + Sync + fmt::Debug {
    /// The address space this endpoint belongs to.
    fn local(&self) -> AsId;

    /// Sends a message to another address space.
    ///
    /// # Errors
    ///
    /// [`ClfError::UnknownPeer`] for unroutable destinations,
    /// [`ClfError::Closed`] after shutdown, [`ClfError::Io`] on socket
    /// failure.
    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError>;

    /// Blocks until the next message arrives.
    ///
    /// # Errors
    ///
    /// [`ClfError::Closed`] after shutdown.
    fn recv(&self) -> Result<(AsId, Bytes), ClfError>;

    /// Waits up to `timeout` for the next message.
    ///
    /// # Errors
    ///
    /// [`ClfError::Timeout`] on expiry, [`ClfError::Closed`] after shutdown.
    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError>;

    /// Returns the next message if one is already queued.
    ///
    /// # Errors
    ///
    /// [`ClfError::Empty`] when nothing is queued, [`ClfError::Closed`]
    /// after shutdown.
    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError>;

    /// Traffic counters.
    fn stats(&self) -> TransportStats;

    /// Shuts the endpoint down; subsequent operations fail with
    /// [`ClfError::Closed`]. Idempotent.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_counters_snapshot() {
        let c = StatCounters::default();
        c.note_sent(10);
        c.note_sent(5);
        c.note_received(7);
        let s = c.snapshot();
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 15);
        assert_eq!(s.msgs_received, 1);
        assert_eq!(s.bytes_received, 7);
        assert_eq!(s.retransmits, 0);
    }
}
