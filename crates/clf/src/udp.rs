//! Reliable-UDP CLF backend — "UDP over a LAN".
//!
//! Between cluster nodes the paper's CLF runs over UDP while still
//! promising reliable, ordered delivery with an infinite packet queue.
//! This backend implements that promise with a small ARQ protocol:
//!
//! * messages are fragmented into DATA packets of at most
//!   [`UdpConfig::frag_payload`] bytes, each carrying a per-peer sequence
//!   number and an end-of-message flag;
//! * the receiver acknowledges cumulatively, reorders out-of-order
//!   packets, drops duplicates, and reassembles in-order fragments into
//!   messages;
//! * the sender buffers unacknowledged packets without bound (the
//!   "infinite queue" illusion) and retransmits on a timer.
//!
//! A deterministic loss injector ([`LossInjection`]) lets tests exercise
//! retransmission without a lossy network.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use dstampede_core::AsId;

use dstampede_obs::MetricsRegistry;

use crate::error::ClfError;
use crate::transport::{ClfTransport, StatCounters, TransportStats};

const MAGIC: u16 = 0xC1F0;
const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const FLAG_EOM: u8 = 1;
const HEADER_LEN: usize = 2 + 1 + 1 + 2 + 8;

/// Deterministic packet-loss injection for tests and fault drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossInjection {
    /// Deliver everything (default).
    #[default]
    None,
    /// Drop every n-th DATA packet (n ≥ 2).
    DropEveryNth(u32),
}

/// Tuning knobs for a [`UdpEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpConfig {
    /// Maximum DATA payload per packet. The paper notes UDP caps messages
    /// below 64 KB; we default well under typical loopback MTUs.
    pub frag_payload: usize,
    /// Retransmission timeout for unacknowledged packets.
    pub rto: Duration,
    /// Outbound loss injection.
    pub loss: LossInjection,
    /// High-water mark on unacknowledged DATA packets buffered per peer.
    /// A send that would exceed it fails with [`ClfError::Backpressure`]
    /// instead of growing memory without bound when a peer stops ACKing.
    pub max_unacked: usize,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            frag_payload: 8192,
            rto: Duration::from_millis(40),
            loss: LossInjection::None,
            max_unacked: 1024,
        }
    }
}

struct PeerTx {
    next_seq: u64,
    /// seq → (packet bytes, last transmit time).
    unacked: BTreeMap<u64, (Vec<u8>, Instant)>,
    data_sent: u64,
}

impl PeerTx {
    fn new() -> Self {
        PeerTx {
            next_seq: 0,
            unacked: BTreeMap::new(),
            data_sent: 0,
        }
    }
}

struct PeerRx {
    expected: u64,
    /// Out-of-order packets: seq → (flags, payload).
    ooo: BTreeMap<u64, (u8, Vec<u8>)>,
    assembling: Vec<u8>,
}

impl PeerRx {
    fn new() -> Self {
        PeerRx {
            expected: 0,
            ooo: BTreeMap::new(),
            assembling: Vec::new(),
        }
    }
}

struct Shared {
    peers: HashMap<AsId, SocketAddr>,
    tx: HashMap<AsId, PeerTx>,
    rx: HashMap<AsId, PeerRx>,
}

/// A reliable-UDP CLF endpoint.
///
/// # Examples
///
/// Two endpoints on loopback:
///
/// ```
/// use bytes::Bytes;
/// use dstampede_clf::{ClfTransport, UdpConfig, UdpEndpoint};
/// use dstampede_core::AsId;
///
/// # fn main() -> Result<(), dstampede_clf::ClfError> {
/// let a = UdpEndpoint::bind(AsId(0), UdpConfig::default())?;
/// let b = UdpEndpoint::bind(AsId(1), UdpConfig::default())?;
/// a.add_peer(AsId(1), b.local_addr());
/// b.add_peer(AsId(0), a.local_addr());
/// a.send(AsId(1), Bytes::from_static(b"over udp"))?;
/// assert_eq!(&b.recv()?.1[..], b"over udp");
/// # a.shutdown(); b.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct UdpEndpoint {
    local: AsId,
    addr: SocketAddr,
    socket: UdpSocket,
    config: UdpConfig,
    shared: Arc<Mutex<Shared>>,
    inbox: Receiver<(AsId, Bytes)>,
    stats: Arc<StatCounters>,
    closed: Arc<AtomicBool>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
    loss_counter: Mutex<u64>,
}

impl UdpEndpoint {
    /// Binds an endpoint on an ephemeral loopback port and starts its
    /// protocol pump thread.
    ///
    /// # Errors
    ///
    /// [`ClfError::Io`] if the socket cannot be bound.
    pub fn bind(local: AsId, config: UdpConfig) -> Result<Arc<Self>, ClfError> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let addr = socket.local_addr()?;
        let shared = Arc::new(Mutex::new(Shared {
            peers: HashMap::new(),
            tx: HashMap::new(),
            rx: HashMap::new(),
        }));
        let (deliver_tx, inbox) = unbounded();
        let stats = Arc::new(StatCounters::default());
        let closed = Arc::new(AtomicBool::new(false));

        let pump_socket = socket.try_clone()?;
        let pump_shared = Arc::clone(&shared);
        let pump_stats = Arc::clone(&stats);
        let pump_closed = Arc::clone(&closed);
        let rto = config.rto;
        let handle = std::thread::Builder::new()
            .name(format!("clf-udp-{}", local.0))
            .spawn(move || {
                pump_loop(
                    local,
                    &pump_socket,
                    &pump_shared,
                    &deliver_tx,
                    &pump_stats,
                    &pump_closed,
                    rto,
                );
            })
            .expect("spawning the CLF pump thread failed");

        Ok(Arc::new(UdpEndpoint {
            local,
            addr,
            socket,
            config,
            shared,
            inbox,
            stats,
            closed,
            pump: Mutex::new(Some(handle)),
            loss_counter: Mutex::new(0),
        }))
    }

    /// The endpoint's bound socket address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers the socket address of a peer address space.
    pub fn add_peer(&self, peer: AsId, addr: SocketAddr) {
        self.shared.lock().peers.insert(peer, addr);
    }

    fn should_drop(&self) -> bool {
        match self.config.loss {
            LossInjection::None => false,
            LossInjection::DropEveryNth(n) => {
                let mut c = self.loss_counter.lock();
                *c += 1;
                n >= 2 && (*c).is_multiple_of(u64::from(n))
            }
        }
    }
}

fn encode_data(src: AsId, seq: u64, eom: bool, payload: &[u8]) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(HEADER_LEN + payload.len());
    pkt.extend_from_slice(&MAGIC.to_be_bytes());
    pkt.push(KIND_DATA);
    pkt.push(if eom { FLAG_EOM } else { 0 });
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&seq.to_be_bytes());
    pkt.extend_from_slice(payload);
    pkt
}

fn encode_ack(src: AsId, cum_ack: u64) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(HEADER_LEN);
    pkt.extend_from_slice(&MAGIC.to_be_bytes());
    pkt.push(KIND_ACK);
    pkt.push(0);
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&cum_ack.to_be_bytes());
    pkt
}

struct Parsed<'a> {
    kind: u8,
    flags: u8,
    src: AsId,
    seq: u64,
    payload: &'a [u8],
}

fn parse(pkt: &[u8]) -> Option<Parsed<'_>> {
    if pkt.len() < HEADER_LEN {
        return None;
    }
    if u16::from_be_bytes([pkt[0], pkt[1]]) != MAGIC {
        return None;
    }
    Some(Parsed {
        kind: pkt[2],
        flags: pkt[3],
        src: AsId(u16::from_be_bytes([pkt[4], pkt[5]])),
        seq: u64::from_be_bytes(pkt[6..14].try_into().expect("8 bytes")),
        payload: &pkt[14..],
    })
}

#[allow(clippy::too_many_arguments)]
fn pump_loop(
    local: AsId,
    socket: &UdpSocket,
    shared: &Mutex<Shared>,
    deliver: &Sender<(AsId, Bytes)>,
    stats: &StatCounters,
    closed: &AtomicBool,
    rto: Duration,
) {
    let mut buf = vec![0u8; 65536];
    let mut last_scan = Instant::now();
    while !closed.load(Ordering::Acquire) {
        match socket.recv_from(&mut buf) {
            Ok((n, from_addr)) => {
                if let Some(p) = parse(&buf[..n]) {
                    match p.kind {
                        KIND_DATA => {
                            handle_data(local, socket, shared, deliver, stats, &p, from_addr);
                        }
                        KIND_ACK => {
                            let mut st = shared.lock();
                            if let Some(tx) = st.tx.get_mut(&p.src) {
                                let acked: Vec<u64> =
                                    tx.unacked.range(..=p.seq).map(|(&s, _)| s).collect();
                                for s in acked {
                                    if let Some((_, sent_at)) = tx.unacked.remove(&s) {
                                        // Last-transmit to cumulative-ACK;
                                        // retransmissions reset the clock, so
                                        // samples bound the true packet RTT.
                                        stats.note_rtt(sent_at.elapsed());
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        // Periodic retransmission scan.
        if last_scan.elapsed() >= rto / 2 {
            last_scan = Instant::now();
            let mut st = shared.lock();
            let peers = st.peers.clone();
            for (peer, tx) in st.tx.iter_mut() {
                let Some(&addr) = peers.get(peer) else {
                    continue;
                };
                for (pkt, sent_at) in tx.unacked.values_mut() {
                    if sent_at.elapsed() >= rto {
                        let _ = socket.send_to(pkt, addr);
                        *sent_at = Instant::now();
                        stats.note_retransmit();
                    }
                }
            }
        }
    }
}

fn handle_data(
    local: AsId,
    socket: &UdpSocket,
    shared: &Mutex<Shared>,
    deliver: &Sender<(AsId, Bytes)>,
    stats: &StatCounters,
    p: &Parsed<'_>,
    from_addr: SocketAddr,
) {
    let mut completed: Vec<Bytes> = Vec::new();
    let ack;
    {
        let mut st = shared.lock();
        // Learn/refresh the peer's address from observed traffic.
        st.peers.insert(p.src, from_addr);
        let rx = st.rx.entry(p.src).or_insert_with(PeerRx::new);
        if p.seq < rx.expected || rx.ooo.contains_key(&p.seq) {
            stats.note_duplicate();
        } else {
            rx.ooo.insert(p.seq, (p.flags, p.payload.to_vec()));
            while let Some((flags, payload)) = rx.ooo.remove(&rx.expected) {
                rx.assembling.extend_from_slice(&payload);
                if flags & FLAG_EOM != 0 {
                    let msg = Bytes::from(std::mem::take(&mut rx.assembling));
                    stats.note_received(msg.len());
                    completed.push(msg);
                }
                rx.expected += 1;
            }
        }
        ack = rx.expected.wrapping_sub(1);
    }
    if ack != u64::MAX {
        let _ = socket.send_to(&encode_ack(local, ack), from_addr);
    }
    for msg in completed {
        let _ = deliver.send((p.src, msg));
    }
}

impl ClfTransport for UdpEndpoint {
    fn local(&self) -> AsId {
        self.local
    }

    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        let mut st = self.shared.lock();
        let addr = *st.peers.get(&dst).ok_or(ClfError::UnknownPeer)?;
        let tx = st.tx.entry(dst).or_insert_with(PeerTx::new);
        let frag = self.config.frag_payload.max(1);
        let n_frags = msg.len().div_ceil(frag).max(1);
        if tx.unacked.len() + n_frags > self.config.max_unacked.max(1) {
            return Err(ClfError::Backpressure);
        }
        let mut packets = Vec::with_capacity(n_frags);
        for i in 0..n_frags {
            let lo = i * frag;
            let hi = ((i + 1) * frag).min(msg.len());
            let eom = i + 1 == n_frags;
            let seq = tx.next_seq;
            tx.next_seq += 1;
            let pkt = encode_data(self.local, seq, eom, &msg[lo..hi]);
            tx.unacked.insert(seq, (pkt.clone(), Instant::now()));
            tx.data_sent += 1;
            packets.push(pkt);
        }
        drop(st);
        for pkt in &packets {
            if self.should_drop() {
                continue; // the retransmission timer will recover it
            }
            self.socket.send_to(pkt, addr)?;
        }
        self.stats.note_sent(msg.len());
        Ok(())
    }

    fn recv(&self) -> Result<(AsId, Bytes), ClfError> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(ClfError::Closed);
            }
            match self.inbox.recv_timeout(Duration::from_millis(50)) {
                Ok(m) => return Ok(m),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(ClfError::Closed),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        match self.inbox.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(ClfError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        match self.inbox.try_recv() {
            Ok(m) => Ok(m),
            Err(TryRecvError::Empty) => Err(ClfError::Empty),
            Err(TryRecvError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn bind_metrics(&self, registry: &MetricsRegistry) {
        self.stats.bind(registry, "udp");
    }

    fn purge_peer(&self, peer: AsId) {
        let mut st = self.shared.lock();
        st.tx.remove(&peer);
        st.rx.remove(&peer);
        // The address mapping stays: a restarted peer starts a fresh
        // sequence space and is re-learned from observed traffic.
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("local", &self.local)
            .field("addr", &self.addr)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for UdpEndpoint {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

/// Builds a fully-connected set of loopback UDP endpoints for `n` address
/// spaces `AsId(0) .. AsId(n-1)`.
///
/// # Errors
///
/// [`ClfError::Io`] if any socket cannot be bound.
pub fn udp_mesh(n: u16, config: UdpConfig) -> Result<Vec<Arc<UdpEndpoint>>, ClfError> {
    let endpoints: Vec<Arc<UdpEndpoint>> = (0..n)
        .map(|i| UdpEndpoint::bind(AsId(i), config))
        .collect::<Result<_, _>>()?;
    for a in &endpoints {
        for b in &endpoints {
            if a.local() != b.local() {
                a.add_peer(b.local(), b.local_addr());
            }
        }
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(config: UdpConfig) -> (Arc<UdpEndpoint>, Arc<UdpEndpoint>) {
        let mut v = udp_mesh(2, config).unwrap();
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    }

    #[test]
    fn small_message_round_trip() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::from_static(b"ping")).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(from, AsId(0));
        assert_eq!(&msg[..], b"ping");
    }

    #[test]
    fn empty_message_delivered() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::new()).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(msg.is_empty());
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let (a, b) = pair(UdpConfig::default());
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        a.send(AsId(1), Bytes::from(payload.clone())).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&msg[..], &payload[..]);
    }

    #[test]
    fn many_messages_stay_ordered() {
        let (a, b) = pair(UdpConfig::default());
        for i in 0..200u32 {
            a.send(AsId(1), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(u32::from_be_bytes(msg[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn survives_packet_loss() {
        let lossy = UdpConfig {
            loss: LossInjection::DropEveryNth(3),
            rto: Duration::from_millis(20),
            ..UdpConfig::default()
        };
        let (a, b) = pair(lossy);
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 13) as u8).collect();
        for i in 0..20u32 {
            let mut m = payload.clone();
            m[0] = i as u8;
            a.send(AsId(1), Bytes::from(m)).unwrap();
        }
        for i in 0..20u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(msg[0], i as u8, "message {i} out of order or corrupt");
            assert_eq!(msg.len(), payload.len());
        }
        assert!(
            a.stats().retransmits > 0,
            "loss injection should force retransmissions"
        );
    }

    #[test]
    fn unknown_peer_rejected() {
        let a = UdpEndpoint::bind(AsId(0), UdpConfig::default()).unwrap();
        assert_eq!(
            a.send(AsId(7), Bytes::new()).unwrap_err(),
            ClfError::UnknownPeer
        );
        a.shutdown();
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::from_static(b"to-b")).unwrap();
        b.send(AsId(0), Bytes::from_static(b"to-a")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"to-b"
        );
        assert_eq!(
            &a.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"to-a"
        );
    }

    #[test]
    fn shutdown_closes_operations() {
        let (a, _b) = pair(UdpConfig::default());
        a.shutdown();
        assert_eq!(a.send(AsId(1), Bytes::new()).unwrap_err(), ClfError::Closed);
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Closed);
    }

    #[test]
    fn timeout_and_empty() {
        let (a, _b) = pair(UdpConfig::default());
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Empty);
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            ClfError::Timeout
        );
    }

    #[test]
    fn dead_peer_triggers_backpressure_and_purge_recovers() {
        let a = UdpEndpoint::bind(
            AsId(0),
            UdpConfig {
                max_unacked: 4,
                rto: Duration::from_secs(30), // keep retransmits out of the picture
                ..UdpConfig::default()
            },
        )
        .unwrap();
        // Point at a socket nobody ever ACKs from.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.add_peer(AsId(1), sink.local_addr().unwrap());
        for _ in 0..4 {
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap_err(),
            ClfError::Backpressure
        );
        // Declaring the peer dead purges the buffer and unblocks sends.
        a.purge_peer(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        a.shutdown();
    }

    #[test]
    fn garbage_packets_ignored() {
        let (a, b) = pair(UdpConfig::default());
        // Throw junk at b's socket from a raw socket.
        let junk = UdpSocket::bind("127.0.0.1:0").unwrap();
        junk.send_to(b"not a clf packet", b.local_addr()).unwrap();
        junk.send_to(&[0u8; 3], b.local_addr()).unwrap();
        a.send(AsId(1), Bytes::from_static(b"real")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"real"
        );
    }
}
