//! Reliable-UDP CLF backend — "UDP over a LAN".
//!
//! Between cluster nodes the paper's CLF runs over UDP while still
//! promising reliable, ordered delivery with an infinite packet queue.
//! This backend implements that promise with a small ARQ protocol:
//!
//! * messages are fragmented into DATA packets of at most
//!   [`UdpConfig::frag_payload`] bytes, each carrying a per-peer sequence
//!   number and an end-of-message flag;
//! * the receiver acknowledges cumulatively, reorders out-of-order
//!   packets, drops duplicates, and reassembles in-order fragments into
//!   messages;
//! * the sender buffers unacknowledged packets without bound (the
//!   "infinite queue" illusion) and retransmits on a timer.
//!
//! The data plane is zero-copy (see `DESIGN.md` §4.6): a send accepts
//! scatter-gather [`Bytes`] segments and fragments *across* segment
//! boundaries without materializing the message — the unacked buffer
//! holds refcounted slices, and the only per-packet copy is the gather
//! into the outgoing datagram at the kernel boundary. On receive, each
//! datagram lands in a recycled buffer that is frozen into [`Bytes`];
//! fragment payloads are slice views into it, and a single-fragment
//! message is delivered as that view without reassembly.
//!
//! Two transmit-path optimizations ride on top:
//!
//! * **Coalescing** — DATA packets bound for the same peer are packed
//!   into one datagram (format: a container magic, then repeated
//!   `[u16 length][packet]`). With [`UdpConfig::coalesce_delay`] at zero
//!   only the packets of a single send share a datagram; a non-zero
//!   delay additionally holds a per-peer batch open so that back-to-back
//!   sends coalesce, trading that much latency for fewer syscalls.
//! * **Adaptive retransmission** — [`UdpConfig::rto`] only seeds the
//!   timer. Each peer runs a Jacobson/Karels estimator (SRTT/RTTVAR from
//!   ACK round-trips, Karn's rule excluding retransmitted packets,
//!   exponential backoff while a peer stays silent), so the timeout
//!   tracks the actual path instead of a compile-time guess.
//!
//! A deterministic loss injector ([`LossInjection`]) lets tests exercise
//! retransmission without a lossy network.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use dstampede_core::AsId;

use dstampede_obs::MetricsRegistry;

use crate::error::ClfError;
use crate::transport::{ClfTransport, StatCounters, TransportStats};

const MAGIC: u16 = 0xC1F0;
/// First two bytes of a coalesced datagram: repeated `[u16 len][packet]`.
const COALESCE_MAGIC: u16 = 0xC1F1;
const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const FLAG_EOM: u8 = 1;
const HEADER_LEN: usize = 2 + 1 + 1 + 2 + 8;

/// Floor/ceiling on the adaptive retransmission timeout.
const MIN_RTO: Duration = Duration::from_millis(5);
const MAX_RTO: Duration = Duration::from_secs(60);

/// Largest datagram the coalescer will assemble (safely under the 65,507
/// byte UDP payload limit).
const MAX_DATAGRAM: usize = 60_000;

/// Receive buffer size; a UDP datagram cannot exceed it.
const RECV_BUF: usize = 65_536;

/// Fragment payloads at or above this many bytes are delivered as slice
/// views into the receive buffer; smaller ones are copied out so the
/// (large) buffer can be recycled immediately.
const VIEW_THRESHOLD: usize = 256;

/// How many recycled receive buffers the pump thread keeps around.
const FREE_LIST_MAX: usize = 4;

/// Deterministic packet-loss injection for tests and fault drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossInjection {
    /// Deliver everything (default).
    #[default]
    None,
    /// Drop every n-th DATA packet (n ≥ 2).
    DropEveryNth(u32),
}

/// Tuning knobs for a [`UdpEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpConfig {
    /// Maximum DATA payload per packet. The paper notes UDP caps messages
    /// below 64 KB; we default well under typical loopback MTUs.
    pub frag_payload: usize,
    /// *Initial* retransmission timeout for unacknowledged packets. Once
    /// ACKs flow, each peer's timeout is re-estimated from measured
    /// round-trips (Jacobson/Karels), so this only governs the first
    /// exchanges and peers that have never ACKed.
    pub rto: Duration,
    /// Outbound loss injection.
    pub loss: LossInjection,
    /// High-water mark on unacknowledged DATA packets buffered per peer.
    /// A send that would exceed it fails with [`ClfError::Backpressure`]
    /// instead of growing memory without bound when a peer stops ACKing.
    pub max_unacked: usize,
    /// How long a per-peer transmit batch may wait for more packets
    /// before it is flushed. Zero (the default) flushes every send
    /// immediately — packets of one message still share datagrams, but
    /// no latency is added.
    pub coalesce_delay: Duration,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            frag_payload: 8192,
            rto: Duration::from_millis(40),
            loss: LossInjection::None,
            max_unacked: 1024,
            coalesce_delay: Duration::ZERO,
        }
    }
}

/// A DATA packet held for (re)transmission: the 14 header bytes plus the
/// message fragment as borrowed segments. Retransmission re-gathers from
/// here, so payload bytes are never duplicated into the send buffer.
#[derive(Clone)]
struct Packet {
    header: [u8; HEADER_LEN],
    payload: Vec<Bytes>,
}

impl Packet {
    fn data(src: AsId, seq: u64, eom: bool, payload: Vec<Bytes>) -> Packet {
        let mut header = [0u8; HEADER_LEN];
        header[0..2].copy_from_slice(&MAGIC.to_be_bytes());
        header[2] = KIND_DATA;
        header[3] = if eom { FLAG_EOM } else { 0 };
        header[4..6].copy_from_slice(&src.0.to_be_bytes());
        header[6..14].copy_from_slice(&seq.to_be_bytes());
        Packet { header, payload }
    }

    fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.iter().map(Bytes::len).sum::<usize>()
    }

    /// Gathers header and payload segments into `out` — the single
    /// user-space copy on the transmit path (std's `UdpSocket` has no
    /// vectored send).
    fn gather_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.header);
        for seg in &self.payload {
            out.extend_from_slice(seg);
        }
    }
}

/// Jacobson/Karels retransmission-timeout estimation (RFC 6298 shape).
#[derive(Debug, Clone, Copy)]
struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    /// Configured starting timeout, used until the first clean sample
    /// and as the backoff-reset floor before one exists.
    initial: Duration,
}

impl RttEstimator {
    fn new(initial: Duration) -> RttEstimator {
        let initial = initial.clamp(MIN_RTO, MAX_RTO);
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: initial,
            initial,
        }
    }

    /// Folds one measured round-trip into the estimate. Callers must
    /// respect Karn's rule: never sample a retransmitted packet.
    fn sample(&mut self, s: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(s);
                self.rttvar = s / 2;
            }
            Some(srtt) => {
                let err = srtt.abs_diff(s);
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + s) / 8);
            }
        }
        self.rto = (self.srtt.unwrap_or_default() + 4 * self.rttvar).clamp(MIN_RTO, MAX_RTO);
    }

    /// Exponential backoff after a retransmission (the estimate itself
    /// is left alone; the next clean sample re-derives the timeout).
    fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(MAX_RTO);
    }

    /// Sheds accumulated backoff after acked forward progress that
    /// produced no clean sample (every acked packet had been
    /// retransmitted, so Karn's rule discards them). Without this a
    /// fully retransmitted window can never re-arm the timer: no
    /// packet ever samples, the backoff compounds toward [`MAX_RTO`],
    /// and a sustained burst stalls. The network demonstrably moved,
    /// so fall back to the current estimate.
    fn reset_backoff(&mut self) {
        self.rto = match self.srtt {
            Some(srtt) => (srtt + 4 * self.rttvar).clamp(MIN_RTO, MAX_RTO),
            None => self.initial,
        };
    }
}

/// One buffered unacknowledged DATA packet.
struct Unacked {
    pkt: Packet,
    sent_at: Instant,
    /// Karn's rule: a retransmitted packet's ACK is ambiguous and must
    /// not feed the RTT estimator.
    retransmitted: bool,
}

struct PeerTx {
    next_seq: u64,
    unacked: BTreeMap<u64, Unacked>,
    data_sent: u64,
    rtt: RttEstimator,
}

impl PeerTx {
    fn new(initial_rto: Duration) -> Self {
        PeerTx {
            next_seq: 0,
            unacked: BTreeMap::new(),
            data_sent: 0,
            rtt: RttEstimator::new(initial_rto),
        }
    }
}

struct PeerRx {
    expected: u64,
    /// Out-of-order packets: seq → (flags, payload view).
    ooo: BTreeMap<u64, (u8, Bytes)>,
    assembling: Vec<u8>,
}

impl PeerRx {
    fn new() -> Self {
        PeerRx {
            expected: 0,
            ooo: BTreeMap::new(),
            assembling: Vec::new(),
        }
    }
}

/// Packets staged for one peer, awaiting a coalesced flush.
struct PendingBatch {
    packets: Vec<Packet>,
    bytes: usize,
    staged_at: Instant,
}

impl PendingBatch {
    fn new() -> Self {
        PendingBatch {
            packets: Vec::new(),
            bytes: 0,
            staged_at: Instant::now(),
        }
    }
}

struct Shared {
    peers: HashMap<AsId, SocketAddr>,
    tx: HashMap<AsId, PeerTx>,
    rx: HashMap<AsId, PeerRx>,
    pending: HashMap<AsId, PendingBatch>,
}

/// A reliable-UDP CLF endpoint.
///
/// # Examples
///
/// Two endpoints on loopback:
///
/// ```
/// use bytes::Bytes;
/// use dstampede_clf::{ClfTransport, UdpConfig, UdpEndpoint};
/// use dstampede_core::AsId;
///
/// # fn main() -> Result<(), dstampede_clf::ClfError> {
/// let a = UdpEndpoint::bind(AsId(0), UdpConfig::default())?;
/// let b = UdpEndpoint::bind(AsId(1), UdpConfig::default())?;
/// a.add_peer(AsId(1), b.local_addr());
/// b.add_peer(AsId(0), a.local_addr());
/// a.send(AsId(1), Bytes::from_static(b"over udp"))?;
/// assert_eq!(&b.recv()?.1[..], b"over udp");
/// # a.shutdown(); b.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct UdpEndpoint {
    local: AsId,
    addr: SocketAddr,
    socket: UdpSocket,
    config: UdpConfig,
    shared: Arc<Mutex<Shared>>,
    inbox: Receiver<(AsId, Bytes)>,
    stats: Arc<StatCounters>,
    closed: Arc<AtomicBool>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
    loss_counter: Mutex<u64>,
}

impl UdpEndpoint {
    /// Binds an endpoint on an ephemeral loopback port and starts its
    /// protocol pump thread.
    ///
    /// # Errors
    ///
    /// [`ClfError::Io`] if the socket cannot be bound.
    pub fn bind(local: AsId, config: UdpConfig) -> Result<Arc<Self>, ClfError> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        // The read timeout bounds how late the pump can be for its
        // housekeeping (retransmission scan, aged-batch flush), so a
        // sub-10ms coalesce delay tightens it.
        let tick = if config.coalesce_delay.is_zero() {
            Duration::from_millis(10)
        } else {
            config
                .coalesce_delay
                .clamp(Duration::from_millis(1), Duration::from_millis(10))
        };
        socket.set_read_timeout(Some(tick))?;
        let addr = socket.local_addr()?;
        let shared = Arc::new(Mutex::new(Shared {
            peers: HashMap::new(),
            tx: HashMap::new(),
            rx: HashMap::new(),
            pending: HashMap::new(),
        }));
        let (deliver_tx, inbox) = unbounded();
        let stats = Arc::new(StatCounters::default());
        let closed = Arc::new(AtomicBool::new(false));

        let pump_socket = socket.try_clone()?;
        let pump_shared = Arc::clone(&shared);
        let pump_stats = Arc::clone(&stats);
        let pump_closed = Arc::clone(&closed);
        let handle = std::thread::Builder::new()
            .name(format!("clf-udp-{}", local.0))
            .spawn(move || {
                pump_loop(
                    local,
                    &pump_socket,
                    &pump_shared,
                    &deliver_tx,
                    &pump_stats,
                    &pump_closed,
                    config,
                );
            })
            .expect("spawning the CLF pump thread failed");

        Ok(Arc::new(UdpEndpoint {
            local,
            addr,
            socket,
            config,
            shared,
            inbox,
            stats,
            closed,
            pump: Mutex::new(Some(handle)),
            loss_counter: Mutex::new(0),
        }))
    }

    /// The endpoint's bound socket address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers the socket address of a peer address space.
    pub fn add_peer(&self, peer: AsId, addr: SocketAddr) {
        self.shared.lock().peers.insert(peer, addr);
    }

    fn should_drop(&self) -> bool {
        match self.config.loss {
            LossInjection::None => false,
            LossInjection::DropEveryNth(n) => {
                let mut c = self.loss_counter.lock();
                *c += 1;
                n >= 2 && (*c).is_multiple_of(u64::from(n))
            }
        }
    }
}

/// Walks a segment list, carving off fragment payloads as refcounted
/// slices without copying any payload bytes.
struct SegCursor<'a> {
    segments: &'a [Bytes],
    idx: usize,
    off: usize,
}

impl<'a> SegCursor<'a> {
    fn new(segments: &'a [Bytes]) -> Self {
        SegCursor {
            segments,
            idx: 0,
            off: 0,
        }
    }

    fn take(&mut self, mut n: usize) -> Vec<Bytes> {
        let mut out = Vec::new();
        while n > 0 && self.idx < self.segments.len() {
            let seg = &self.segments[self.idx];
            let avail = seg.len() - self.off;
            if avail == 0 {
                self.idx += 1;
                self.off = 0;
                continue;
            }
            let take = avail.min(n);
            out.push(seg.slice(self.off..self.off + take));
            self.off += take;
            n -= take;
            if self.off == seg.len() {
                self.idx += 1;
                self.off = 0;
            }
        }
        out
    }
}

fn encode_ack(src: AsId, cum_ack: u64) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(HEADER_LEN);
    pkt.extend_from_slice(&MAGIC.to_be_bytes());
    pkt.push(KIND_ACK);
    pkt.push(0);
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&cum_ack.to_be_bytes());
    pkt
}

struct Parsed {
    kind: u8,
    flags: u8,
    src: AsId,
    seq: u64,
    payload: Bytes,
}

/// Parses the packet at `datagram[start..end]`. Payloads at or above
/// [`VIEW_THRESHOLD`] are returned as slice views into the datagram;
/// smaller ones are copied out so the receive buffer stays reclaimable.
fn parse(datagram: &Bytes, start: usize, end: usize) -> Option<Parsed> {
    let pkt = &datagram[start..end];
    if pkt.len() < HEADER_LEN {
        return None;
    }
    if u16::from_be_bytes([pkt[0], pkt[1]]) != MAGIC {
        return None;
    }
    let payload_len = end - start - HEADER_LEN;
    let payload = if payload_len >= VIEW_THRESHOLD {
        datagram.slice(start + HEADER_LEN..end)
    } else {
        Bytes::copy_from_slice(&pkt[HEADER_LEN..])
    };
    Some(Parsed {
        kind: pkt[2],
        flags: pkt[3],
        src: AsId(u16::from_be_bytes([pkt[4], pkt[5]])),
        seq: u64::from_be_bytes(pkt[6..14].try_into().expect("8 bytes")),
        payload,
    })
}

/// Transmits `packets` to one peer, packing as many as fit into each
/// datagram. A datagram carrying a single packet uses the bare packet
/// format; several packets use the coalesced container.
fn transmit_batch(socket: &UdpSocket, addr: SocketAddr, packets: &[Packet], stats: &StatCounters) {
    let mut i = 0;
    let mut buf: Vec<u8> = Vec::new();
    while i < packets.len() {
        let mut j = i + 1;
        let mut size = 2 + 2 + packets[i].wire_len();
        if packets[i].wire_len() <= usize::from(u16::MAX) {
            while j < packets.len() {
                let w = packets[j].wire_len();
                if w > usize::from(u16::MAX) || size + 2 + w > MAX_DATAGRAM {
                    break;
                }
                size += 2 + w;
                j += 1;
            }
        }
        buf.clear();
        if j - i == 1 {
            packets[i].gather_into(&mut buf);
        } else {
            buf.extend_from_slice(&COALESCE_MAGIC.to_be_bytes());
            for pkt in &packets[i..j] {
                let len = u16::try_from(pkt.wire_len()).expect("coalesced packet fits u16");
                buf.extend_from_slice(&len.to_be_bytes());
                pkt.gather_into(&mut buf);
            }
        }
        let _ = socket.send_to(&buf, addr);
        stats.note_coalesced((j - i) as u64);
        i = j;
    }
}

#[allow(clippy::too_many_arguments)]
fn pump_loop(
    local: AsId,
    socket: &UdpSocket,
    shared: &Mutex<Shared>,
    deliver: &Sender<(AsId, Bytes)>,
    stats: &StatCounters,
    closed: &AtomicBool,
    config: UdpConfig,
) {
    // Recycled receive buffers: each datagram is frozen into `Bytes` so
    // payload views can borrow it; when no view outlives the dispatch,
    // the allocation is reclaimed for the next receive.
    let mut free: Vec<Vec<u8>> = Vec::new();
    let mut last_scan = Instant::now();
    while !closed.load(Ordering::Acquire) {
        let mut buf = free.pop().unwrap_or_else(|| vec![0u8; RECV_BUF]);
        buf.resize(RECV_BUF, 0);
        match socket.recv_from(&mut buf) {
            Ok((n, from_addr)) => {
                buf.truncate(n);
                let datagram = Bytes::from(buf);
                process_datagram(local, socket, shared, deliver, stats, &datagram, from_addr);
                if free.len() < FREE_LIST_MAX {
                    if let Ok(v) = datagram.try_into_vec() {
                        free.push(v);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if free.len() < FREE_LIST_MAX {
                    free.push(buf);
                }
            }
            Err(_) => break,
        }
        // Flush transmit batches that have waited out the coalesce delay.
        if !config.coalesce_delay.is_zero() {
            let mut due: Vec<(SocketAddr, PendingBatch)> = Vec::new();
            {
                let mut st = shared.lock();
                let ripe: Vec<AsId> = st
                    .pending
                    .iter()
                    .filter(|(_, b)| b.staged_at.elapsed() >= config.coalesce_delay)
                    .map(|(&dst, _)| dst)
                    .collect();
                for dst in ripe {
                    if let Some(batch) = st.pending.remove(&dst) {
                        if let Some(&addr) = st.peers.get(&dst) {
                            due.push((addr, batch));
                        }
                    }
                }
            }
            for (addr, batch) in due {
                transmit_batch(socket, addr, &batch.packets, stats);
            }
        }
        // Periodic retransmission scan against each peer's adaptive RTO.
        if last_scan.elapsed() >= MIN_RTO {
            last_scan = Instant::now();
            let mut st = shared.lock();
            let peers = st.peers.clone();
            let mut out = Vec::new();
            for (peer, tx) in st.tx.iter_mut() {
                let Some(&addr) = peers.get(peer) else {
                    continue;
                };
                let rto = tx.rtt.rto;
                let mut any = false;
                for u in tx.unacked.values_mut() {
                    if u.sent_at.elapsed() >= rto {
                        out.clear();
                        u.pkt.gather_into(&mut out);
                        let _ = socket.send_to(&out, addr);
                        u.sent_at = Instant::now();
                        u.retransmitted = true;
                        any = true;
                        stats.note_retransmit();
                    }
                }
                if any {
                    tx.rtt.backoff();
                }
            }
        }
    }
}

fn process_datagram(
    local: AsId,
    socket: &UdpSocket,
    shared: &Mutex<Shared>,
    deliver: &Sender<(AsId, Bytes)>,
    stats: &StatCounters,
    datagram: &Bytes,
    from_addr: SocketAddr,
) {
    if datagram.len() < 2 {
        return;
    }
    match u16::from_be_bytes([datagram[0], datagram[1]]) {
        MAGIC => {
            if let Some(p) = parse(datagram, 0, datagram.len()) {
                handle_packet(local, socket, shared, deliver, stats, p, from_addr);
            }
        }
        COALESCE_MAGIC => {
            let mut off = 2;
            while off + 2 <= datagram.len() {
                let len = usize::from(u16::from_be_bytes([datagram[off], datagram[off + 1]]));
                off += 2;
                if off + len > datagram.len() {
                    break;
                }
                if let Some(p) = parse(datagram, off, off + len) {
                    handle_packet(local, socket, shared, deliver, stats, p, from_addr);
                }
                off += len;
            }
        }
        _ => {}
    }
}

fn handle_packet(
    local: AsId,
    socket: &UdpSocket,
    shared: &Mutex<Shared>,
    deliver: &Sender<(AsId, Bytes)>,
    stats: &StatCounters,
    p: Parsed,
    from_addr: SocketAddr,
) {
    match p.kind {
        KIND_DATA => handle_data(local, socket, shared, deliver, stats, p, from_addr),
        KIND_ACK => {
            let mut st = shared.lock();
            if let Some(tx) = st.tx.get_mut(&p.src) {
                let acked: Vec<u64> = tx.unacked.range(..=p.seq).map(|(&s, _)| s).collect();
                let progressed = !acked.is_empty();
                let mut sampled = false;
                for s in acked {
                    if let Some(u) = tx.unacked.remove(&s) {
                        // Karn's rule: a retransmitted packet's ACK does
                        // not say which transmission it answers.
                        if !u.retransmitted {
                            let sample = u.sent_at.elapsed();
                            stats.note_rtt(sample);
                            tx.rtt.sample(sample);
                            sampled = true;
                        }
                    }
                }
                if sampled {
                    stats.note_srtt(tx.rtt.srtt.unwrap_or_default());
                } else if progressed {
                    // The window advanced on retransmitted packets only:
                    // shed the backoff so the timer re-arms from the
                    // estimate instead of compounding toward MAX_RTO.
                    tx.rtt.reset_backoff();
                }
            }
        }
        _ => {}
    }
}

fn handle_data(
    local: AsId,
    socket: &UdpSocket,
    shared: &Mutex<Shared>,
    deliver: &Sender<(AsId, Bytes)>,
    stats: &StatCounters,
    p: Parsed,
    from_addr: SocketAddr,
) {
    let mut completed: Vec<Bytes> = Vec::new();
    let ack;
    {
        let mut st = shared.lock();
        // Learn/refresh the peer's address from observed traffic.
        st.peers.insert(p.src, from_addr);
        let rx = st.rx.entry(p.src).or_insert_with(PeerRx::new);
        if p.seq < rx.expected || rx.ooo.contains_key(&p.seq) {
            stats.note_duplicate();
        } else {
            rx.ooo.insert(p.seq, (p.flags, p.payload));
            while let Some((flags, payload)) = rx.ooo.remove(&rx.expected) {
                let eom = flags & FLAG_EOM != 0;
                if eom && rx.assembling.is_empty() {
                    // Single-fragment message: the payload view is the
                    // message — deliver without reassembly.
                    stats.note_received(payload.len());
                    completed.push(payload);
                } else {
                    rx.assembling.extend_from_slice(&payload);
                    if eom {
                        let msg = Bytes::from(std::mem::take(&mut rx.assembling));
                        stats.note_received(msg.len());
                        completed.push(msg);
                    }
                }
                rx.expected += 1;
            }
        }
        ack = rx.expected.wrapping_sub(1);
    }
    if ack != u64::MAX {
        let _ = socket.send_to(&encode_ack(local, ack), from_addr);
    }
    for msg in completed {
        let _ = deliver.send((p.src, msg));
    }
}

impl ClfTransport for UdpEndpoint {
    fn local(&self) -> AsId {
        self.local
    }

    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError> {
        self.send_segments(dst, std::slice::from_ref(&msg))
    }

    fn send_segments(&self, dst: AsId, segments: &[Bytes]) -> Result<(), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        let total: usize = segments.iter().map(Bytes::len).sum();
        let mut st = self.shared.lock();
        let addr = *st.peers.get(&dst).ok_or(ClfError::UnknownPeer)?;
        let tx = st
            .tx
            .entry(dst)
            .or_insert_with(|| PeerTx::new(self.config.rto));
        let frag = self.config.frag_payload.max(1);
        let n_frags = total.div_ceil(frag).max(1);
        if tx.unacked.len() + n_frags > self.config.max_unacked.max(1) {
            self.stats.note_backpressure();
            return Err(ClfError::Backpressure { peer: dst });
        }
        let mut to_wire: Vec<Packet> = Vec::with_capacity(n_frags);
        let mut cursor = SegCursor::new(segments);
        for i in 0..n_frags {
            let take = if i + 1 == n_frags {
                total - i * frag
            } else {
                frag
            };
            let eom = i + 1 == n_frags;
            let seq = tx.next_seq;
            tx.next_seq += 1;
            let pkt = Packet::data(self.local, seq, eom, cursor.take(take));
            tx.unacked.insert(
                seq,
                Unacked {
                    pkt: pkt.clone(),
                    sent_at: Instant::now(),
                    retransmitted: false,
                },
            );
            tx.data_sent += 1;
            // Injected loss skips only the first transmission; the
            // retransmission timer recovers the packet.
            if !self.should_drop() {
                to_wire.push(pkt);
            }
        }
        let batch = st.pending.entry(dst).or_insert_with(PendingBatch::new);
        if batch.packets.is_empty() {
            batch.staged_at = Instant::now();
        }
        for pkt in to_wire {
            batch.bytes += 2 + pkt.wire_len();
            batch.packets.push(pkt);
        }
        let flush_now = self.config.coalesce_delay.is_zero() || batch.bytes + 2 >= MAX_DATAGRAM;
        let flushed = if flush_now {
            st.pending.remove(&dst)
        } else {
            None
        };
        drop(st);
        if let Some(batch) = flushed {
            transmit_batch(&self.socket, addr, &batch.packets, &self.stats);
        }
        self.stats.note_sent(total);
        Ok(())
    }

    fn recv(&self) -> Result<(AsId, Bytes), ClfError> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(ClfError::Closed);
            }
            match self.inbox.recv_timeout(Duration::from_millis(50)) {
                Ok(m) => return Ok(m),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(ClfError::Closed),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        match self.inbox.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(ClfError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        match self.inbox.try_recv() {
            Ok(m) => Ok(m),
            Err(TryRecvError::Empty) => Err(ClfError::Empty),
            Err(TryRecvError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn bind_metrics(&self, registry: &MetricsRegistry) {
        self.stats.bind(registry, "udp");
    }

    fn purge_peer(&self, peer: AsId) {
        let mut st = self.shared.lock();
        st.tx.remove(&peer);
        st.rx.remove(&peer);
        st.pending.remove(&peer);
        // The address mapping stays: a restarted peer starts a fresh
        // sequence space and is re-learned from observed traffic.
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("local", &self.local)
            .field("addr", &self.addr)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for UdpEndpoint {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

/// Builds a fully-connected set of loopback UDP endpoints for `n` address
/// spaces `AsId(0) .. AsId(n-1)`.
///
/// # Errors
///
/// [`ClfError::Io`] if any socket cannot be bound.
pub fn udp_mesh(n: u16, config: UdpConfig) -> Result<Vec<Arc<UdpEndpoint>>, ClfError> {
    let endpoints: Vec<Arc<UdpEndpoint>> = (0..n)
        .map(|i| UdpEndpoint::bind(AsId(i), config))
        .collect::<Result<_, _>>()?;
    for a in &endpoints {
        for b in &endpoints {
            if a.local() != b.local() {
                a.add_peer(b.local(), b.local_addr());
            }
        }
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(config: UdpConfig) -> (Arc<UdpEndpoint>, Arc<UdpEndpoint>) {
        let mut v = udp_mesh(2, config).unwrap();
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    }

    #[test]
    fn small_message_round_trip() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::from_static(b"ping")).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(from, AsId(0));
        assert_eq!(&msg[..], b"ping");
    }

    #[test]
    fn empty_message_delivered() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::new()).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(msg.is_empty());
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let (a, b) = pair(UdpConfig::default());
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        a.send(AsId(1), Bytes::from(payload.clone())).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&msg[..], &payload[..]);
    }

    #[test]
    fn many_messages_stay_ordered() {
        let (a, b) = pair(UdpConfig::default());
        for i in 0..200u32 {
            a.send(AsId(1), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(u32::from_be_bytes(msg[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn survives_packet_loss() {
        let lossy = UdpConfig {
            loss: LossInjection::DropEveryNth(3),
            rto: Duration::from_millis(20),
            ..UdpConfig::default()
        };
        let (a, b) = pair(lossy);
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 13) as u8).collect();
        for i in 0..20u32 {
            let mut m = payload.clone();
            m[0] = i as u8;
            a.send(AsId(1), Bytes::from(m)).unwrap();
        }
        for i in 0..20u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(msg[0], i as u8, "message {i} out of order or corrupt");
            assert_eq!(msg.len(), payload.len());
        }
        assert!(
            a.stats().retransmits > 0,
            "loss injection should force retransmissions"
        );
    }

    #[test]
    fn unknown_peer_rejected() {
        let a = UdpEndpoint::bind(AsId(0), UdpConfig::default()).unwrap();
        assert_eq!(
            a.send(AsId(7), Bytes::new()).unwrap_err(),
            ClfError::UnknownPeer
        );
        a.shutdown();
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::from_static(b"to-b")).unwrap();
        b.send(AsId(0), Bytes::from_static(b"to-a")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"to-b"
        );
        assert_eq!(
            &a.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"to-a"
        );
    }

    #[test]
    fn shutdown_closes_operations() {
        let (a, _b) = pair(UdpConfig::default());
        a.shutdown();
        assert_eq!(a.send(AsId(1), Bytes::new()).unwrap_err(), ClfError::Closed);
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Closed);
    }

    #[test]
    fn timeout_and_empty() {
        let (a, _b) = pair(UdpConfig::default());
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Empty);
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            ClfError::Timeout
        );
    }

    #[test]
    fn dead_peer_triggers_backpressure_and_purge_recovers() {
        let a = UdpEndpoint::bind(
            AsId(0),
            UdpConfig {
                max_unacked: 4,
                rto: Duration::from_secs(30), // keep retransmits out of the picture
                ..UdpConfig::default()
            },
        )
        .unwrap();
        // Point at a socket nobody ever ACKs from.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.add_peer(AsId(1), sink.local_addr().unwrap());
        for _ in 0..4 {
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap_err(),
            ClfError::Backpressure { peer: AsId(1) }
        );
        // Declaring the peer dead purges the buffer and unblocks sends.
        a.purge_peer(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        a.shutdown();
    }

    #[test]
    fn garbage_packets_ignored() {
        let (a, b) = pair(UdpConfig::default());
        // Throw junk at b's socket from a raw socket.
        let junk = UdpSocket::bind("127.0.0.1:0").unwrap();
        junk.send_to(b"not a clf packet", b.local_addr()).unwrap();
        junk.send_to(&[0u8; 3], b.local_addr()).unwrap();
        a.send(AsId(1), Bytes::from_static(b"real")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"real"
        );
    }

    #[test]
    fn send_segments_concatenates_across_fragments() {
        let (a, b) = pair(UdpConfig {
            frag_payload: 10,
            ..UdpConfig::default()
        });
        let segs = [
            Bytes::from_static(b"alpha-"),
            Bytes::new(),
            Bytes::from_static(b"beta-and-more-"),
            Bytes::from_static(b"gamma"),
        ];
        a.send_segments(AsId(1), &segs).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(&msg[..], b"alpha-beta-and-more-gamma");
    }

    #[test]
    fn coalesce_delay_packs_frames_per_datagram() {
        let (a, b) = pair(UdpConfig {
            coalesce_delay: Duration::from_millis(5),
            ..UdpConfig::default()
        });
        let reg = MetricsRegistry::new("test");
        a.bind_metrics(&reg);
        for i in 0..5u8 {
            a.send(AsId(1), Bytes::from(vec![i])).unwrap();
        }
        for i in 0..5u8 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg[0], i, "coalesced frames must stay ordered");
        }
        let snap = reg.snapshot();
        let co = snap
            .histogram("clf", "coalesced_frames")
            .expect("coalesced series");
        assert!(
            co.sum > co.count,
            "five back-to-back sends within the delay should share datagrams \
             (frames={}, datagrams={})",
            co.sum,
            co.count
        );
    }

    #[test]
    fn rtt_estimator_follows_samples_and_backs_off() {
        let mut e = RttEstimator::new(Duration::from_millis(40));
        assert_eq!(e.rto, Duration::from_millis(40));
        // First sample: srtt = s, rttvar = s/2, rto = s + 4·(s/2) = 3s.
        e.sample(Duration::from_millis(10));
        assert_eq!(e.srtt, Some(Duration::from_millis(10)));
        assert_eq!(e.rto, Duration::from_millis(30));
        // Steady samples shrink the variance term toward srtt.
        for _ in 0..50 {
            e.sample(Duration::from_millis(10));
        }
        assert!(e.rto < Duration::from_millis(15), "rto {:?}", e.rto);
        assert!(e.rto >= MIN_RTO);
        // Backoff doubles up to the ceiling and a clean sample recovers.
        let before = e.rto;
        e.backoff();
        assert_eq!(e.rto, before * 2);
        for _ in 0..40 {
            e.backoff();
        }
        assert_eq!(e.rto, MAX_RTO);
        e.sample(Duration::from_millis(10));
        assert!(e.rto < Duration::from_millis(20));
    }

    #[test]
    fn rtt_estimator_sheds_backoff_on_ack_progress() {
        // Before any clean sample, reset falls back to the initial RTO.
        let mut e = RttEstimator::new(Duration::from_millis(40));
        for _ in 0..20 {
            e.backoff();
        }
        e.reset_backoff();
        assert_eq!(e.rto, Duration::from_millis(40));
        // After samples, reset re-derives from the estimate instead of
        // compounding — a fully retransmitted window must not wedge the
        // timer at MAX_RTO (Karn's rule never samples those acks).
        e.sample(Duration::from_millis(10));
        for _ in 0..40 {
            e.backoff();
        }
        assert_eq!(e.rto, MAX_RTO);
        e.reset_backoff();
        assert_eq!(e.rto, Duration::from_millis(30));
    }

    #[test]
    fn rtt_estimator_clamps_to_floor() {
        let mut e = RttEstimator::new(Duration::from_nanos(1));
        assert_eq!(e.rto, MIN_RTO);
        e.sample(Duration::from_micros(3));
        assert_eq!(e.rto, MIN_RTO);
    }
}
