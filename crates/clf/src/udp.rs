//! Reliable-UDP CLF backend — "UDP over a LAN".
//!
//! Between cluster nodes the paper's CLF runs over UDP while still
//! promising reliable, ordered delivery with an infinite packet queue.
//! This backend implements that promise with a sliding-window ARQ
//! protocol (state machines in [`crate::window`], drivable by the
//! model-based suite in `tests/window_model.rs`):
//!
//! * messages are fragmented into DATA packets of at most
//!   [`UdpConfig::frag_payload`] bytes, each carrying a per-peer sequence
//!   number and an end-of-message flag;
//! * the receiver reorders out-of-order packets, drops duplicates,
//!   reassembles in-order fragments into messages, and acknowledges once
//!   per received burst with a cumulative-ack + SACK-bitmap frame
//!   (encoded with the `dstampede-wire` codecs), so the sender learns
//!   exactly which packets are holes;
//! * the sender keeps at most [`UdpConfig::window_bytes`] in flight,
//!   staging the rest ([`ClfError::Backpressure`] only fires when the
//!   packet window [`UdpConfig::max_unacked`] is genuinely full),
//!   fast-retransmits holes reported by successive SACKs, and recovers
//!   everything else on an adaptive timeout.
//!
//! The data plane is zero-copy (see `DESIGN.md` §4.6): a send accepts
//! scatter-gather [`Bytes`] segments and fragments *across* segment
//! boundaries without materializing the message — the window buffers
//! hold refcounted slices, and the only per-packet copy is the gather
//! into the outgoing datagram at the kernel boundary. On receive, each
//! datagram lands in a recycled buffer that is frozen into [`Bytes`];
//! fragment payloads are slice views into it, and a single-fragment
//! message is delivered as that view without reassembly.
//!
//! Three transmit-path optimizations ride on top:
//!
//! * **Coalescing** — DATA packets bound for the same peer are packed
//!   into one datagram (format: a container magic, then repeated
//!   `[u16 length][packet]`). With [`UdpConfig::coalesce_delay`] at zero
//!   only the packets of a single send share a datagram; a non-zero
//!   delay additionally holds a per-peer batch open so that back-to-back
//!   sends coalesce, trading that much latency for fewer syscalls.
//! * **Syscall batching** — bursts of datagrams move through
//!   `sendmmsg`/`recvmmsg` on Linux (one syscall per burst instead of
//!   one per datagram), with a portable per-datagram fallback elsewhere.
//! * **Adaptive timing** — [`UdpConfig::rto`] only seeds the timer. Each
//!   peer runs a Jacobson/Karels estimator (SRTT/RTTVAR from ACK
//!   round-trips, Karn's rule excluding retransmitted packets,
//!   exponential backoff while a peer stays silent), and the same
//!   estimate drives a per-peer [`Pacer`] spreading transmissions across
//!   the round trip instead of blasting the window into the kernel.
//!
//! Interoperability is negotiated in band: a SACK-capable sender flags
//! its DATA packets, a SACK-capable receiver answers flagged DATA with
//! SACK frames, and either side silently falls back to the legacy
//! per-datagram cumulative-ACK exchange when the flag is absent (old
//! decoders ignore unknown flag bits and unknown packet kinds). The
//! fallback can be forced per peer with
//! [`ClfTransport::set_peer_sack`].
//!
//! A deterministic loss injector ([`LossInjection`]) lets tests exercise
//! retransmission without a lossy network.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use dstampede_core::AsId;

use dstampede_obs::MetricsRegistry;

use dstampede_wire::{Codec, SackInfo, XdrCodec};

use crate::error::ClfError;
use crate::shaping::Pacer;
use crate::transport::{ClfTransport, StatCounters, TransportStats};
use crate::udp_sys::{self, OutDatagram};
use crate::window::{RecvWindow, SendWindow, MIN_RTO};

const MAGIC: u16 = 0xC1F0;
/// First two bytes of a coalesced datagram: repeated `[u16 len][packet]`.
const COALESCE_MAGIC: u16 = 0xC1F1;
const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const KIND_SACK: u8 = 2;
const FLAG_EOM: u8 = 1;
/// In-band capability bit on DATA packets: "answer me with SACK frames".
/// Legacy receivers ignore unknown flag bits and keep sending
/// per-datagram cumulative ACKs, which a SACK sender still understands.
const FLAG_SACK: u8 = 2;
const HEADER_LEN: usize = 2 + 1 + 1 + 2 + 8;

/// Largest datagram the coalescer will assemble (safely under the 65,507
/// byte UDP payload limit).
const MAX_DATAGRAM: usize = 60_000;

/// Receive buffer size; a UDP datagram cannot exceed it.
const RECV_BUF: usize = 65_536;

/// Fragment payloads at or above this many bytes are delivered as slice
/// views into the receive buffer; smaller ones are copied out so the
/// (large) buffer can be recycled immediately.
const VIEW_THRESHOLD: usize = 256;

/// Kernel socket buffer size requested at bind (best effort; the kernel
/// clamps to its limits silently).
const KERNEL_BUF: usize = 1 << 20;

/// Deterministic packet-loss injection for tests and fault drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossInjection {
    /// Deliver everything (default).
    #[default]
    None,
    /// Suppress the first transmission of every n-th DATA packet
    /// (n ≥ 2); the recovery machinery must retransmit it.
    DropEveryNth(u32),
    /// Seeded pseudo-random faults applied to every outgoing datagram —
    /// DATA, retransmissions, and acknowledgment frames alike — so soak
    /// tests exercise the protocol under sustained lossy-link
    /// conditions. Deterministic under a fixed seed.
    Seeded {
        /// Generator seed.
        seed: u64,
        /// Per-mille probability a datagram vanishes.
        drop_permille: u16,
        /// Per-mille probability a datagram is emitted twice.
        dup_permille: u16,
        /// Per-mille probability a datagram is held back and emitted
        /// after later traffic (reordering).
        reorder_permille: u16,
    },
}

/// Tuning knobs for a [`UdpEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpConfig {
    /// Maximum DATA payload per packet. The paper notes UDP caps messages
    /// below 64 KB; we default well under typical loopback MTUs.
    pub frag_payload: usize,
    /// *Initial* retransmission timeout for unacknowledged packets. Once
    /// ACKs flow, each peer's timeout is re-estimated from measured
    /// round-trips (Jacobson/Karels), so this only governs the first
    /// exchanges and peers that have never ACKed.
    pub rto: Duration,
    /// Outbound loss injection.
    pub loss: LossInjection,
    /// High-water mark on staged-plus-unacknowledged DATA packets per
    /// peer. A send that would exceed it fails with
    /// [`ClfError::Backpressure`] instead of growing memory without
    /// bound when a peer stops ACKing. This is the *only* condition that
    /// backpressures: the in-flight byte budget and the pacer merely
    /// defer transmission of already-accepted packets.
    pub max_unacked: usize,
    /// How long a per-peer transmit batch may wait for more packets
    /// before it is flushed. Zero (the default) flushes every send
    /// immediately — packets of one message still share datagrams, but
    /// no latency is added.
    pub coalesce_delay: Duration,
    /// Whether to run the SACK fast path (flag outgoing DATA, answer
    /// flagged DATA with SACK frames). Disabling forces the legacy
    /// per-datagram cumulative-ACK exchange everywhere.
    pub sack: bool,
    /// In-flight byte budget per peer: transmitted-and-unacked bytes
    /// never exceed it. Sized to fit the kernel's *default* receive
    /// buffer clamp, so a full window cannot overrun the peer's socket
    /// and manufacture loss.
    pub window_bytes: usize,
    /// Receive-burst size: how many datagrams one `recvmmsg` may drain.
    pub batch: usize,
    /// Fixed pacing rate in bytes per second. `None` (the default) paces
    /// adaptively at twice the in-flight budget per smoothed round trip
    /// once an RTT estimate exists — effectively unpaced on loopback,
    /// burst-smoothing on real paths.
    pub pace: Option<u64>,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            frag_payload: 8192,
            rto: Duration::from_millis(40),
            loss: LossInjection::None,
            max_unacked: 1024,
            coalesce_delay: Duration::ZERO,
            sack: true,
            window_bytes: 128 * 1024,
            batch: 32,
            pace: None,
        }
    }
}

/// A DATA packet held for (re)transmission: the 14 header bytes plus the
/// message fragment as borrowed segments. Retransmission re-gathers from
/// here, so payload bytes are never duplicated into the send buffer.
#[derive(Debug, Clone)]
struct Packet {
    header: [u8; HEADER_LEN],
    payload: Vec<Bytes>,
}

impl Packet {
    fn data(src: AsId, seq: u64, eom: bool, sack: bool, payload: Vec<Bytes>) -> Packet {
        let mut header = [0u8; HEADER_LEN];
        header[0..2].copy_from_slice(&MAGIC.to_be_bytes());
        header[2] = KIND_DATA;
        header[3] = (u8::from(eom) * FLAG_EOM) | (u8::from(sack) * FLAG_SACK);
        header[4..6].copy_from_slice(&src.0.to_be_bytes());
        header[6..14].copy_from_slice(&seq.to_be_bytes());
        Packet { header, payload }
    }

    fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.iter().map(Bytes::len).sum::<usize>()
    }

    /// Gathers header and payload segments into `out` — the single
    /// user-space copy on the transmit path.
    fn gather_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.header);
        for seg in &self.payload {
            out.extend_from_slice(seg);
        }
    }
}

/// Send-side state for one peer.
struct PeerTx {
    win: SendWindow<Packet>,
    pacer: Pacer,
    /// Fast retransmissions produced by SACK integration, awaiting the
    /// next burst flush.
    pending_retx: Vec<Packet>,
    /// When the oldest staged packet entered the deferred queue, for the
    /// coalesce-delay ripeness check.
    deferred_since: Option<Instant>,
}

impl PeerTx {
    fn new(config: &UdpConfig) -> Self {
        PeerTx {
            win: SendWindow::new(
                config.max_unacked.max(1),
                config.window_bytes.max(1),
                config.rto,
            ),
            pacer: Pacer::new(config.pace),
            pending_retx: Vec::new(),
            deferred_since: None,
        }
    }

    /// Re-targets the adaptive pacer from the smoothed RTT: twice the
    /// in-flight budget per round trip, so pacing never caps throughput
    /// below what the window allows. A fixed [`UdpConfig::pace`] wins.
    fn retarget_pacer(&mut self, config: &UdpConfig) {
        if config.pace.is_some() {
            return;
        }
        if let Some(srtt) = self.win.rtt.srtt() {
            let srtt = srtt.as_secs_f64().max(1e-6);
            self.pacer
                .set_rate(Some(2.0 * config.window_bytes as f64 / srtt));
        }
    }
}

/// Receive-side state for one peer.
#[derive(Default)]
struct PeerRx {
    win: RecvWindow,
    /// Whether the peer's latest DATA carried [`FLAG_SACK`] — answer
    /// with SACK frames instead of legacy cumulative ACKs.
    sack_reply: bool,
}

struct Shared {
    peers: HashMap<AsId, SocketAddr>,
    tx: HashMap<AsId, PeerTx>,
    rx: HashMap<AsId, PeerRx>,
    /// Peers explicitly downgraded to the legacy ACK exchange.
    sack_disabled: HashSet<AsId>,
}

/// Mutable state of the outbound loss injector.
struct LossState {
    /// DATA packet counter for [`LossInjection::DropEveryNth`].
    counter: u64,
    /// Generator for [`LossInjection::Seeded`].
    rng: u64,
    /// Datagram held back for reordering.
    held: Option<OutDatagram>,
}

impl LossState {
    fn new(config: &UdpConfig) -> LossState {
        let seed = match config.loss {
            LossInjection::Seeded { seed, .. } => seed,
            _ => 0,
        };
        LossState {
            counter: 0,
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            held: None,
        }
    }

    fn roll(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 11) % 1000
    }
}

/// Applies [`LossInjection::Seeded`] to an assembled burst in place.
fn apply_loss(config: &UdpConfig, loss: &Mutex<LossState>, grams: &mut Vec<OutDatagram>) {
    let LossInjection::Seeded {
        drop_permille,
        dup_permille,
        reorder_permille,
        ..
    } = config.loss
    else {
        return;
    };
    let mut st = loss.lock();
    let mut out = Vec::with_capacity(grams.len() + 1);
    for g in grams.drain(..) {
        if st.roll() < u64::from(drop_permille) {
            continue;
        }
        let dup = st.roll() < u64::from(dup_permille);
        let reorder = st.roll() < u64::from(reorder_permille);
        if reorder && st.held.is_none() {
            // Held until later traffic overtakes it; the ARQ machinery
            // keeps generating traffic, so nothing is held forever.
            st.held = Some(g);
            continue;
        }
        if dup {
            out.push(OutDatagram {
                addr: g.addr,
                buf: g.buf.clone(),
            });
        }
        out.push(g);
        if let Some(h) = st.held.take() {
            out.push(h);
        }
    }
    *grams = out;
}

/// A reliable-UDP CLF endpoint.
///
/// # Examples
///
/// Two endpoints on loopback:
///
/// ```
/// use bytes::Bytes;
/// use dstampede_clf::{ClfTransport, UdpConfig, UdpEndpoint};
/// use dstampede_core::AsId;
///
/// # fn main() -> Result<(), dstampede_clf::ClfError> {
/// let a = UdpEndpoint::bind(AsId(0), UdpConfig::default())?;
/// let b = UdpEndpoint::bind(AsId(1), UdpConfig::default())?;
/// a.add_peer(AsId(1), b.local_addr());
/// b.add_peer(AsId(0), a.local_addr());
/// a.send(AsId(1), Bytes::from_static(b"over udp"))?;
/// assert_eq!(&b.recv()?.1[..], b"over udp");
/// # a.shutdown(); b.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct UdpEndpoint {
    local: AsId,
    addr: SocketAddr,
    socket: UdpSocket,
    config: UdpConfig,
    shared: Arc<Mutex<Shared>>,
    inbox: Receiver<(AsId, Bytes)>,
    stats: Arc<StatCounters>,
    closed: Arc<AtomicBool>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
    loss: Arc<Mutex<LossState>>,
}

impl UdpEndpoint {
    /// Binds an endpoint on an ephemeral loopback port and starts its
    /// protocol pump thread.
    ///
    /// # Errors
    ///
    /// [`ClfError::Io`] if the socket cannot be bound.
    pub fn bind(local: AsId, config: UdpConfig) -> Result<Arc<Self>, ClfError> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        udp_sys::enlarge_buffers(&socket, KERNEL_BUF);
        // The read timeout bounds how late the pump can be for its
        // housekeeping (retransmission scan, deferred/aged-batch flush),
        // so a sub-10ms coalesce delay tightens it.
        let tick = if config.coalesce_delay.is_zero() {
            Duration::from_millis(10)
        } else {
            config
                .coalesce_delay
                .clamp(Duration::from_millis(1), Duration::from_millis(10))
        };
        socket.set_read_timeout(Some(tick))?;
        let addr = socket.local_addr()?;
        let shared = Arc::new(Mutex::new(Shared {
            peers: HashMap::new(),
            tx: HashMap::new(),
            rx: HashMap::new(),
            sack_disabled: HashSet::new(),
        }));
        let (deliver_tx, inbox) = unbounded();
        let stats = Arc::new(StatCounters::default());
        let closed = Arc::new(AtomicBool::new(false));
        let loss = Arc::new(Mutex::new(LossState::new(&config)));

        let pump_socket = socket.try_clone()?;
        let pump_shared = Arc::clone(&shared);
        let pump_stats = Arc::clone(&stats);
        let pump_closed = Arc::clone(&closed);
        let pump_loss = Arc::clone(&loss);
        let handle = std::thread::Builder::new()
            .name(format!("clf-udp-{}", local.0))
            .spawn(move || {
                let ctx = PumpCtx {
                    local,
                    socket: &pump_socket,
                    shared: &pump_shared,
                    deliver: &deliver_tx,
                    stats: &pump_stats,
                    config,
                    loss: &pump_loss,
                };
                pump_loop(&ctx, &pump_closed);
            })
            .expect("spawning the CLF pump thread failed");

        Ok(Arc::new(UdpEndpoint {
            local,
            addr,
            socket,
            config,
            shared,
            inbox,
            stats,
            closed,
            pump: Mutex::new(Some(handle)),
            loss,
        }))
    }

    /// The endpoint's bound socket address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers the socket address of a peer address space.
    pub fn add_peer(&self, peer: AsId, addr: SocketAddr) {
        self.shared.lock().peers.insert(peer, addr);
    }

    fn should_suppress(&self) -> bool {
        match self.config.loss {
            LossInjection::DropEveryNth(n) => {
                let mut st = self.loss.lock();
                st.counter += 1;
                n >= 2 && st.counter.is_multiple_of(u64::from(n))
            }
            _ => false,
        }
    }
}

/// Walks a segment list, carving off fragment payloads as refcounted
/// slices without copying any payload bytes.
struct SegCursor<'a> {
    segments: &'a [Bytes],
    idx: usize,
    off: usize,
}

impl<'a> SegCursor<'a> {
    fn new(segments: &'a [Bytes]) -> Self {
        SegCursor {
            segments,
            idx: 0,
            off: 0,
        }
    }

    fn take(&mut self, mut n: usize) -> Vec<Bytes> {
        let mut out = Vec::new();
        while n > 0 && self.idx < self.segments.len() {
            let seg = &self.segments[self.idx];
            let avail = seg.len() - self.off;
            if avail == 0 {
                self.idx += 1;
                self.off = 0;
                continue;
            }
            let take = avail.min(n);
            out.push(seg.slice(self.off..self.off + take));
            self.off += take;
            n -= take;
            if self.off == seg.len() {
                self.idx += 1;
                self.off = 0;
            }
        }
        out
    }
}

fn encode_ack(src: AsId, cum_ack: u64) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(HEADER_LEN);
    pkt.extend_from_slice(&MAGIC.to_be_bytes());
    pkt.push(KIND_ACK);
    pkt.push(0);
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&cum_ack.to_be_bytes());
    pkt
}

/// Builds a SACK datagram: the CLF header (its seq field mirrors
/// `ack_next` for cheap inspection) followed by the codec-encoded SACK
/// body — the same bytes either `dstampede-wire` codec round-trips, so
/// the protocol suite can cross-check the transport against the codecs.
fn encode_sack_datagram(src: AsId, sack: &SackInfo) -> Vec<u8> {
    let body = XdrCodec::new()
        .encode_sack(sack)
        .expect("receive-window bitmap is bounded")
        .to_bytes();
    let mut pkt = Vec::with_capacity(HEADER_LEN + body.len());
    pkt.extend_from_slice(&MAGIC.to_be_bytes());
    pkt.push(KIND_SACK);
    pkt.push(0);
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&sack.ack_next.to_be_bytes());
    pkt.extend_from_slice(&body);
    pkt
}

struct Parsed {
    kind: u8,
    flags: u8,
    src: AsId,
    seq: u64,
    payload: Bytes,
}

/// Parses the packet at `datagram[start..end]`. Payloads at or above
/// [`VIEW_THRESHOLD`] are returned as slice views into the datagram;
/// smaller ones are copied out so the receive buffer stays reclaimable.
fn parse(datagram: &Bytes, start: usize, end: usize) -> Option<Parsed> {
    let pkt = &datagram[start..end];
    if pkt.len() < HEADER_LEN {
        return None;
    }
    if u16::from_be_bytes([pkt[0], pkt[1]]) != MAGIC {
        return None;
    }
    let payload_len = end - start - HEADER_LEN;
    let payload = if payload_len >= VIEW_THRESHOLD {
        datagram.slice(start + HEADER_LEN..end)
    } else {
        Bytes::copy_from_slice(&pkt[HEADER_LEN..])
    };
    Some(Parsed {
        kind: pkt[2],
        flags: pkt[3],
        src: AsId(u16::from_be_bytes([pkt[4], pkt[5]])),
        seq: u64::from_be_bytes(pkt[6..14].try_into().expect("8 bytes")),
        payload,
    })
}

/// Packs `packets` for one peer into datagrams, as many per datagram as
/// fit. A datagram carrying a single packet uses the bare packet format;
/// several packets use the coalesced container.
fn assemble(
    addr: SocketAddr,
    packets: &[Packet],
    grams: &mut Vec<OutDatagram>,
    stats: &StatCounters,
) {
    let mut i = 0;
    while i < packets.len() {
        let mut j = i + 1;
        let mut size = 2 + 2 + packets[i].wire_len();
        if packets[i].wire_len() <= usize::from(u16::MAX) {
            while j < packets.len() {
                let w = packets[j].wire_len();
                if w > usize::from(u16::MAX) || size + 2 + w > MAX_DATAGRAM {
                    break;
                }
                size += 2 + w;
                j += 1;
            }
        }
        let mut buf = Vec::with_capacity(size);
        if j - i == 1 {
            packets[i].gather_into(&mut buf);
        } else {
            buf.extend_from_slice(&COALESCE_MAGIC.to_be_bytes());
            for pkt in &packets[i..j] {
                let len = u16::try_from(pkt.wire_len()).expect("coalesced packet fits u16");
                buf.extend_from_slice(&len.to_be_bytes());
                pkt.gather_into(&mut buf);
            }
        }
        grams.push(OutDatagram { addr, buf });
        stats.note_coalesced((j - i) as u64);
        i = j;
    }
}

/// Applies loss injection and hands the burst to the batched send path.
fn emit(
    socket: &UdpSocket,
    config: &UdpConfig,
    loss: &Mutex<LossState>,
    grams: &mut Vec<OutDatagram>,
    stats: &StatCounters,
) {
    apply_loss(config, loss, grams);
    if grams.is_empty() {
        return;
    }
    udp_sys::send_burst(socket, grams, &mut |n| stats.note_batch_tx(n as u64));
    grams.clear();
}

/// Pops every packet the byte window and pacer admit right now.
fn drain_transmittable(tx: &mut PeerTx, now: Instant, out: &mut Vec<Packet>) {
    while let Some(len) = tx.win.transmittable_len() {
        if !tx.pacer.grant(len, now) {
            break;
        }
        let t = tx
            .win
            .transmit_next(now)
            .expect("transmittable head exists");
        // Injected loss suppresses only the first transmission; the
        // recovery machinery retransmits the packet for real.
        if !t.suppress {
            out.push(t.pkt);
        }
    }
}

/// Everything the pump thread needs, bundled.
struct PumpCtx<'a> {
    local: AsId,
    socket: &'a UdpSocket,
    shared: &'a Mutex<Shared>,
    deliver: &'a Sender<(AsId, Bytes)>,
    stats: &'a StatCounters,
    config: UdpConfig,
    loss: &'a Mutex<LossState>,
}

fn pump_loop(ctx: &PumpCtx<'_>, closed: &AtomicBool) {
    let batch = ctx.config.batch.max(1);
    let mut bufs: Vec<Vec<u8>> = (0..batch).map(|_| vec![0u8; RECV_BUF]).collect();
    let mut results: Vec<(usize, SocketAddr)> = Vec::new();
    let mut grams: Vec<OutDatagram> = Vec::new();
    let mut dirty: Vec<AsId> = Vec::new();
    let mut last_scan = Instant::now();
    while !closed.load(Ordering::Acquire) {
        match udp_sys::recv_burst(ctx.socket, &mut bufs, &mut results) {
            Ok(()) => {
                if !results.is_empty() {
                    ctx.stats.note_batch_rx(results.len() as u64);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        dirty.clear();
        for k in 0..results.len() {
            let (len, from_addr) = results[k];
            if !(2..=RECV_BUF).contains(&len) {
                continue;
            }
            // Freeze the burst slot into `Bytes` so payload views can
            // borrow it; reclaim the allocation when nothing does.
            let mut buf = std::mem::take(&mut bufs[k]);
            buf.truncate(len);
            let datagram = Bytes::from(buf);
            process_datagram(ctx, &datagram, from_addr, &mut dirty);
            bufs[k] = match datagram.try_into_vec() {
                Ok(mut v) => {
                    v.resize(RECV_BUF, 0);
                    v
                }
                Err(_) => vec![0u8; RECV_BUF],
            };
        }
        results.clear();
        let now = Instant::now();
        let scan = now.duration_since(last_scan) >= MIN_RTO;
        if scan {
            last_scan = now;
        }
        collect_outgoing(
            ctx.local,
            &ctx.config,
            ctx.stats,
            ctx.shared,
            &dirty,
            scan,
            now,
            &mut grams,
        );
        emit(ctx.socket, &ctx.config, ctx.loss, &mut grams, ctx.stats);
    }
}

/// One pass over protocol state after a receive burst: acknowledge every
/// peer that sent DATA (once per burst, not once per packet), flush
/// fast retransmissions and deferred packets the window or pacer now
/// admits, and run the timeout scan when due.
#[allow(clippy::too_many_arguments)]
fn collect_outgoing(
    local: AsId,
    config: &UdpConfig,
    stats: &StatCounters,
    shared: &Mutex<Shared>,
    dirty: &[AsId],
    scan: bool,
    now: Instant,
    grams: &mut Vec<OutDatagram>,
) {
    let mut st = shared.lock();
    let st = &mut *st;
    for peer in dirty {
        let Some(&addr) = st.peers.get(peer) else {
            continue;
        };
        let Some(rx) = st.rx.get(peer) else {
            continue;
        };
        if config.sack && rx.sack_reply {
            grams.push(OutDatagram {
                addr,
                buf: encode_sack_datagram(local, &rx.win.sack()),
            });
            stats.note_sack_sent();
        } else {
            let next = rx.win.ack_next();
            if next > 0 {
                grams.push(OutDatagram {
                    addr,
                    buf: encode_ack(local, next - 1),
                });
            }
        }
    }
    let mut to_wire: Vec<Packet> = Vec::new();
    for (peer, tx) in st.tx.iter_mut() {
        let Some(&addr) = st.peers.get(peer) else {
            continue;
        };
        to_wire.clear();
        to_wire.append(&mut tx.pending_retx);
        if scan {
            for (_, pkt) in tx.win.scan_retransmits(now) {
                stats.note_retransmit();
                to_wire.push(pkt);
            }
        }
        if tx.win.deferred_len() > 0 {
            let ripe = config.coalesce_delay.is_zero()
                || tx.win.deferred_bytes() + 2 >= MAX_DATAGRAM
                || tx
                    .deferred_since
                    .is_none_or(|t| now.duration_since(t) >= config.coalesce_delay);
            if ripe {
                drain_transmittable(tx, now, &mut to_wire);
                if tx.win.deferred_len() == 0 {
                    tx.deferred_since = None;
                }
            }
        }
        assemble(addr, &to_wire, grams, stats);
    }
}

fn process_datagram(
    ctx: &PumpCtx<'_>,
    datagram: &Bytes,
    from_addr: SocketAddr,
    dirty: &mut Vec<AsId>,
) {
    if datagram.len() < 2 {
        return;
    }
    match u16::from_be_bytes([datagram[0], datagram[1]]) {
        MAGIC => {
            if let Some(p) = parse(datagram, 0, datagram.len()) {
                handle_packet(ctx, p, from_addr, dirty);
            }
        }
        COALESCE_MAGIC => {
            let mut off = 2;
            while off + 2 <= datagram.len() {
                let len = usize::from(u16::from_be_bytes([datagram[off], datagram[off + 1]]));
                off += 2;
                if off + len > datagram.len() {
                    break;
                }
                if let Some(p) = parse(datagram, off, off + len) {
                    handle_packet(ctx, p, from_addr, dirty);
                }
                off += len;
            }
        }
        _ => {}
    }
}

fn handle_packet(ctx: &PumpCtx<'_>, p: Parsed, from_addr: SocketAddr, dirty: &mut Vec<AsId>) {
    match p.kind {
        KIND_DATA => handle_data(ctx, p, from_addr, dirty),
        KIND_ACK => {
            let mut st = ctx.shared.lock();
            if let Some(tx) = st.tx.get_mut(&p.src) {
                let ev = tx.win.on_cum_ack(p.seq, Instant::now());
                for s in &ev.samples {
                    ctx.stats.note_rtt(*s);
                }
                if !ev.samples.is_empty() {
                    ctx.stats.note_srtt(tx.win.rtt.srtt().unwrap_or_default());
                }
                tx.retarget_pacer(&ctx.config);
            }
        }
        KIND_SACK => {
            let Ok(sack) = XdrCodec::new().decode_sack(&p.payload) else {
                return;
            };
            ctx.stats.note_sack_received();
            let sacked = sack.sacked_seqs();
            let mut st = ctx.shared.lock();
            if let Some(tx) = st.tx.get_mut(&p.src) {
                let ev = tx.win.on_sack(sack.ack_next, &sacked, Instant::now());
                for s in &ev.samples {
                    ctx.stats.note_rtt(*s);
                }
                if !ev.samples.is_empty() {
                    ctx.stats.note_srtt(tx.win.rtt.srtt().unwrap_or_default());
                }
                for (_, pkt) in ev.fast_retransmits {
                    ctx.stats.note_fast_retransmit();
                    ctx.stats.note_retransmit();
                    tx.pending_retx.push(pkt);
                }
                tx.retarget_pacer(&ctx.config);
            }
        }
        _ => {}
    }
}

fn handle_data(ctx: &PumpCtx<'_>, p: Parsed, from_addr: SocketAddr, dirty: &mut Vec<AsId>) {
    let completed;
    {
        let mut st = ctx.shared.lock();
        // Learn/refresh the peer's address from observed traffic.
        st.peers.insert(p.src, from_addr);
        let rx = st.rx.entry(p.src).or_default();
        rx.sack_reply = p.flags & FLAG_SACK != 0;
        let ev = rx.win.insert(p.seq, p.flags & FLAG_EOM != 0, p.payload);
        if !ev.accepted {
            ctx.stats.note_duplicate();
        }
        completed = ev.completed;
    }
    // Even a duplicate re-dirties the peer: its ack may have been lost.
    if !dirty.contains(&p.src) {
        dirty.push(p.src);
    }
    for msg in completed {
        ctx.stats.note_received(msg.len());
        let _ = ctx.deliver.send((p.src, msg));
    }
}

impl ClfTransport for UdpEndpoint {
    fn local(&self) -> AsId {
        self.local
    }

    fn send(&self, dst: AsId, msg: Bytes) -> Result<(), ClfError> {
        self.send_segments(dst, std::slice::from_ref(&msg))
    }

    fn send_segments(&self, dst: AsId, segments: &[Bytes]) -> Result<(), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        let total: usize = segments.iter().map(Bytes::len).sum();
        let mut grams: Vec<OutDatagram> = Vec::new();
        {
            let mut st = self.shared.lock();
            let st = &mut *st;
            let addr = *st.peers.get(&dst).ok_or(ClfError::UnknownPeer)?;
            let sack = self.config.sack && !st.sack_disabled.contains(&dst);
            let tx = st
                .tx
                .entry(dst)
                .or_insert_with(|| PeerTx::new(&self.config));
            let frag = self.config.frag_payload.max(1);
            let n_frags = total.div_ceil(frag).max(1);
            if !tx.win.can_accept(n_frags) {
                self.stats.note_backpressure();
                return Err(ClfError::Backpressure { peer: dst });
            }
            let now = Instant::now();
            let mut cursor = SegCursor::new(segments);
            for i in 0..n_frags {
                let take = if i + 1 == n_frags {
                    total - i * frag
                } else {
                    frag
                };
                let eom = i + 1 == n_frags;
                let pkt = Packet::data(self.local, tx.win.next_seq(), eom, sack, cursor.take(take));
                let wire_len = pkt.wire_len();
                tx.win.stage(pkt, wire_len, self.should_suppress());
            }
            if self.config.coalesce_delay.is_zero() || tx.win.deferred_bytes() + 2 >= MAX_DATAGRAM {
                let mut to_wire = Vec::new();
                drain_transmittable(tx, now, &mut to_wire);
                assemble(addr, &to_wire, &mut grams, &self.stats);
                if tx.win.deferred_len() == 0 {
                    tx.deferred_since = None;
                } else if tx.deferred_since.is_none() {
                    tx.deferred_since = Some(now);
                }
            } else if tx.deferred_since.is_none() {
                tx.deferred_since = Some(now);
            }
        }
        emit(
            &self.socket,
            &self.config,
            &self.loss,
            &mut grams,
            &self.stats,
        );
        self.stats.note_sent(total);
        Ok(())
    }

    fn recv(&self) -> Result<(AsId, Bytes), ClfError> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(ClfError::Closed);
            }
            match self.inbox.recv_timeout(Duration::from_millis(50)) {
                Ok(m) => return Ok(m),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(ClfError::Closed),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(AsId, Bytes), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        match self.inbox.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(ClfError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn try_recv(&self) -> Result<(AsId, Bytes), ClfError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ClfError::Closed);
        }
        match self.inbox.try_recv() {
            Ok(m) => Ok(m),
            Err(TryRecvError::Empty) => Err(ClfError::Empty),
            Err(TryRecvError::Disconnected) => Err(ClfError::Closed),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn bind_metrics(&self, registry: &MetricsRegistry) {
        self.stats.bind(registry, "udp");
    }

    /// One wheel-clocked pass over timed protocol state: the
    /// retransmission scan plus any deferred/aged coalesce batches the
    /// window or pacer now admits. Safe alongside the pump thread — the
    /// shared lock serializes protocol mutation, and concurrent sends on
    /// the same socket are fine.
    fn housekeep(&self) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        let mut grams: Vec<OutDatagram> = Vec::new();
        collect_outgoing(
            self.local,
            &self.config,
            &self.stats,
            &self.shared,
            &[],
            true,
            Instant::now(),
            &mut grams,
        );
        emit(
            &self.socket,
            &self.config,
            &self.loss,
            &mut grams,
            &self.stats,
        );
    }

    fn purge_peer(&self, peer: AsId) {
        let mut st = self.shared.lock();
        st.tx.remove(&peer);
        st.rx.remove(&peer);
        // The address mapping stays: a restarted peer starts a fresh
        // sequence space and is re-learned from observed traffic.
    }

    fn set_peer_sack(&self, peer: AsId, enabled: bool) {
        let mut st = self.shared.lock();
        if enabled {
            st.sack_disabled.remove(&peer);
        } else {
            st.sack_disabled.insert(peer);
        }
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("local", &self.local)
            .field("addr", &self.addr)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for UdpEndpoint {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

/// Builds a fully-connected set of loopback UDP endpoints for `n` address
/// spaces `AsId(0) .. AsId(n-1)`.
///
/// # Errors
///
/// [`ClfError::Io`] if any socket cannot be bound.
pub fn udp_mesh(n: u16, config: UdpConfig) -> Result<Vec<Arc<UdpEndpoint>>, ClfError> {
    let endpoints: Vec<Arc<UdpEndpoint>> = (0..n)
        .map(|i| UdpEndpoint::bind(AsId(i), config))
        .collect::<Result<_, _>>()?;
    for a in &endpoints {
        for b in &endpoints {
            if a.local() != b.local() {
                a.add_peer(b.local(), b.local_addr());
            }
        }
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(config: UdpConfig) -> (Arc<UdpEndpoint>, Arc<UdpEndpoint>) {
        let mut v = udp_mesh(2, config).unwrap();
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    }

    #[test]
    fn small_message_round_trip() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::from_static(b"ping")).unwrap();
        let (from, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(from, AsId(0));
        assert_eq!(&msg[..], b"ping");
    }

    #[test]
    fn empty_message_delivered() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::new()).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(msg.is_empty());
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let (a, b) = pair(UdpConfig::default());
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        a.send(AsId(1), Bytes::from(payload.clone())).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&msg[..], &payload[..]);
    }

    #[test]
    fn many_messages_stay_ordered() {
        let (a, b) = pair(UdpConfig::default());
        for i in 0..200u32 {
            a.send(AsId(1), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(u32::from_be_bytes(msg[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn survives_packet_loss() {
        let lossy = UdpConfig {
            loss: LossInjection::DropEveryNth(3),
            rto: Duration::from_millis(20),
            ..UdpConfig::default()
        };
        let (a, b) = pair(lossy);
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 13) as u8).collect();
        for i in 0..20u32 {
            let mut m = payload.clone();
            m[0] = i as u8;
            a.send(AsId(1), Bytes::from(m)).unwrap();
        }
        for i in 0..20u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(msg[0], i as u8, "message {i} out of order or corrupt");
            assert_eq!(msg.len(), payload.len());
        }
        assert!(
            a.stats().retransmits > 0,
            "loss injection should force retransmissions"
        );
    }

    #[test]
    fn sack_fast_path_runs_by_default() {
        let (a, b) = pair(UdpConfig::default());
        for i in 0..50u32 {
            a.send(AsId(1), Bytes::from(vec![0u8; 4096 + i as usize]))
                .unwrap();
        }
        for i in 0..50u32 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg.len(), 4096 + i as usize);
        }
        // Give the last SACK a moment to arrive back at the sender.
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.stats().sack_frames == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            a.stats().sack_frames > 0,
            "default config should exchange SACK frames"
        );
    }

    #[test]
    fn sack_downgrade_falls_back_to_legacy_acks() {
        let (a, b) = pair(UdpConfig::default());
        a.set_peer_sack(AsId(1), false);
        for i in 0..20u8 {
            a.send(AsId(1), Bytes::from(vec![i; 512])).unwrap();
        }
        for i in 0..20u8 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg[0], i);
        }
        assert_eq!(
            a.stats().sack_frames,
            0,
            "downgraded peer must be answered with legacy ACKs"
        );
    }

    #[test]
    fn unknown_peer_rejected() {
        let a = UdpEndpoint::bind(AsId(0), UdpConfig::default()).unwrap();
        assert_eq!(
            a.send(AsId(7), Bytes::new()).unwrap_err(),
            ClfError::UnknownPeer
        );
        a.shutdown();
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = pair(UdpConfig::default());
        a.send(AsId(1), Bytes::from_static(b"to-b")).unwrap();
        b.send(AsId(0), Bytes::from_static(b"to-a")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"to-b"
        );
        assert_eq!(
            &a.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"to-a"
        );
    }

    #[test]
    fn shutdown_closes_operations() {
        let (a, _b) = pair(UdpConfig::default());
        a.shutdown();
        assert_eq!(a.send(AsId(1), Bytes::new()).unwrap_err(), ClfError::Closed);
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Closed);
    }

    #[test]
    fn timeout_and_empty() {
        let (a, _b) = pair(UdpConfig::default());
        assert_eq!(a.try_recv().unwrap_err(), ClfError::Empty);
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            ClfError::Timeout
        );
    }

    #[test]
    fn dead_peer_triggers_backpressure_and_purge_recovers() {
        let a = UdpEndpoint::bind(
            AsId(0),
            UdpConfig {
                max_unacked: 4,
                rto: Duration::from_secs(30), // keep retransmits out of the picture
                ..UdpConfig::default()
            },
        )
        .unwrap();
        // Point at a socket nobody ever ACKs from.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.add_peer(AsId(1), sink.local_addr().unwrap());
        for _ in 0..4 {
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap_err(),
            ClfError::Backpressure { peer: AsId(1) }
        );
        // Declaring the peer dead purges the buffer and unblocks sends.
        a.purge_peer(AsId(1));
        a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        a.shutdown();
    }

    #[test]
    fn pacer_deferral_is_not_backpressure() {
        // A deliberately slow fixed pace: the sender accepts the whole
        // burst immediately (no Backpressure — the packet window has
        // room) and the pacer trickles it onto the wire.
        let (a, b) = pair(UdpConfig {
            pace: Some(1024 * 1024), // 1 MB/s, ~64 KiB initial burst
            ..UdpConfig::default()
        });
        let t0 = Instant::now();
        for i in 0..20u8 {
            a.send(AsId(1), Bytes::from(vec![i; 8192]))
                .unwrap_or_else(|e| panic!("pacer deferral must not error: {e:?}"));
        }
        let staged_in = t0.elapsed();
        for i in 0..20u8 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg[0], i);
        }
        let drained_in = t0.elapsed();
        assert_eq!(a.stats().backpressure, 0, "deferral is not backpressure");
        assert!(
            staged_in < Duration::from_millis(500),
            "sends must not block on the pacer ({staged_in:?})"
        );
        // 160 KiB at 1 MB/s minus the ~64 KiB burst ⇒ tens of ms paced.
        assert!(
            drained_in >= Duration::from_millis(50),
            "pacing should have throttled delivery ({drained_in:?})"
        );
    }

    #[test]
    fn genuinely_full_window_backpressures_while_pacer_defers() {
        // Tiny packet window + slow pace: the first sends defer on the
        // pacer without erroring, and only exhausting the packet window
        // itself produces Backpressure.
        let a = UdpEndpoint::bind(
            AsId(0),
            UdpConfig {
                max_unacked: 4,
                pace: Some(1),
                rto: Duration::from_secs(30),
                ..UdpConfig::default()
            },
        )
        .unwrap();
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.add_peer(AsId(1), sink.local_addr().unwrap());
        for _ in 0..4 {
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(
            a.send(AsId(1), Bytes::from_static(b"x")).unwrap_err(),
            ClfError::Backpressure { peer: AsId(1) }
        );
        assert_eq!(a.stats().backpressure, 1);
        a.shutdown();
    }

    #[test]
    fn seeded_loss_recovers_everything() {
        let (a, b) = pair(UdpConfig {
            loss: LossInjection::Seeded {
                seed: 7,
                drop_permille: 100,
                dup_permille: 50,
                reorder_permille: 100,
            },
            rto: Duration::from_millis(20),
            ..UdpConfig::default()
        });
        for i in 0..50u8 {
            a.send(AsId(1), Bytes::from(vec![i; 600])).unwrap();
        }
        for i in 0..50u8 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(msg[0], i, "message {i} lost or reordered");
            assert_eq!(msg.len(), 600);
        }
    }

    #[test]
    fn garbage_packets_ignored() {
        let (a, b) = pair(UdpConfig::default());
        // Throw junk at b's socket from a raw socket.
        let junk = UdpSocket::bind("127.0.0.1:0").unwrap();
        junk.send_to(b"not a clf packet", b.local_addr()).unwrap();
        junk.send_to(&[0u8; 3], b.local_addr()).unwrap();
        a.send(AsId(1), Bytes::from_static(b"real")).unwrap();
        assert_eq!(
            &b.recv_timeout(Duration::from_secs(2)).unwrap().1[..],
            b"real"
        );
    }

    #[test]
    fn send_segments_concatenates_across_fragments() {
        let (a, b) = pair(UdpConfig {
            frag_payload: 10,
            ..UdpConfig::default()
        });
        let segs = [
            Bytes::from_static(b"alpha-"),
            Bytes::new(),
            Bytes::from_static(b"beta-and-more-"),
            Bytes::from_static(b"gamma"),
        ];
        a.send_segments(AsId(1), &segs).unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(&msg[..], b"alpha-beta-and-more-gamma");
    }

    #[test]
    fn coalesce_delay_packs_frames_per_datagram() {
        let (a, b) = pair(UdpConfig {
            coalesce_delay: Duration::from_millis(5),
            ..UdpConfig::default()
        });
        let reg = MetricsRegistry::new("test");
        a.bind_metrics(&reg);
        for i in 0..5u8 {
            a.send(AsId(1), Bytes::from(vec![i])).unwrap();
        }
        for i in 0..5u8 {
            let (_, msg) = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg[0], i, "coalesced frames must stay ordered");
        }
        let snap = reg.snapshot();
        let co = snap
            .histogram("clf", "coalesced_frames")
            .expect("coalesced series");
        assert!(
            co.sum > co.count,
            "five back-to-back sends within the delay should share datagrams \
             (frames={}, datagrams={})",
            co.sum,
            co.count
        );
    }
}
