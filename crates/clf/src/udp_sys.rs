//! Batched datagram syscalls: `sendmmsg`/`recvmmsg` on Linux, a portable
//! per-datagram fallback elsewhere.
//!
//! The UDP backend's hot loop moves bursts of small datagrams; issuing
//! one `sendto`/`recvfrom` syscall per datagram dominates its CPU time.
//! Linux batches both directions in a single syscall. `std` exposes
//! neither call and the build deliberately carries no FFI crate, so the
//! tiny slice of the kernel ABI needed — `iovec`, `sockaddr_in`,
//! `msghdr`, `mmsghdr` for 64-bit Linux — is declared here by hand and
//! compiled in only on that target.
//!
//! `recvmmsg` is invoked with `MSG_WAITFORONE`: it honors the socket's
//! `SO_RCVTIMEO` while waiting for the first datagram (returning
//! `WouldBlock` on expiry, exactly like `recv_from`), then drains
//! whatever else is already queued without blocking again — so the
//! protocol pump keeps its tick cadence while paying one syscall per
//! burst instead of one per packet.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// One datagram staged for transmission.
#[derive(Debug)]
pub(crate) struct OutDatagram {
    pub addr: SocketAddr,
    pub buf: Vec<u8>,
}

/// Largest number of datagrams per `sendmmsg`/`recvmmsg` invocation.
const MAX_SYSCALL_BATCH: usize = 64;

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod linux {
    use std::io;
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
    use std::os::unix::io::AsRawFd;

    use super::{OutDatagram, MAX_SYSCALL_BATCH};

    const AF_INET: u16 = 2;
    const MSG_WAITFORONE: i32 = 0x10000;
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        family: u16,
        /// Network byte order.
        port: u16,
        /// Network byte order (first octet in the lowest-addressed byte).
        addr: [u8; 4],
        zero: [u8; 8],
    }

    /// 64-bit Linux `struct msghdr`; `repr(C)` inserts the same padding
    /// after `namelen` and `flags` the kernel ABI has (56 bytes total).
    #[repr(C)]
    struct MsgHdr {
        name: *mut SockAddrIn,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    extern "C" {
        fn sendmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, val: *const u8, len: u32) -> i32;
    }

    fn sockaddr_of(addr: &SocketAddrV4) -> SockAddrIn {
        SockAddrIn {
            family: AF_INET,
            port: addr.port().to_be(),
            addr: addr.ip().octets(),
            zero: [0; 8],
        }
    }

    pub(super) fn send_burst(
        socket: &UdpSocket,
        grams: &[OutDatagram],
        note_batch: &mut dyn FnMut(usize),
    ) {
        if grams.len() < 2 || !grams.iter().all(|g| matches!(g.addr, SocketAddr::V4(_))) {
            super::send_burst_fallback(socket, grams, note_batch);
            return;
        }
        let fd = socket.as_raw_fd();
        let mut i = 0;
        while i < grams.len() {
            let chunk = &grams[i..(i + MAX_SYSCALL_BATCH).min(grams.len())];
            let mut addrs: Vec<SockAddrIn> = chunk
                .iter()
                .map(|g| match g.addr {
                    SocketAddr::V4(v4) => sockaddr_of(&v4),
                    SocketAddr::V6(_) => unreachable!("checked above"),
                })
                .collect();
            let mut iovs: Vec<IoVec> = chunk
                .iter()
                .map(|g| IoVec {
                    base: g.buf.as_ptr().cast_mut(),
                    len: g.buf.len(),
                })
                .collect();
            let mut hdrs: Vec<MMsgHdr> = (0..chunk.len())
                .map(|k| MMsgHdr {
                    hdr: MsgHdr {
                        name: &mut addrs[k],
                        namelen: std::mem::size_of::<SockAddrIn>() as u32,
                        iov: &mut iovs[k],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            let sent = unsafe { sendmmsg(fd, hdrs.as_mut_ptr(), chunk.len() as u32, 0) };
            if sent <= 0 {
                // Per-chunk degradation: emit these one by one and move on.
                super::send_burst_fallback(socket, chunk, note_batch);
                i += chunk.len();
            } else {
                note_batch(sent as usize);
                i += sent as usize;
            }
        }
    }

    pub(super) fn recv_burst(
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        out: &mut Vec<(usize, SocketAddr)>,
    ) -> io::Result<()> {
        if bufs.len() < 2 {
            return super::recv_burst_fallback(socket, bufs, out);
        }
        let fd = socket.as_raw_fd();
        let n = bufs.len().min(MAX_SYSCALL_BATCH);
        let mut addrs = vec![
            SockAddrIn {
                family: 0,
                port: 0,
                addr: [0; 4],
                zero: [0; 8],
            };
            n
        ];
        let mut iovs: Vec<IoVec> = bufs[..n]
            .iter_mut()
            .map(|b| IoVec {
                base: b.as_mut_ptr(),
                len: b.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..n)
            .map(|k| MMsgHdr {
                hdr: MsgHdr {
                    name: &mut addrs[k],
                    namelen: std::mem::size_of::<SockAddrIn>() as u32,
                    iov: &mut iovs[k],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        let got = unsafe {
            recvmmsg(
                fd,
                hdrs.as_mut_ptr(),
                n as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(io::Error::last_os_error());
        }
        for k in 0..got as usize {
            let from = if hdrs[k].hdr.namelen as usize >= std::mem::size_of::<SockAddrIn>()
                && addrs[k].family == AF_INET
            {
                SocketAddr::V4(SocketAddrV4::new(
                    Ipv4Addr::from(addrs[k].addr),
                    u16::from_be(addrs[k].port),
                ))
            } else {
                // Unrecognized source family: surface a zero-length
                // datagram so the protocol layer discards it.
                out.push((
                    0,
                    SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0)),
                ));
                continue;
            };
            out.push((hdrs[k].len as usize, from));
        }
        Ok(())
    }

    pub(super) fn enlarge_buffers(socket: &UdpSocket, bytes: usize) {
        let fd = socket.as_raw_fd();
        let val = i32::try_from(bytes).unwrap_or(i32::MAX);
        let ptr = (&val as *const i32).cast::<u8>();
        // Best effort: the kernel clamps to rmem_max/wmem_max silently,
        // and the protocol's in-flight budget is sized to survive the
        // default clamp anyway.
        unsafe {
            let _ = setsockopt(fd, SOL_SOCKET, SO_RCVBUF, ptr, 4);
            let _ = setsockopt(fd, SOL_SOCKET, SO_SNDBUF, ptr, 4);
        }
    }
}

/// Emits every datagram with one `send_to` syscall each.
fn send_burst_fallback(
    socket: &UdpSocket,
    grams: &[OutDatagram],
    note_batch: &mut dyn FnMut(usize),
) {
    for g in grams {
        let _ = socket.send_to(&g.buf, g.addr);
        note_batch(1);
    }
}

/// Receives at most one datagram, honoring the socket read timeout.
fn recv_burst_fallback(
    socket: &UdpSocket,
    bufs: &mut [Vec<u8>],
    out: &mut Vec<(usize, SocketAddr)>,
) -> io::Result<()> {
    let Some(buf) = bufs.first_mut() else {
        return Ok(());
    };
    let (n, from) = socket.recv_from(buf)?;
    out.push((n, from));
    Ok(())
}

/// Transmits a burst of datagrams, batching syscalls where the platform
/// allows. `note_batch` is invoked once per syscall with the number of
/// datagrams it carried (the transmit packing factor).
pub(crate) fn send_burst(
    socket: &UdpSocket,
    grams: &[OutDatagram],
    note_batch: &mut dyn FnMut(usize),
) {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        linux::send_burst(socket, grams, note_batch);
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        send_burst_fallback(socket, grams, note_batch);
    }
}

/// Receives a burst of datagrams into `bufs`, blocking only for the
/// first (subject to the socket's read timeout). On success, `out[k]` is
/// the length and source of the datagram in `bufs[k]`. Timeout surfaces
/// as the same `WouldBlock`/`TimedOut` errors `recv_from` produces.
pub(crate) fn recv_burst(
    socket: &UdpSocket,
    bufs: &mut [Vec<u8>],
    out: &mut Vec<(usize, SocketAddr)>,
) -> io::Result<()> {
    out.clear();
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        linux::recv_burst(socket, bufs, out)
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        recv_burst_fallback(socket, bufs, out)
    }
}

/// Best-effort enlargement of the socket's kernel send/receive buffers.
pub(crate) fn enlarge_buffers(socket: &UdpSocket, bytes: usize) {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        linux::enlarge_buffers(socket, bytes);
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        let _ = (socket, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_round_trip_over_loopback() {
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let dst = rx.local_addr().unwrap();
        let grams: Vec<OutDatagram> = (0..5u8)
            .map(|i| OutDatagram {
                addr: dst,
                buf: vec![i; 64 + usize::from(i)],
            })
            .collect();
        let mut batches = Vec::new();
        send_burst(&tx, &grams, &mut |n| batches.push(n));
        assert_eq!(batches.iter().sum::<usize>(), 5, "all datagrams sent");

        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 256]).collect();
        let mut got: Vec<(usize, SocketAddr)> = Vec::new();
        let mut seen = 0;
        let from = tx.local_addr().unwrap();
        while seen < 5 {
            recv_burst(&rx, &mut bufs, &mut got).unwrap();
            assert!(!got.is_empty(), "timed out before all datagrams arrived");
            for (k, &(len, addr)) in got.iter().enumerate() {
                assert_eq!(addr, from);
                assert_eq!(len, 64 + bufs[k][0] as usize);
                assert!(bufs[k][..len].iter().all(|&b| b == bufs[k][0]));
                seen += 1;
            }
        }
    }

    #[test]
    fn recv_burst_times_out_like_recv_from() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 64]).collect();
        let mut got = Vec::new();
        let err = recv_burst(&rx, &mut bufs, &mut got).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert!(got.is_empty());
    }

    #[test]
    fn enlarge_buffers_is_harmless() {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        enlarge_buffers(&s, 1 << 20);
        // Socket still works afterwards.
        s.send_to(b"x", s.local_addr().unwrap()).unwrap();
    }
}
