//! Sliding-window ARQ state machines for the CLF fast path.
//!
//! The protocol core of the UDP backend lives here, factored out of the
//! socket layer: send-side window bookkeeping ([`SendWindow`]),
//! receive-side reordering and reassembly ([`RecvWindow`]), and adaptive
//! retransmission timing ([`RttEstimator`]). Every method takes an
//! explicit `now: Instant` instead of reading the wall clock, so the
//! model-based protocol suite (`tests/window_model.rs`) drives the exact
//! production state machines against a simulated lossy channel with a
//! virtual clock — no sockets, no sleeping, fully deterministic.
//!
//! The send window distinguishes three packet states:
//!
//! * **deferred** — staged by a send but not yet transmitted, because the
//!   in-flight byte budget ([`SendWindow::max_bytes`]) or the sender's
//!   pacer said "not yet". Deferred packets count against the
//!   backpressure window but consume no network.
//! * **unacked** — transmitted and awaiting acknowledgment; eligible for
//!   timeout retransmission and, under SACK feedback, fast retransmission
//!   after [`DUP_SACK_THRESHOLD`] duplicate reports of the same hole.
//! * **acked** — cumulatively or selectively acknowledged and dropped.
//!   A selectively acknowledged packet is forgotten immediately (the
//!   receiver never renegs), so retransmissions only ever cover holes.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use bytes::Bytes;
use dstampede_wire::{SackInfo, MAX_SACK_BITMAP};

/// Floor on the adaptive retransmission timeout.
pub const MIN_RTO: Duration = Duration::from_millis(5);
/// Ceiling on the adaptive retransmission timeout.
pub const MAX_RTO: Duration = Duration::from_secs(60);

/// How many times a hole must be reported by successive SACKs before the
/// sender fast-retransmits it without waiting for the timeout. Two
/// reports distinguish a real loss from plain reordering, mirroring
/// TCP's duplicate-ACK threshold scaled to per-burst SACK cadence.
pub const DUP_SACK_THRESHOLD: u32 = 2;

/// Jacobson/Karels retransmission-timeout estimation (RFC 6298 shape).
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    /// Configured starting timeout, used until the first clean sample
    /// and as the backoff-reset floor before one exists.
    initial: Duration,
}

impl RttEstimator {
    /// An estimator seeded with a configured initial timeout (clamped to
    /// [`MIN_RTO`]..[`MAX_RTO`]).
    #[must_use]
    pub fn new(initial: Duration) -> RttEstimator {
        let initial = initial.clamp(MIN_RTO, MAX_RTO);
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: initial,
            initial,
        }
    }

    /// Folds one measured round-trip into the estimate. Callers must
    /// respect Karn's rule: never sample a retransmitted packet.
    pub fn sample(&mut self, s: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(s);
                self.rttvar = s / 2;
            }
            Some(srtt) => {
                let err = srtt.abs_diff(s);
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + s) / 8);
            }
        }
        self.rto = (self.srtt.unwrap_or_default() + 4 * self.rttvar).clamp(MIN_RTO, MAX_RTO);
    }

    /// Exponential backoff after a retransmission (the estimate itself
    /// is left alone; the next clean sample re-derives the timeout).
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(MAX_RTO);
    }

    /// Sheds accumulated backoff after acked forward progress that
    /// produced no clean sample (every acked packet had been
    /// retransmitted, so Karn's rule discards them). Without this a
    /// fully retransmitted window can never re-arm the timer: no
    /// packet ever samples, the backoff compounds toward [`MAX_RTO`],
    /// and a sustained burst stalls. The network demonstrably moved,
    /// so fall back to the current estimate.
    pub fn reset_backoff(&mut self) {
        self.rto = match self.srtt {
            Some(srtt) => (srtt + 4 * self.rttvar).clamp(MIN_RTO, MAX_RTO),
            None => self.initial,
        };
    }

    /// The current retransmission timeout.
    #[must_use]
    pub fn rto(&self) -> Duration {
        self.rto
    }

    /// The smoothed round-trip estimate, once at least one clean sample
    /// has been folded in.
    #[must_use]
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }
}

/// One transmitted-and-unacknowledged packet.
#[derive(Debug)]
struct Slot<P> {
    pkt: P,
    wire_len: usize,
    sent_at: Instant,
    /// Karn's rule: a retransmitted packet's ACK is ambiguous and must
    /// not feed the RTT estimator.
    retransmitted: bool,
    /// How many successive SACKs have reported this packet as a hole.
    dup_holes: u32,
}

/// One staged-but-untransmitted packet.
#[derive(Debug)]
struct Staged<P> {
    seq: u64,
    pkt: P,
    wire_len: usize,
    suppress: bool,
}

/// A packet the window released for (first) transmission.
#[derive(Debug)]
pub struct Transmit<P> {
    /// Its sequence number.
    pub seq: u64,
    /// The packet itself.
    pub pkt: P,
    /// When set, the caller must account the packet as in flight but not
    /// actually emit it — the hook test loss injection uses to suppress
    /// a first transmission and force the recovery machinery to act.
    pub suppress: bool,
}

/// What integrating one acknowledgment did to the window.
#[derive(Debug)]
pub struct AckEvent<P> {
    /// Packets newly removed from the window.
    pub newly_acked: usize,
    /// Clean round-trip samples folded into the estimator (Karn's rule
    /// already applied), for telemetry.
    pub samples: Vec<Duration>,
    /// Hole packets to fast-retransmit right now: each was reported
    /// missing by [`DUP_SACK_THRESHOLD`] successive SACKs while packets
    /// sent after it arrived.
    pub fast_retransmits: Vec<(u64, P)>,
}

/// Send half of the sliding-window ARQ for one peer.
///
/// Generic over the packet representation `P` (the UDP backend stores
/// pre-built header+payload gather lists; tests store plain bytes); the
/// window itself only tracks sequence numbers, wire lengths, and timing.
#[derive(Debug)]
pub struct SendWindow<P> {
    next_seq: u64,
    unacked: BTreeMap<u64, Slot<P>>,
    deferred: VecDeque<Staged<P>>,
    deferred_bytes: usize,
    in_flight_bytes: usize,
    max_packets: usize,
    max_bytes: usize,
    /// The peer's adaptive retransmission timer.
    pub rtt: RttEstimator,
}

impl<P> SendWindow<P> {
    /// A window admitting at most `max_packets` staged-or-unacked packets
    /// (the backpressure bound) and `max_bytes` transmitted-and-unacked
    /// bytes (the in-flight budget), with the given initial timeout.
    #[must_use]
    pub fn new(max_packets: usize, max_bytes: usize, initial_rto: Duration) -> SendWindow<P> {
        SendWindow {
            next_seq: 0,
            unacked: BTreeMap::new(),
            deferred: VecDeque::new(),
            deferred_bytes: 0,
            in_flight_bytes: 0,
            max_packets: max_packets.max(1),
            max_bytes: max_bytes.max(1),
            rtt: RttEstimator::new(initial_rto),
        }
    }

    /// The sequence number the next staged packet will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Packets counted against the backpressure bound: staged + unacked.
    #[must_use]
    pub fn window_used(&self) -> usize {
        self.unacked.len() + self.deferred.len()
    }

    /// Whether `n` more packets fit under the backpressure bound. This —
    /// and only this — failing is genuine backpressure: the peer holds
    /// a full window's worth of our packets hostage. A pacer or byte
    /// budget deferring transmission is not.
    #[must_use]
    pub fn can_accept(&self, n: usize) -> bool {
        self.window_used() + n <= self.max_packets
    }

    /// Transmitted-and-unacknowledged bytes.
    #[must_use]
    pub fn in_flight_bytes(&self) -> usize {
        self.in_flight_bytes
    }

    /// Staged packets awaiting transmission.
    #[must_use]
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Wire bytes of the staged packets awaiting transmission.
    #[must_use]
    pub fn deferred_bytes(&self) -> usize {
        self.deferred_bytes
    }

    /// Transmitted packets awaiting acknowledgment.
    #[must_use]
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Whether the window holds nothing at all — every staged packet was
    /// transmitted and every transmitted packet acknowledged.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.unacked.is_empty() && self.deferred.is_empty()
    }

    /// Stages a packet of `wire_len` bytes, assigning and returning its
    /// sequence number. The packet is not yet in flight; it waits for
    /// [`SendWindow::transmit_next`]. Callers enforce the backpressure
    /// bound with [`SendWindow::can_accept`] first.
    pub fn stage(&mut self, pkt: P, wire_len: usize, suppress: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.deferred_bytes += wire_len;
        self.deferred.push_back(Staged {
            seq,
            pkt,
            wire_len,
            suppress,
        });
        seq
    }

    /// The wire length of the next staged packet the in-flight byte
    /// budget admits, or `None` when nothing is transmittable. A packet
    /// larger than the whole budget is admitted once the window drains
    /// empty, so an oversized datagram can never wedge the sender.
    #[must_use]
    pub fn transmittable_len(&self) -> Option<usize> {
        let head = self.deferred.front()?;
        if self.in_flight_bytes + head.wire_len <= self.max_bytes || self.unacked.is_empty() {
            Some(head.wire_len)
        } else {
            None
        }
    }

    /// Moves the next transmittable packet into the unacked set and
    /// returns it for emission. `None` under the same conditions as
    /// [`SendWindow::transmittable_len`].
    pub fn transmit_next(&mut self, now: Instant) -> Option<Transmit<P>>
    where
        P: Clone,
    {
        self.transmittable_len()?;
        let staged = self.deferred.pop_front()?;
        self.deferred_bytes -= staged.wire_len;
        self.in_flight_bytes += staged.wire_len;
        self.unacked.insert(
            staged.seq,
            Slot {
                pkt: staged.pkt.clone(),
                wire_len: staged.wire_len,
                sent_at: now,
                retransmitted: false,
                dup_holes: 0,
            },
        );
        Some(Transmit {
            seq: staged.seq,
            pkt: staged.pkt,
            suppress: staged.suppress,
        })
    }

    /// Removes one acked slot, harvesting its RTT sample if clean.
    fn ack_one(&mut self, seq: u64, now: Instant, samples: &mut Vec<Duration>) -> bool {
        match self.unacked.remove(&seq) {
            Some(slot) => {
                self.in_flight_bytes -= slot.wire_len;
                if !slot.retransmitted {
                    samples.push(now.duration_since(slot.sent_at));
                }
                true
            }
            None => false,
        }
    }

    /// Folds harvested samples into the estimator, or sheds backoff when
    /// the window advanced on retransmitted packets only.
    fn settle_rtt(&mut self, newly_acked: usize, samples: &[Duration]) {
        for s in samples {
            self.rtt.sample(*s);
        }
        if newly_acked > 0 && samples.is_empty() {
            self.rtt.reset_backoff();
        }
    }

    /// Integrates a legacy cumulative acknowledgment: every packet with
    /// sequence number at most `cum_ack` has been received.
    pub fn on_cum_ack(&mut self, cum_ack: u64, now: Instant) -> AckEvent<P> {
        let acked: Vec<u64> = self.unacked.range(..=cum_ack).map(|(&s, _)| s).collect();
        let mut samples = Vec::new();
        let mut newly_acked = 0;
        for seq in acked {
            if self.ack_one(seq, now, &mut samples) {
                newly_acked += 1;
            }
        }
        self.settle_rtt(newly_acked, &samples);
        AckEvent {
            newly_acked,
            samples,
            fast_retransmits: Vec::new(),
        }
    }

    /// Integrates a selective acknowledgment: everything below `ack_next`
    /// has been received in order, plus the listed out-of-order `sacked`
    /// sequence numbers. Selectively acknowledged packets are dropped
    /// immediately (the receiver never renegs). Unacked packets below the
    /// highest sacked sequence are holes; one reported by
    /// [`DUP_SACK_THRESHOLD`] successive SACKs is returned for fast
    /// retransmission (and marked retransmitted under Karn's rule).
    pub fn on_sack(&mut self, ack_next: u64, sacked: &[u64], now: Instant) -> AckEvent<P>
    where
        P: Clone,
    {
        let cum: Vec<u64> = self.unacked.range(..ack_next).map(|(&s, _)| s).collect();
        let mut samples = Vec::new();
        let mut newly_acked = 0;
        for seq in cum {
            if self.ack_one(seq, now, &mut samples) {
                newly_acked += 1;
            }
        }
        for &seq in sacked {
            if self.ack_one(seq, now, &mut samples) {
                newly_acked += 1;
            }
        }
        self.settle_rtt(newly_acked, &samples);
        let mut fast_retransmits = Vec::new();
        if let Some(&horizon) = sacked.iter().max() {
            for (&seq, slot) in self.unacked.range_mut(..horizon) {
                slot.dup_holes += 1;
                if slot.dup_holes >= DUP_SACK_THRESHOLD {
                    slot.dup_holes = 0;
                    slot.retransmitted = true;
                    slot.sent_at = now;
                    fast_retransmits.push((seq, slot.pkt.clone()));
                }
            }
        }
        AckEvent {
            newly_acked,
            samples,
            fast_retransmits,
        }
    }

    /// Returns every unacked packet whose retransmission timeout has
    /// expired, marking each retransmitted and re-arming its timer. Backs
    /// the timeout off once per scan that retransmitted anything.
    pub fn scan_retransmits(&mut self, now: Instant) -> Vec<(u64, P)>
    where
        P: Clone,
    {
        let rto = self.rtt.rto();
        let mut out = Vec::new();
        for (&seq, slot) in self.unacked.iter_mut() {
            if now.duration_since(slot.sent_at) >= rto {
                slot.sent_at = now;
                slot.retransmitted = true;
                slot.dup_holes = 0;
                out.push((seq, slot.pkt.clone()));
            }
        }
        if !out.is_empty() {
            self.rtt.backoff();
        }
        out
    }
}

/// What inserting one packet did to the receive window.
#[derive(Debug)]
pub struct RecvEvent {
    /// Whether the packet was new (false: duplicate or stale, dropped).
    pub accepted: bool,
    /// Messages completed by this packet, in order.
    pub completed: Vec<Bytes>,
}

/// Receive half of the sliding-window ARQ for one peer: reorders
/// out-of-order packets, drops duplicates, reassembles fragments into
/// messages, and reports its state as cumulative-ack + SACK bitmap.
#[derive(Debug, Default)]
pub struct RecvWindow {
    expected: u64,
    /// Out-of-order packets: seq → (end-of-message, payload view).
    ooo: BTreeMap<u64, (bool, Bytes)>,
    assembling: Vec<u8>,
}

impl RecvWindow {
    /// An empty window expecting sequence number 0.
    #[must_use]
    pub fn new() -> RecvWindow {
        RecvWindow::default()
    }

    /// The next sequence number expected in order: everything below it
    /// has been received and will never be asked for again. Monotone
    /// non-decreasing — the cumulative ack never retreats.
    #[must_use]
    pub fn ack_next(&self) -> u64 {
        self.expected
    }

    /// Whether packets are parked beyond a gap.
    #[must_use]
    pub fn has_holes(&self) -> bool {
        !self.ooo.is_empty()
    }

    /// Accepts one packet, returning whether it was new and any messages
    /// it completed (in order).
    pub fn insert(&mut self, seq: u64, eom: bool, payload: Bytes) -> RecvEvent {
        if seq < self.expected || self.ooo.contains_key(&seq) {
            return RecvEvent {
                accepted: false,
                completed: Vec::new(),
            };
        }
        self.ooo.insert(seq, (eom, payload));
        let mut completed = Vec::new();
        while let Some((eom, payload)) = self.ooo.remove(&self.expected) {
            if eom && self.assembling.is_empty() {
                // Single-fragment message: the payload view is the
                // message — deliver without reassembly.
                completed.push(payload);
            } else {
                self.assembling.extend_from_slice(&payload);
                if eom {
                    completed.push(Bytes::from(std::mem::take(&mut self.assembling)));
                }
            }
            self.expected += 1;
        }
        RecvEvent {
            accepted: true,
            completed,
        }
    }

    /// The window's state as a selective acknowledgment: `ack_next` plus
    /// a bitmap where bit `i` (LSB-first within each byte) reports
    /// sequence `ack_next + 1 + i` as received out of order. Sequence
    /// `ack_next` itself is by definition missing, so it has no bit.
    /// Out-of-order packets beyond the bitmap bound simply go unreported
    /// and are recovered by timeout.
    #[must_use]
    pub fn sack(&self) -> SackInfo {
        let mut bitmap = Vec::new();
        for (&seq, _) in self.ooo.range(self.expected + 1..) {
            let bit = (seq - self.expected - 1) as usize;
            let byte = bit / 8;
            if byte >= MAX_SACK_BITMAP {
                break;
            }
            if bitmap.len() <= byte {
                bitmap.resize(byte + 1, 0u8);
            }
            bitmap[byte] |= 1 << (bit % 8);
        }
        SackInfo {
            ack_next: self.expected,
            bitmap: Bytes::from(bitmap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_estimator_follows_samples_and_backs_off() {
        let mut e = RttEstimator::new(Duration::from_millis(40));
        assert_eq!(e.rto(), Duration::from_millis(40));
        // First sample: srtt = s, rttvar = s/2, rto = s + 4·(s/2) = 3s.
        e.sample(Duration::from_millis(10));
        assert_eq!(e.srtt(), Some(Duration::from_millis(10)));
        assert_eq!(e.rto(), Duration::from_millis(30));
        // Steady samples shrink the variance term toward srtt.
        for _ in 0..50 {
            e.sample(Duration::from_millis(10));
        }
        assert!(e.rto() < Duration::from_millis(15), "rto {:?}", e.rto());
        assert!(e.rto() >= MIN_RTO);
        // Backoff doubles up to the ceiling and a clean sample recovers.
        let before = e.rto();
        e.backoff();
        assert_eq!(e.rto(), before * 2);
        for _ in 0..40 {
            e.backoff();
        }
        assert_eq!(e.rto(), MAX_RTO);
        e.sample(Duration::from_millis(10));
        assert!(e.rto() < Duration::from_millis(20));
    }

    #[test]
    fn rtt_estimator_sheds_backoff_on_ack_progress() {
        // Before any clean sample, reset falls back to the initial RTO.
        let mut e = RttEstimator::new(Duration::from_millis(40));
        for _ in 0..20 {
            e.backoff();
        }
        e.reset_backoff();
        assert_eq!(e.rto(), Duration::from_millis(40));
        // After samples, reset re-derives from the estimate instead of
        // compounding — a fully retransmitted window must not wedge the
        // timer at MAX_RTO (Karn's rule never samples those acks).
        e.sample(Duration::from_millis(10));
        for _ in 0..40 {
            e.backoff();
        }
        assert_eq!(e.rto(), MAX_RTO);
        e.reset_backoff();
        assert_eq!(e.rto(), Duration::from_millis(30));
    }

    #[test]
    fn rtt_estimator_clamps_to_floor() {
        let mut e = RttEstimator::new(Duration::from_nanos(1));
        assert_eq!(e.rto(), MIN_RTO);
        e.sample(Duration::from_micros(3));
        assert_eq!(e.rto(), MIN_RTO);
    }

    #[test]
    fn byte_budget_defers_and_drains() {
        let t0 = Instant::now();
        let mut w: SendWindow<u8> = SendWindow::new(100, 1000, Duration::from_millis(40));
        for i in 0..5u8 {
            w.stage(i, 400, false);
        }
        assert_eq!(w.deferred_len(), 5);
        // Budget admits two 400-byte packets, then defers.
        assert!(w.transmit_next(t0).is_some());
        assert!(w.transmit_next(t0).is_some());
        assert_eq!(w.transmittable_len(), None);
        assert_eq!(w.in_flight_bytes(), 800);
        assert_eq!(w.window_used(), 5);
        // Acking one packet reopens the budget for exactly one more.
        let ev = w.on_cum_ack(0, t0 + Duration::from_millis(1));
        assert_eq!(ev.newly_acked, 1);
        assert_eq!(ev.samples.len(), 1);
        assert!(w.transmit_next(t0 + Duration::from_millis(1)).is_some());
        assert_eq!(w.transmittable_len(), None);
    }

    #[test]
    fn oversized_packet_admitted_when_window_empty() {
        let t0 = Instant::now();
        let mut w: SendWindow<u8> = SendWindow::new(100, 100, Duration::from_millis(40));
        w.stage(0, 5000, false);
        // Bigger than the whole budget, but the window is empty: admit.
        assert_eq!(w.transmittable_len(), Some(5000));
        assert!(w.transmit_next(t0).is_some());
        // A second oversized packet must wait for the first to clear.
        w.stage(1, 5000, false);
        assert_eq!(w.transmittable_len(), None);
        w.on_cum_ack(0, t0 + Duration::from_millis(1));
        assert_eq!(w.transmittable_len(), Some(5000));
    }

    #[test]
    fn sack_removes_holes_from_rto_and_fast_retransmits() {
        let t0 = Instant::now();
        let mut w: SendWindow<u8> = SendWindow::new(100, 1 << 20, Duration::from_millis(40));
        for i in 0..5u8 {
            w.stage(i, 100, false);
            w.transmit_next(t0).unwrap();
        }
        // Seq 0 arrived, 1 was lost, 2..4 arrived out of order:
        // ack_next=1, sacked=[2,3,4].
        let ev = w.on_sack(1, &[2, 3, 4], t0 + Duration::from_millis(1));
        assert_eq!(ev.newly_acked, 4);
        assert_eq!(w.unacked_len(), 1, "only the hole remains");
        assert!(ev.fast_retransmits.is_empty(), "first report is not enough");
        // Second SACK still reporting the hole triggers fast retransmit.
        let ev = w.on_sack(1, &[2, 3, 4], t0 + Duration::from_millis(2));
        assert_eq!(ev.newly_acked, 0);
        assert_eq!(ev.fast_retransmits.len(), 1);
        assert_eq!(ev.fast_retransmits[0].0, 1);
        // Sacked packets were dropped for good: an RTO scan far in the
        // future retransmits only the hole.
        let retx = w.scan_retransmits(t0 + Duration::from_secs(120));
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].0, 1);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let t0 = Instant::now();
        let mut w: SendWindow<u8> = SendWindow::new(100, 1 << 20, Duration::from_millis(10));
        w.stage(0, 100, false);
        w.transmit_next(t0).unwrap();
        let retx = w.scan_retransmits(t0 + Duration::from_millis(20));
        assert_eq!(retx.len(), 1);
        let ev = w.on_cum_ack(0, t0 + Duration::from_millis(25));
        assert_eq!(ev.newly_acked, 1);
        assert!(
            ev.samples.is_empty(),
            "retransmitted packet must not sample"
        );
    }

    #[test]
    fn recv_window_reorders_and_reassembles() {
        let mut r = RecvWindow::new();
        // Fragments of one message arrive 1, 0, 2 (eom on 2).
        let e = r.insert(1, false, Bytes::from_static(b"bb"));
        assert!(e.accepted);
        assert!(e.completed.is_empty());
        assert_eq!(r.ack_next(), 0);
        assert!(r.has_holes());
        let e = r.insert(0, false, Bytes::from_static(b"aa"));
        assert!(e.completed.is_empty());
        assert_eq!(r.ack_next(), 2);
        let e = r.insert(2, true, Bytes::from_static(b"cc"));
        assert_eq!(e.completed.len(), 1);
        assert_eq!(&e.completed[0][..], b"aabbcc");
        assert_eq!(r.ack_next(), 3);
        // Duplicates and stale packets are rejected.
        assert!(!r.insert(1, false, Bytes::new()).accepted);
    }

    #[test]
    fn recv_window_sack_bitmap_marks_ooo() {
        let mut r = RecvWindow::new();
        r.insert(0, true, Bytes::from_static(b"m0"));
        // 1 missing; 2, 4, 10 parked out of order.
        r.insert(2, true, Bytes::new());
        r.insert(4, true, Bytes::new());
        r.insert(10, true, Bytes::new());
        let sack = r.sack();
        assert_eq!(sack.ack_next, 1);
        // Bits are relative to ack_next + 1 = 2: bits 0, 2, 8.
        assert!(sack.is_set(0) && sack.is_set(2) && sack.is_set(8));
        assert!(!sack.is_set(1) && !sack.is_set(3));
        assert_eq!(sack.sacked_seqs(), vec![2, 4, 10]);
        // ack_next never retreats as the hole fills.
        r.insert(1, true, Bytes::new());
        assert_eq!(r.sack().ack_next, 3);
        assert_eq!(r.sack().sacked_seqs(), vec![4, 10]);
    }
}
