//! Lossy-link soak: sustained traffic over real sockets with seeded
//! datagram-level faults — 5% drop, 1% duplication, 3% reordering —
//! applied to *everything* on the wire (DATA, retransmissions, and
//! acknowledgment frames alike).
//!
//! Where `tests/window_model.rs` proves the protocol logic on a virtual
//! clock, this suite proves the deployed stack: threads, sockets,
//! batched syscalls, the pacer, and the RTO/SACK recovery machinery
//! running together for hundreds of messages. Completion within the
//! (generous) per-message timeout is itself the headline assertion — a
//! wedged window, a lost retransmission, or a dead pacer would hang the
//! receive loop, not just slow it down.

use std::time::{Duration, Instant};

use bytes::Bytes;
use dstampede_clf::{udp_mesh, ClfError, ClfTransport, LossInjection, UdpConfig};
use dstampede_core::AsId;

const MSGS: usize = 250;
const MSG_LEN: usize = 4096;

fn lossy_config() -> UdpConfig {
    UdpConfig {
        loss: LossInjection::Seeded {
            seed: 0x50A6_C0DE ^ 0xDEAD_BEEF, // any fixed seed; failures replay exactly
            drop_permille: 50,
            dup_permille: 10,
            reorder_permille: 30,
        },
        rto: Duration::from_millis(20),
        ..UdpConfig::default()
    }
}

#[test]
fn soak_delivers_everything_in_order_with_bounded_retransmits() {
    let mut endpoints = udp_mesh(2, lossy_config()).expect("mesh");
    let rx = endpoints.pop().unwrap();
    let tx = endpoints.pop().unwrap();

    let receiver = std::thread::spawn(move || {
        let mut out = Vec::with_capacity(MSGS);
        for i in 0..MSGS {
            let (_, msg) = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("receive wedged at message {i}: {e:?}"));
            out.push(msg);
        }
        let stats = rx.stats();
        rx.shutdown();
        (out, stats)
    });

    let t0 = Instant::now();
    for i in 0..MSGS {
        let mut payload = vec![(i % 251) as u8; MSG_LEN];
        payload[0] = (i >> 8) as u8;
        payload[1] = (i & 0xFF) as u8;
        let msg = Bytes::from(payload);
        // Backpressure means the packet window is genuinely full (the
        // lossy link is holding acks back); retry until it drains.
        loop {
            match tx.send(AsId(1), msg.clone()) {
                Ok(()) => break,
                Err(ClfError::Backpressure { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("send {i}: {e:?}"),
            }
        }
    }

    let (received, rx_stats) = receiver.join().expect("receiver thread");
    let wall = t0.elapsed();
    let tx_stats = tx.stats();
    tx.shutdown();

    // Exactly once, in order, uncorrupted.
    assert_eq!(received.len(), MSGS);
    for (i, msg) in received.iter().enumerate() {
        assert_eq!(msg.len(), MSG_LEN, "message {i} truncated");
        assert_eq!(
            (usize::from(msg[0]) << 8) | usize::from(msg[1]),
            i,
            "message {i} out of order"
        );
        assert!(
            msg[2..].iter().all(|&b| b == (i % 251) as u8),
            "message {i} corrupted"
        );
    }

    // The recovery machinery worked rather than idled: a 5% lossy link
    // over ~500+ datagrams forces retransmissions with overwhelming
    // probability...
    assert!(
        tx_stats.retransmits > 0,
        "a 5% lossy link should force retransmissions"
    );
    // ...but SACK keeps them surgical: only holes are re-sent, so the
    // retransmit volume stays a small multiple of the loss rate instead
    // of whole-window go-back-N storms.
    let data_packets = MSGS as u64; // 4 KiB fits one fragment
    let ratio = tx_stats.retransmits as f64 / data_packets as f64;
    assert!(
        ratio <= 0.25,
        "retransmit ratio {ratio:.3} ({} of {} packets) exceeds the hole-only bound",
        tx_stats.retransmits,
        data_packets
    );

    // Goodput floor: even at 5% loss the window must keep moving. The
    // bound is deliberately loose for shared CI machines — the real
    // assertion is that loss degrades throughput instead of stalling it.
    let goodput = (MSGS * MSG_LEN) as f64 / 1e6 / wall.as_secs_f64();
    assert!(
        goodput >= 0.2,
        "goodput {goodput:.2} MB/s below floor (wall {wall:?})"
    );

    // The receiver saw the duplicates the injector manufactured (its
    // dedup path ran) and delivered every byte exactly once regardless.
    assert_eq!(rx_stats.msgs_received, MSGS as u64);
}

/// The same soak with SACK disabled end-to-end: the legacy cumulative-ACK
/// exchange must also survive the lossy link (recovery is all-RTO, so the
/// retransmit bound is looser), proving the downgrade path is not
/// correctness-degraded, just slower.
#[test]
fn soak_survives_on_legacy_ack_path() {
    let config = UdpConfig {
        sack: false,
        ..lossy_config()
    };
    let mut endpoints = udp_mesh(2, config).expect("mesh");
    let rx = endpoints.pop().unwrap();
    let tx = endpoints.pop().unwrap();
    let msgs = 100;

    let receiver = std::thread::spawn(move || {
        for i in 0..msgs {
            let (_, msg) = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("legacy receive wedged at message {i}: {e:?}"));
            assert_eq!(
                msg[0],
                (i % 251) as u8,
                "legacy path delivered out of order"
            );
        }
        let stats = rx.stats();
        rx.shutdown();
        stats
    });

    for i in 0..msgs {
        let msg = Bytes::from(vec![(i % 251) as u8; 1024]);
        loop {
            match tx.send(AsId(1), msg.clone()) {
                Ok(()) => break,
                Err(ClfError::Backpressure { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("send {i}: {e:?}"),
            }
        }
    }

    let rx_stats = receiver.join().expect("receiver thread");
    let tx_stats = tx.stats();
    tx.shutdown();
    assert_eq!(rx_stats.msgs_received, msgs as u64);
    assert_eq!(
        tx_stats.sack_frames, 0,
        "sack=false must not exchange SACKs"
    );
}
