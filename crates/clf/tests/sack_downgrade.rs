//! SACK capability negotiation and downgrade interop.
//!
//! The fast path is negotiated in band: a SACK-capable sender sets a
//! flag bit on its DATA packets, and a SACK-capable receiver answers
//! flagged DATA with SACK frames. This suite plays *both* roles of an
//! old peer with a raw socket — a sender that never sets the flag, and
//! an observer that inspects which acknowledgment kind comes back — to
//! prove the downgrade matrix end to end:
//!
//! | sender      | receiver | acknowledgment exchanged |
//! |-------------|----------|--------------------------|
//! | new         | new      | SACK frames              |
//! | new (forced)| old      | legacy cumulative ACKs   |
//! | old         | new      | legacy cumulative ACKs   |
//!
//! and that the *delivered bytes are identical* in every row.

use std::net::UdpSocket;
use std::time::Duration;

use bytes::Bytes;
use dstampede_clf::{udp_mesh, ClfTransport, LossInjection, UdpConfig, UdpEndpoint};
use dstampede_core::AsId;

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const KIND_SACK: u8 = 2;
const FLAG_EOM: u8 = 1;

/// Hand-crafts a legacy DATA packet: no SACK flag, exactly what a
/// pre-SACK build puts on the wire.
fn legacy_data(src: AsId, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(14 + payload.len());
    pkt.extend_from_slice(&0xC1F0u16.to_be_bytes());
    pkt.push(KIND_DATA);
    pkt.push(FLAG_EOM);
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&seq.to_be_bytes());
    pkt.extend_from_slice(payload);
    pkt
}

/// Runs `n` messages through a transport pair and returns the received
/// payload sequence.
fn run_messages(a: &UdpEndpoint, b: &UdpEndpoint, n: usize) -> Vec<Bytes> {
    for i in 0..n {
        a.send(AsId(1), Bytes::from(vec![i as u8; 777])).unwrap();
    }
    (0..n)
        .map(|_| b.recv_timeout(Duration::from_secs(10)).unwrap().1)
        .collect()
}

/// New↔new exchanges SACK frames; forcing the downgrade switches the
/// same pair to legacy ACKs; the delivered bytes are identical.
#[test]
fn downgrade_is_byte_equivalent() {
    let lossy = UdpConfig {
        loss: LossInjection::DropEveryNth(5),
        rto: Duration::from_millis(20),
        ..UdpConfig::default()
    };

    let mut fast = udp_mesh(2, lossy).unwrap();
    let (fb, fa) = (fast.pop().unwrap(), fast.pop().unwrap());
    let fast_bytes = run_messages(&fa, &fb, 40);
    // recv() returning proves delivery; the SACK counter proves the
    // fast path (not the legacy path) carried it.
    assert!(
        fa.stats().sack_frames > 0,
        "fast pair never exchanged SACKs"
    );

    let mut slow = udp_mesh(2, lossy).unwrap();
    let (sb, sa) = (slow.pop().unwrap(), slow.pop().unwrap());
    sa.set_peer_sack(AsId(1), false); // peer 1 is "old": never flag DATA at it
    let slow_bytes = run_messages(&sa, &sb, 40);
    assert_eq!(
        sa.stats().sack_frames,
        0,
        "downgraded pair must not see SACKs"
    );
    assert!(
        sa.stats().retransmits > 0,
        "the legacy path must also recover from loss"
    );

    assert_eq!(fast_bytes, slow_bytes, "downgrade changed delivered bytes");
    for ep in [fa, fb, sa, sb] {
        ep.shutdown();
    }
}

/// An old sender (raw socket, no SACK flag) is answered with legacy
/// cumulative ACKs — never with a SACK frame it could not parse — and
/// its messages are delivered intact.
#[test]
fn old_sender_gets_legacy_acks() {
    let b = UdpEndpoint::bind(AsId(1), UdpConfig::default()).unwrap();
    let old = UdpSocket::bind("127.0.0.1:0").unwrap();
    old.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    for seq in 0..3u64 {
        let payload = vec![seq as u8; 300];
        old.send_to(&legacy_data(AsId(0), seq, &payload), b.local_addr())
            .unwrap();
        let (_, msg) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&msg[..], &payload[..], "legacy sender's message corrupted");
    }

    // Every acknowledgment the old sender sees must be a legacy ACK.
    let mut acks = 0;
    let mut buf = [0u8; 2048];
    while let Ok((n, _)) = old.recv_from(&mut buf) {
        assert!(n >= 14, "runt acknowledgment");
        assert_eq!(u16::from_be_bytes([buf[0], buf[1]]), 0xC1F0);
        assert_ne!(
            buf[2], KIND_SACK,
            "old sender was answered with a SACK it cannot parse"
        );
        assert_eq!(buf[2], KIND_ACK);
        acks += 1;
        // Cumulative ack field: every packet at or below it received.
        let cum = u64::from_be_bytes(buf[6..14].try_into().unwrap());
        assert!(cum <= 2);
        if cum == 2 {
            break;
        }
    }
    assert!(acks > 0, "old sender never acknowledged");
    b.shutdown();
}

/// A new sender talking to a new receiver is answered with SACK frames
/// (kind 2) — observed on the wire by an old-style observer socket that
/// relays flagged DATA.
#[test]
fn flagged_data_is_answered_with_sack_frames() {
    let (a, b) = {
        let mut v = udp_mesh(2, UdpConfig::default()).unwrap();
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    };
    // Drive enough traffic that at least one burst acknowledgment flows.
    for i in 0..30u8 {
        a.send(AsId(1), Bytes::from(vec![i; 2000])).unwrap();
    }
    for _ in 0..30 {
        b.recv_timeout(Duration::from_secs(5)).unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while a.stats().sack_frames == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = a.stats();
    assert!(stats.sack_frames > 0, "no SACK frames reached the sender");
    a.shutdown();
    b.shutdown();
}
