//! Packet-level tests of the reliable-UDP CLF protocol: out-of-order
//! arrival, duplication, and interleaved fragments, injected from a raw
//! socket speaking the wire format directly.

use std::net::UdpSocket;
use std::time::Duration;

use bytes::Bytes;
use dstampede_clf::{ClfError, ClfTransport, UdpConfig, UdpEndpoint};
use dstampede_core::AsId;

const MAGIC: u16 = 0xC1F0;
const KIND_DATA: u8 = 0;
const FLAG_EOM: u8 = 1;

fn data_packet(src: AsId, seq: u64, eom: bool, payload: &[u8]) -> Vec<u8> {
    let mut pkt = Vec::new();
    pkt.extend_from_slice(&MAGIC.to_be_bytes());
    pkt.push(KIND_DATA);
    pkt.push(if eom { FLAG_EOM } else { 0 });
    pkt.extend_from_slice(&src.0.to_be_bytes());
    pkt.extend_from_slice(&seq.to_be_bytes());
    pkt.extend_from_slice(payload);
    pkt
}

fn recv_msg(ep: &UdpEndpoint) -> (AsId, Bytes) {
    ep.recv_timeout(Duration::from_secs(5)).expect("delivery")
}

#[test]
fn out_of_order_packets_are_reordered() {
    let ep = UdpEndpoint::bind(AsId(7), UdpConfig::default()).unwrap();
    let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dst = ep.local_addr();

    // Three single-packet messages sent in the order 2, 0, 1.
    let src = AsId(3);
    raw.send_to(&data_packet(src, 2, true, b"third"), dst)
        .unwrap();
    raw.send_to(&data_packet(src, 0, true, b"first"), dst)
        .unwrap();
    raw.send_to(&data_packet(src, 1, true, b"second"), dst)
        .unwrap();

    assert_eq!(&recv_msg(&ep).1[..], b"first");
    assert_eq!(&recv_msg(&ep).1[..], b"second");
    assert_eq!(&recv_msg(&ep).1[..], b"third");
    ep.shutdown();
}

#[test]
fn duplicates_are_dropped() {
    let ep = UdpEndpoint::bind(AsId(7), UdpConfig::default()).unwrap();
    let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dst = ep.local_addr();
    let src = AsId(4);

    let pkt = data_packet(src, 0, true, b"once");
    for _ in 0..5 {
        raw.send_to(&pkt, dst).unwrap();
    }
    raw.send_to(&data_packet(src, 1, true, b"twice"), dst)
        .unwrap();

    assert_eq!(&recv_msg(&ep).1[..], b"once");
    assert_eq!(&recv_msg(&ep).1[..], b"twice");
    // Nothing further: the duplicates were discarded, and the counter
    // recorded them.
    assert_eq!(
        ep.recv_timeout(Duration::from_millis(50)).unwrap_err(),
        ClfError::Timeout
    );
    assert!(ep.stats().duplicates_dropped >= 4);
    ep.shutdown();
}

#[test]
fn fragments_reassemble_even_when_scrambled() {
    let ep = UdpEndpoint::bind(AsId(7), UdpConfig::default()).unwrap();
    let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dst = ep.local_addr();
    let src = AsId(5);

    // One message in three fragments (seq 0,1,2; EOM on the last),
    // delivered 2, 0, 1.
    raw.send_to(&data_packet(src, 2, true, b"C"), dst).unwrap();
    raw.send_to(&data_packet(src, 0, false, b"A"), dst).unwrap();
    raw.send_to(&data_packet(src, 1, false, b"B"), dst).unwrap();

    assert_eq!(&recv_msg(&ep).1[..], b"ABC");
    ep.shutdown();
}

#[test]
fn interleaved_senders_keep_their_own_sequences() {
    let ep = UdpEndpoint::bind(AsId(7), UdpConfig::default()).unwrap();
    let raw_a = UdpSocket::bind("127.0.0.1:0").unwrap();
    let raw_b = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dst = ep.local_addr();

    // Two peers interleave; each peer's stream must stay ordered
    // independently.
    raw_a
        .send_to(&data_packet(AsId(1), 0, true, b"a0"), dst)
        .unwrap();
    raw_b
        .send_to(&data_packet(AsId(2), 0, true, b"b0"), dst)
        .unwrap();
    raw_a
        .send_to(&data_packet(AsId(1), 1, true, b"a1"), dst)
        .unwrap();
    raw_b
        .send_to(&data_packet(AsId(2), 1, true, b"b1"), dst)
        .unwrap();

    let mut per_peer: std::collections::HashMap<AsId, Vec<Vec<u8>>> = Default::default();
    for _ in 0..4 {
        let (from, msg) = recv_msg(&ep);
        per_peer.entry(from).or_default().push(msg.to_vec());
    }
    assert_eq!(per_peer[&AsId(1)], vec![b"a0".to_vec(), b"a1".to_vec()]);
    assert_eq!(per_peer[&AsId(2)], vec![b"b0".to_vec(), b"b1".to_vec()]);
    ep.shutdown();
}

#[test]
fn stale_retransmission_after_delivery_is_ignored() {
    let ep = UdpEndpoint::bind(AsId(7), UdpConfig::default()).unwrap();
    let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dst = ep.local_addr();
    let src = AsId(6);

    raw.send_to(&data_packet(src, 0, true, b"live"), dst)
        .unwrap();
    assert_eq!(&recv_msg(&ep).1[..], b"live");
    // A late retransmission of an already-delivered packet must not
    // produce a second message.
    raw.send_to(&data_packet(src, 0, true, b"live"), dst)
        .unwrap();
    assert_eq!(
        ep.recv_timeout(Duration::from_millis(50)).unwrap_err(),
        ClfError::Timeout
    );
    ep.shutdown();
}

/// The full PR 5 transmit pipeline under PR 2 fault injection: frames
/// coalesce into shared datagrams, the adaptive RTO recovers injected
/// losses, and a fault plan adding propagation delay plus duplicated
/// sends still yields every message with first occurrences in order.
#[test]
fn coalesced_adaptive_pipeline_survives_faults() {
    use std::sync::Arc;

    use dstampede_clf::{udp_mesh, FaultPlan, FaultTransport, LossInjection};

    let config = UdpConfig {
        coalesce_delay: Duration::from_millis(2),
        rto: Duration::from_millis(25),
        loss: LossInjection::DropEveryNth(5),
        ..UdpConfig::default()
    };
    let mut mesh = udp_mesh(2, config).unwrap();
    let b = mesh.pop().unwrap();
    let a = mesh.pop().unwrap();

    let plan = FaultPlan::new(0xD57A);
    plan.delay(Duration::from_millis(1));
    plan.duplicate_every_nth(4);
    let sender = FaultTransport::wrap(a.clone() as Arc<dyn ClfTransport>, plan);

    const N: usize = 30;
    for i in 0..N {
        // Mixed sizes: small frames coalesce, the large ones fragment.
        let len = if i % 3 == 0 { 2048 } else { 24 };
        let mut msg = vec![(i % 251) as u8; len];
        msg[0] = i as u8;
        sender.send(AsId(1), Bytes::from(msg)).unwrap();
    }

    // Duplicated sends arrive as genuinely repeated messages (they get
    // fresh sequence numbers), so collect everything the receiver sees
    // and check the deduplicated first-occurrence order.
    let mut seen = Vec::new();
    while seen.len() < N {
        let (from, msg) = b.recv_timeout(Duration::from_secs(10)).expect("delivery");
        assert_eq!(from, AsId(0));
        if !seen.contains(&msg[0]) {
            seen.push(msg[0]);
        }
    }
    assert_eq!(seen, (0..N as u8).collect::<Vec<_>>());

    let stats = a.stats();
    assert!(
        stats.retransmits > 0,
        "loss injection should force the adaptive RTO to retransmit"
    );
    a.shutdown();
    b.shutdown();
}
