//! Model-based protocol suite for the sliding-window SACK ARQ.
//!
//! The pure state machines in `dstampede_clf::window` take every
//! timestamp as a parameter, so this suite drives a sender/receiver pair
//! entirely on a **virtual clock** through a **simulated link** — no
//! sockets, no sleeps, thousands of adversarial schedules per second.
//! [`FaultPlan::on_packet`] supplies seeded drop/duplicate decisions and
//! a partition phase; the link itself delivers in seeded random order so
//! reordering is the norm, not the exception.
//!
//! Invariants checked on every schedule:
//!
//! 1. **Exactly-once, in-order delivery**: the receiver completes
//!    precisely the sent message sequence — no loss, no duplication, no
//!    reordering — regardless of what the link did.
//! 2. **The cumulative ack never retreats**: `ack_next` is monotone
//!    non-decreasing across the whole schedule.
//! 3. **Fast retransmissions cover genuine holes only**: every packet a
//!    SACK integration re-sends was, at that moment, at or above the
//!    peer's `ack_next` and absent from its bitmap.
//! 4. **Quiescence**: once the faults stop, the protocol drains — every
//!    message is delivered within a bounded number of steps, and the
//!    sender's window empties (nothing wedges).

use std::time::{Duration, Instant};

use bytes::Bytes;
use dstampede_clf::window::{RecvWindow, SendWindow};
use dstampede_clf::{FaultPlan, FaultVerdict};
use dstampede_core::AsId;
use proptest::prelude::*;

/// The model's packet representation: enough for the receiver to
/// reconstruct the byte stream.
#[derive(Debug, Clone)]
struct Pkt {
    eom: bool,
    payload: Bytes,
}

/// A packet in flight on the simulated link.
#[derive(Debug)]
enum Frame {
    Data { seq: u64, pkt: Pkt },
    Sack { ack_next: u64, sacked: Vec<u64> },
    CumAck { cum: u64 },
}

/// Deterministic generator for link-order decisions (the FaultPlan has
/// its own, for drop/dup decisions).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Pops a pseudo-randomly chosen element — the link delivers in
    /// arbitrary order.
    fn pop<T>(&mut self, v: &mut Vec<T>) -> Option<T> {
        if v.is_empty() {
            return None;
        }
        let i = (self.next() as usize) % v.len();
        Some(v.swap_remove(i))
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    /// Message payload lengths (0 = empty message).
    msg_lens: Vec<usize>,
    frag: usize,
    max_packets: usize,
    max_bytes: usize,
    drop_permille: u32,
    dup_every: u32,
    /// Whether the receiver answers with SACKs (fast path) or legacy
    /// cumulative ACKs (downgrade path).
    sack_mode: bool,
    /// Steps into the schedule at which a full partition begins, and how
    /// long it lasts. Zero length disables it.
    partition_at: usize,
    partition_len: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            any::<u64>(),
            proptest::collection::vec(0usize..600, 1..16),
            32usize..256,
            4usize..32,
            256usize..4096,
        ),
        (
            0u32..300,
            prop_oneof![Just(0u32), 2u32..6],
            any::<bool>(),
            0usize..400,
            prop_oneof![Just(0usize), 10usize..120],
        ),
    )
        .prop_map(
            |(
                (seed, msg_lens, frag, max_packets, max_bytes),
                (drop_permille, dup_every, sack_mode, partition_at, partition_len),
            )| Scenario {
                seed,
                msg_lens,
                frag,
                max_packets,
                max_bytes,
                drop_permille,
                dup_every,
                sack_mode,
                partition_at,
                partition_len,
            },
        )
}

const SRC: AsId = AsId(0);
const DST: AsId = AsId(1);

/// Applies the fault plan to a frame headed onto a link.
fn offer(plan: &FaultPlan, link: &mut Vec<Frame>, frame: Frame, dup_payload: impl Fn() -> Frame) {
    match plan.on_packet(SRC, DST) {
        FaultVerdict::Dropped => {}
        FaultVerdict::Deliver { duplicate } => {
            if duplicate {
                link.push(dup_payload());
            }
            link.push(frame);
        }
    }
}

/// Runs one adversarial schedule to quiescence, checking every invariant
/// along the way. Panics (failing the property) on any violation.
fn run(s: &Scenario) {
    let t0 = Instant::now();
    let mut elapsed = Duration::ZERO;
    let now = |elapsed: Duration| t0 + elapsed;

    let messages: Vec<Vec<u8>> = s
        .msg_lens
        .iter()
        .enumerate()
        .map(|(i, &len)| (0..len).map(|j| ((i * 131 + j) % 251) as u8).collect())
        .collect();

    let mut send = SendWindow::<Pkt>::new(s.max_packets, s.max_bytes, Duration::from_millis(20));
    let mut recv = RecvWindow::new();
    let plan = FaultPlan::new(s.seed);
    if s.drop_permille > 0 {
        plan.drop_permille(s.drop_permille);
    }
    if s.dup_every > 0 {
        plan.duplicate_every_nth(s.dup_every);
    }

    let mut rng = Lcg(s.seed ^ 0xD1CE_F00D);
    let mut to_stage: Vec<Pkt> = Vec::new();
    for msg in &messages {
        let n_frags = msg.len().div_ceil(s.frag).max(1);
        for f in 0..n_frags {
            let lo = f * s.frag;
            let hi = msg.len().min(lo + s.frag);
            to_stage.push(Pkt {
                eom: f + 1 == n_frags,
                payload: Bytes::from(msg[lo..hi].to_vec()),
            });
        }
    }
    let mut stage_idx = 0usize;

    let mut data_link: Vec<Frame> = Vec::new();
    let mut ack_link: Vec<Frame> = Vec::new();
    let mut delivered: Vec<Bytes> = Vec::new();
    let mut last_ack_next = 0u64;
    let mut partitioned = false;

    let mut steps = 0usize;
    let max_steps = 200_000usize;
    while delivered.len() < messages.len() || !send.is_idle() {
        steps += 1;
        assert!(
            steps <= max_steps,
            "schedule did not quiesce: {}/{} messages, window idle={}, \
             unacked={}, deferred={}, links={}+{} ({s:?})",
            delivered.len(),
            messages.len(),
            send.is_idle(),
            send.unacked_len(),
            send.deferred_len(),
            data_link.len(),
            ack_link.len()
        );
        elapsed += Duration::from_millis(1);

        // Partition window: everything on the wire in either direction
        // is lost while it lasts; the protocol must pick up after heal.
        if s.partition_len > 0 && steps == s.partition_at {
            plan.partition(SRC, DST);
            partitioned = true;
        }
        if partitioned && steps >= s.partition_at + s.partition_len {
            plan.heal_all();
            partitioned = false;
        }
        // Stop injecting loss near the step bound so quiescence is
        // reachable: a real network's faults are transient too.
        if steps == max_steps / 2 {
            plan.heal_all();
            partitioned = false;
            plan.drop_permille(0);
            plan.duplicate_every_nth(0);
        }

        // 1. Sender: stage what the window accepts, transmit what the
        //    byte budget admits.
        while stage_idx < to_stage.len() && send.can_accept(1) {
            let pkt = to_stage[stage_idx].clone();
            let wire = pkt.payload.len() + 14;
            send.stage(pkt, wire, false);
            stage_idx += 1;
        }
        while let Some(t) = send.transmit_next(now(elapsed)) {
            let (seq, pkt) = (t.seq, t.pkt);
            let dup = pkt.clone();
            offer(&plan, &mut data_link, Frame::Data { seq, pkt }, move || {
                Frame::Data {
                    seq,
                    pkt: dup.clone(),
                }
            });
        }

        // 2. Link → receiver, in seeded random order; acknowledge once
        //    per burst like the real pump.
        let burst = 1 + (rng.next() as usize) % 4;
        let mut got_data = false;
        for _ in 0..burst {
            let Some(frame) = rng.pop(&mut data_link) else {
                break;
            };
            let Frame::Data { seq, pkt } = frame else {
                unreachable!("data link carries DATA only")
            };
            let ev = recv.insert(seq, pkt.eom, pkt.payload);
            got_data = true;
            for msg in ev.completed {
                assert!(
                    delivered.len() < messages.len(),
                    "delivered more messages than were sent ({s:?})"
                );
                assert_eq!(
                    &msg[..],
                    &messages[delivered.len()][..],
                    "message {} corrupted, duplicated, or out of order ({s:?})",
                    delivered.len()
                );
                delivered.push(msg);
            }
            assert!(
                recv.ack_next() >= last_ack_next,
                "cumulative ack retreated: {} -> {} ({s:?})",
                last_ack_next,
                recv.ack_next()
            );
            last_ack_next = recv.ack_next();
        }
        if got_data {
            if s.sack_mode {
                let info = recv.sack();
                let sacked = info.sacked_seqs();
                offer(
                    &plan,
                    &mut ack_link,
                    Frame::Sack {
                        ack_next: info.ack_next,
                        sacked: sacked.clone(),
                    },
                    || Frame::Sack {
                        ack_next: info.ack_next,
                        sacked: sacked.clone(),
                    },
                );
            } else if recv.ack_next() > 0 {
                let cum = recv.ack_next() - 1;
                offer(&plan, &mut ack_link, Frame::CumAck { cum }, || {
                    Frame::CumAck { cum }
                });
            }
        }

        // 3. Link → sender: integrate acknowledgments; fast
        //    retransmissions must cover genuine holes only.
        while let Some(frame) = rng.pop(&mut ack_link) {
            match frame {
                Frame::Sack { ack_next, sacked } => {
                    let ev = send.on_sack(ack_next, &sacked, now(elapsed));
                    for (seq, pkt) in ev.fast_retransmits {
                        assert!(
                            seq >= ack_next && !sacked.contains(&seq),
                            "fast retransmit of {seq} is not a hole of \
                             (ack_next={ack_next}, sacked={sacked:?}) ({s:?})"
                        );
                        let dup = pkt.clone();
                        offer(&plan, &mut data_link, Frame::Data { seq, pkt }, move || {
                            Frame::Data {
                                seq,
                                pkt: dup.clone(),
                            }
                        });
                    }
                }
                Frame::CumAck { cum } => {
                    send.on_cum_ack(cum, now(elapsed));
                }
                Frame::Data { .. } => unreachable!("ack link carries acks only"),
            }
        }

        // 4. When the schedule is stuck (nothing in flight, sender not
        //    idle), jump the clock past the timeout — exactly what real
        //    time would do, without waiting for it.
        if data_link.is_empty() && ack_link.is_empty() && !send.is_idle() {
            if send.unacked_len() > 0 {
                elapsed += send.rtt.rto();
            }
            for (seq, pkt) in send.scan_retransmits(now(elapsed)) {
                let dup = pkt.clone();
                offer(&plan, &mut data_link, Frame::Data { seq, pkt }, move || {
                    Frame::Data {
                        seq,
                        pkt: dup.clone(),
                    }
                });
            }
        }
    }

    assert_eq!(delivered.len(), messages.len());
    assert_eq!(send.in_flight_bytes(), 0, "drained window holds bytes");
    assert!(
        !recv.has_holes(),
        "receiver parked packets after quiescence"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// The protocol delivers exactly once, in order, and quiesces under
    /// arbitrary seeded loss, duplication, reordering, and a partition.
    #[test]
    fn window_protocol_survives_adversarial_schedules(s in scenario()) {
        run(&s);
    }
}

/// A deterministic worst-case mix kept outside proptest so it always
/// runs even with `PROPTEST_CASES=0`: heavy loss and duplication plus a
/// long partition, in both acknowledgment modes.
#[test]
fn heavy_loss_partition_both_modes() {
    for sack_mode in [true, false] {
        run(&Scenario {
            seed: 0xBADC_0FFE,
            msg_lens: vec![0, 1, 513, 64, 300, 599, 2, 450],
            frag: 64,
            max_packets: 8,
            max_bytes: 512,
            drop_permille: 250,
            dup_every: 3,
            sack_mode,
            partition_at: 50,
            partition_len: 100,
        });
    }
}

/// A clean link is the degenerate schedule: everything delivers in one
/// pass with no retransmissions and no time jumps beyond the first.
#[test]
fn clean_link_delivers_first_pass() {
    run(&Scenario {
        seed: 1,
        msg_lens: vec![100, 0, 599, 32],
        frag: 128,
        max_packets: 32,
        max_bytes: 4096,
        drop_permille: 0,
        dup_every: 0,
        sack_mode: true,
        partition_at: 0,
        partition_len: 0,
    });
}
