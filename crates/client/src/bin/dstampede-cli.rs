//! `dstampede-cli` — an interactive end-device shell.
//!
//! Attaches to a running cluster (e.g. one started with `dstamped`) and
//! exposes the client API as line commands, useful for poking at a live
//! computation:
//!
//! ```text
//! dstampede-cli <listener-addr> [--java]
//! ```
//!
//! Commands (one per line on stdin; results on stdout):
//!
//! ```text
//! ping
//! create-channel [name]          # prints the channel id as OWNER.INDEX
//! connect-in  OWNER.INDEX [earliest|latest]   # prints a connection handle
//! connect-out OWNER.INDEX                     # prints a connection handle
//! put  HANDLE TS TEXT...
//! get  HANDLE TS                 # blocking, up to 5 s
//! consume HANDLE TS
//! ns-register NAME OWNER.INDEX
//! ns-lookup NAME
//! ns-list
//! placement                      # resource -> node map with follower and replication lag
//! stats [local]                  # telemetry table, cluster-wide unless "local"
//! stats [local] --interval SECS [COUNT]  # delta mode: COUNT windows (default 10) of
//!                                # counter rates + windowed interpolated percentiles
//! trace [local]                  # causal timelines, cluster-wide unless "local"
//! trace export [FILE] [local]    # write Chrome trace-event JSON (default results/trace.json)
//! health [local]                 # derived health states, cluster-wide unless "local"
//! watch [TICKS [MS]]             # refreshing dashboard: health, occupancy, RTT/retransmit
//!                                # sparklines; TICKS frames (default 10) every MS (default 500)
//! quit
//! ```
//!
//! The exported JSON opens directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::time::Duration;

use dstampede_client::{ClientChanIn, ClientChanOut, EndDevice};
use dstampede_core::{AsId, ChanId, ChannelAttrs, GetSpec, Interest, Item, ResourceId, Timestamp};
use dstampede_wire::{CodecId, WaitSpec};

enum Conn {
    In(ClientChanIn),
    Out(ClientChanOut),
}

struct Shell {
    device: EndDevice,
    conns: HashMap<u64, Conn>,
    next_handle: u64,
}

fn parse_chan(text: &str) -> Result<ChanId, String> {
    let (owner, index) = text
        .split_once('.')
        .ok_or_else(|| format!("channel id must be OWNER.INDEX, got {text}"))?;
    Ok(ChanId {
        owner: AsId(owner.parse().map_err(|_| "bad owner".to_owned())?),
        index: index.parse().map_err(|_| "bad index".to_owned())?,
    })
}

impl Shell {
    fn run_line(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(String::new());
        };
        let err = |e: dstampede_core::StmError| e.to_string();
        match cmd {
            "ping" => {
                self.device.ping(1).map_err(err)?;
                Ok("pong".into())
            }
            "create-channel" => {
                let name = parts.next();
                let id = self
                    .device
                    .create_channel(name, ChannelAttrs::default())
                    .map_err(err)?;
                Ok(format!("channel {}.{}", id.owner.0, id.index))
            }
            "connect-in" => {
                let chan = parse_chan(parts.next().ok_or("missing channel id")?)?;
                let interest = match parts.next() {
                    Some("latest") => Interest::FromLatest,
                    _ => Interest::FromEarliest,
                };
                let conn = self
                    .device
                    .connect_channel_in(chan, interest)
                    .map_err(err)?;
                self.next_handle += 1;
                self.conns.insert(self.next_handle, Conn::In(conn));
                Ok(format!("conn {}", self.next_handle))
            }
            "connect-out" => {
                let chan = parse_chan(parts.next().ok_or("missing channel id")?)?;
                let conn = self.device.connect_channel_out(chan).map_err(err)?;
                self.next_handle += 1;
                self.conns.insert(self.next_handle, Conn::Out(conn));
                Ok(format!("conn {}", self.next_handle))
            }
            "put" => {
                let handle: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing handle")?;
                let ts: i64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing timestamp")?;
                let text = parts.collect::<Vec<_>>().join(" ");
                match self.conns.get(&handle) {
                    Some(Conn::Out(out)) => {
                        out.put(
                            Timestamp::new(ts),
                            Item::from_vec(text.into_bytes()),
                            WaitSpec::TimeoutMs(5000),
                        )
                        .map_err(err)?;
                        Ok("ok".into())
                    }
                    Some(Conn::In(_)) => Err("handle is an input connection".into()),
                    None => Err("no such handle".into()),
                }
            }
            "get" => {
                let handle: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing handle")?;
                let ts: i64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing timestamp")?;
                match self.conns.get(&handle) {
                    Some(Conn::In(inp)) => {
                        let (t, item) = inp
                            .get(
                                GetSpec::Exact(Timestamp::new(ts)),
                                WaitSpec::TimeoutMs(5000),
                            )
                            .map_err(err)?;
                        Ok(format!(
                            "ts={} payload={:?}",
                            t.value(),
                            String::from_utf8_lossy(item.payload())
                        ))
                    }
                    Some(Conn::Out(_)) => Err("handle is an output connection".into()),
                    None => Err("no such handle".into()),
                }
            }
            "consume" => {
                let handle: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing handle")?;
                let ts: i64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("missing timestamp")?;
                match self.conns.get(&handle) {
                    Some(Conn::In(inp)) => {
                        inp.consume_until(Timestamp::new(ts)).map_err(err)?;
                        Ok("ok".into())
                    }
                    _ => Err("no such input handle".into()),
                }
            }
            "ns-register" => {
                let name = parts.next().ok_or("missing name")?;
                let chan = parse_chan(parts.next().ok_or("missing channel id")?)?;
                self.device
                    .ns_register(name, ResourceId::Channel(chan), "cli")
                    .map_err(err)?;
                Ok("ok".into())
            }
            "ns-lookup" => {
                let name = parts.next().ok_or("missing name")?;
                let (res, meta) = self
                    .device
                    .ns_lookup(name, WaitSpec::TimeoutMs(5000))
                    .map_err(err)?;
                Ok(format!("{res} meta={meta:?}"))
            }
            "stats" => {
                // Cluster-wide by default; `stats local` asks only the
                // attached address space. `--interval SECS [COUNT]`
                // switches to delta mode: each window prints what moved
                // since the previous pull (counters as rates,
                // histograms as windowed interpolated percentiles)
                // instead of lifetime totals.
                let args: Vec<&str> = parts.collect();
                let cluster = !args.contains(&"local");
                if let Some(pos) = args.iter().position(|a| *a == "--interval") {
                    let secs: f64 = args
                        .get(pos + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|s| *s > 0.0)
                        .ok_or("--interval needs seconds > 0")?;
                    let count: u64 = args.get(pos + 2).and_then(|v| v.parse().ok()).unwrap_or(10);
                    let mut stdout = std::io::stdout();
                    let mut prev = self.device.stats(cluster).map_err(err)?;
                    for _ in 0..count.max(1) {
                        std::thread::sleep(Duration::from_secs_f64(secs));
                        let now = self.device.stats(cluster).map_err(err)?;
                        print!(
                            "{}",
                            dstampede_client::render_interval_table(&now.delta_since(&prev), secs)
                        );
                        let _ = stdout.flush();
                        prev = now;
                    }
                    Ok(String::new())
                } else {
                    let snap = self.device.stats(cluster).map_err(err)?;
                    Ok(dstampede_client::render_snapshot_table(&snap)
                        .trim_end()
                        .to_owned())
                }
            }
            "trace" => {
                let args: Vec<&str> = parts.collect();
                let cluster = !args.contains(&"local");
                if args.first() == Some(&"export") {
                    let path = args
                        .get(1)
                        .filter(|a| **a != "local")
                        .map_or("results/trace.json", |v| *v);
                    let dump = self.device.trace(cluster).map_err(err)?;
                    if let Some(dir) = std::path::Path::new(path).parent() {
                        if !dir.as_os_str().is_empty() {
                            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                        }
                    }
                    std::fs::write(path, dump.to_chrome_json()).map_err(|e| e.to_string())?;
                    Ok(format!(
                        "wrote {} spans to {path} (open in chrome://tracing or ui.perfetto.dev)",
                        dump.spans.len()
                    ))
                } else {
                    let dump = self.device.trace(cluster).map_err(err)?;
                    Ok(dstampede_client::render_trace_timelines(&dump)
                        .trim_end()
                        .to_owned())
                }
            }
            "health" => {
                let cluster = parts.next() != Some("local");
                let report = self.device.health(cluster).map_err(err)?;
                Ok(dstampede_client::render_health_table(&report)
                    .trim_end()
                    .to_owned())
            }
            "watch" => {
                let ticks: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(10);
                let interval_ms: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(500);
                let mut stdout = std::io::stdout();
                for frame in 0..ticks.max(1) {
                    let health = self.device.health(true).map_err(err)?;
                    let history = self.device.history(true).map_err(err)?;
                    // Clear and home between frames, top-style.
                    if frame > 0 {
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{}", dstampede_client::render_watch(&health, &history));
                    println!(
                        "[frame {}/{} every {interval_ms}ms]",
                        frame + 1,
                        ticks.max(1)
                    );
                    let _ = stdout.flush();
                    if frame + 1 < ticks.max(1) {
                        std::thread::sleep(Duration::from_millis(interval_ms));
                    }
                }
                Ok(String::new())
            }
            "placement" => {
                // Resource→node map: the primaries advertise their
                // follower routes as labeled gauges; the name server
                // supplies the names; health adds the repl subject.
                let entries = self.device.ns_list().map_err(err)?;
                let snap = self.device.stats(true).map_err(err)?;
                let health = self.device.health(true).map_err(err)?;
                Ok(
                    dstampede_client::render_placement_table(&entries, &snap, &health)
                        .trim_end()
                        .to_owned(),
                )
            }
            "ns-list" => {
                let entries = self.device.ns_list().map_err(err)?;
                if entries.is_empty() {
                    return Ok("(empty)".into());
                }
                Ok(entries
                    .iter()
                    .map(|e| format!("{} -> {}", e.name, e.resource))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            other => Err(format!("unknown command {other}")),
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: dstampede-cli <listener-addr> [--java]");
        std::process::exit(2);
    };
    let codec = if args.any(|a| a == "--java") {
        CodecId::Jdr
    } else {
        CodecId::Xdr
    };
    let device = match EndDevice::attach(&addr, codec, "cli") {
        Ok(d) => d,
        Err(e) => {
            dstampede_obs::error("cli", format!("attach failed to {addr}: {e}"));
            std::process::exit(1);
        }
    };
    println!(
        "attached to {addr} as session {} ({} codec); type commands, quit to exit",
        device.session(),
        device.codec()
    );

    let mut shell = Shell {
        device,
        conns: HashMap::new(),
        next_handle: 0,
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "quit" {
            break;
        }
        match shell.run_line(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
        let _ = stdout.flush();
    }
    let Shell { device, conns, .. } = shell;
    drop(conns);
    let _ = device.detach();
    // Brief grace so the detach reply drains before exit.
    std::thread::sleep(Duration::from_millis(20));
}
