//! # dstampede-client — the end-device client library
//!
//! The tentacles of the Octopus: programs on sensors, data aggregators,
//! and displays join a D-Stampede computation by attaching to a cluster
//! listener over TCP. The library reproduces both client flavours of the
//! paper (§3.2.1):
//!
//! * [`EndDevice::attach_c`] — the **C client**, marshalling with XDR;
//! * [`EndDevice::attach_java`] — the **Java client**, marshalling with
//!   JDR (object trees, element-wise streaming — the measured cost
//!   asymmetry of the paper's Figures 12 vs 13).
//!
//! Both expose the same API: create/connect channels and queues, `put`,
//! `get`, `consume`, name-server calls, and client-side garbage hooks fed
//! by notifications piggy-backed on replies.
//!
//! ## Example
//!
//! ```
//! use dstampede_client::EndDevice;
//! use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
//! use dstampede_runtime::Cluster;
//! use dstampede_wire::WaitSpec;
//!
//! # fn main() -> Result<(), dstampede_core::StmError> {
//! let cluster = Cluster::in_process(1)?;
//! let addr = cluster.listener_addr(0)?;
//!
//! let device = EndDevice::attach_c(addr, "camera-0")?;
//! let chan = device.create_channel(Some("video0"), ChannelAttrs::default())?;
//! let out = device.connect_channel_out(chan)?;
//! let inp = device.connect_channel_in(chan, Interest::FromEarliest)?;
//!
//! out.put(Timestamp::new(0), Item::from_vec(vec![1, 2, 3]), WaitSpec::Forever)?;
//! let (ts, frame) = inp.get(GetSpec::Exact(Timestamp::new(0)), WaitSpec::Forever)?;
//! assert_eq!(frame.payload(), &[1, 2, 3]);
//! inp.consume_until(ts)?;
//!
//! drop((out, inp));
//! device.detach()?;
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod session;

pub use report::{
    health_at_least, render_health_table, render_interval_table, render_placement_table,
    render_snapshot_table, render_trace_timelines, render_watch, sparkline,
};
pub use session::{
    ClientChanIn, ClientChanOut, ClientGarbageHook, ClientQueueIn, ClientQueueOut, EndDevice,
    Keepalive, SessionStream,
};
