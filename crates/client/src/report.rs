//! Human-readable rendering of telemetry snapshots and trace dumps.
//!
//! Used by `dstampede-cli stats`/`trace` to print the cluster-wide
//! views; kept in the library so tools embedding the client can reuse
//! them.

use dstampede_obs::{Snapshot, TraceDump};

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{inner}}}")
}

/// Renders a snapshot as an aligned text table: one section per sample
/// kind, one row per series, with count/mean/p50/p99 columns for
/// histograms. Sources (the contributing address spaces) head the
/// output, so a cluster-wide pull shows who answered.
#[must_use]
pub fn render_snapshot_table(snap: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for c in &snap.counters {
        rows.push((
            format!(
                "{}/{}{}",
                c.id.subsystem,
                c.id.name,
                label_suffix(&c.id.labels)
            ),
            c.value.to_string(),
        ));
    }
    for g in &snap.gauges {
        rows.push((
            format!(
                "{}/{}{}",
                g.id.subsystem,
                g.id.name,
                label_suffix(&g.id.labels)
            ),
            g.value.to_string(),
        ));
    }
    for h in &snap.histograms {
        rows.push((
            format!(
                "{}/{}{}",
                h.id.subsystem,
                h.id.name,
                label_suffix(&h.id.labels)
            ),
            format!(
                "count={} mean={} p50={} p99={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            ),
        ));
    }
    let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
    let mut out = format!("sources: {}\n", snap.sources.join(", "));
    for (name, value) in rows {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    out
}

/// Renders a trace dump as per-item timelines: one block per
/// `(trace, timestamp)` pair, its spans ordered by start time and
/// offset from the timeline's first span. A cluster-wide pull shows
/// an item's whole journey — put on one address space, RPC hops,
/// get/consume elsewhere, GC at the end — in one block.
#[must_use]
pub fn render_trace_timelines(dump: &TraceDump) -> String {
    if dump.spans.is_empty() {
        return format!("(no spans; dropped={})\n", dump.dropped);
    }
    let mut out = String::new();
    for ((trace, ts), spans) in dump.timelines() {
        let origin = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        out.push_str(&format!("trace {trace} ts={ts} ({} spans)\n", spans.len()));
        let mut ordered = spans;
        ordered.sort_by_key(|s| (s.start_us, s.id));
        for s in ordered {
            let dur = if s.dur_us > 0 {
                format!(" dur={}us", s.dur_us)
            } else {
                String::new()
            };
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(" {}", s.detail)
            };
            out.push_str(&format!(
                "  +{:>8}us {:<10} {:<20} @{}{}{}\n",
                s.start_us.saturating_sub(origin),
                s.kind.name(),
                s.resource,
                s.source,
                dur,
                detail,
            ));
        }
    }
    if dump.dropped > 0 {
        out.push_str(&format!(
            "({} spans dropped under contention)\n",
            dump.dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_obs::MetricsRegistry;

    #[test]
    fn table_lists_every_series_and_sources() {
        let reg = MetricsRegistry::new("as-7");
        reg.counter("stm", "puts").add(3);
        reg.gauge("stm", "channel_items").set(2);
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "mem")])
            .inc();
        reg.histogram("rpc", "surrogate_latency_us").record(40);
        let table = render_snapshot_table(&reg.snapshot());
        assert!(table.starts_with("sources: as-7\n"));
        assert!(table.contains("stm/puts"));
        assert!(table.contains("stm/channel_items"));
        assert!(table.contains("clf/msgs_sent{transport=mem}"));
        assert!(table.contains("count=1"));
    }

    #[test]
    fn empty_snapshot_renders_sources_line_only() {
        let table = render_snapshot_table(&Snapshot::default());
        assert_eq!(table, "sources: \n");
    }

    #[test]
    fn trace_timelines_group_by_trace_and_timestamp() {
        let reg = MetricsRegistry::new("as-0");
        let tracer = reg.tracer();
        tracer.set_sampling(1);
        let ctx = tracer.begin_trace(5).unwrap();
        let child = tracer.finish(ctx, dstampede_obs::SpanKind::Put, "chan:0/0", 5, 10, "");
        tracer.instant(child, dstampede_obs::SpanKind::Get, "chan:0/0", 5, "");
        let text = render_trace_timelines(&tracer.dump());
        assert!(text.contains(&format!("trace {} ts=5 (2 spans)", ctx.trace)));
        assert!(text.contains("put"));
        assert!(text.contains("get"));
        assert!(text.contains("@as-0"));
    }

    #[test]
    fn empty_trace_dump_renders_placeholder() {
        let text = render_trace_timelines(&TraceDump::default());
        assert!(text.contains("no spans"));
    }
}
