//! Human-readable rendering of telemetry snapshots, trace dumps,
//! health reports, and flight-recorder history.
//!
//! Used by `dstampede-cli stats`/`trace`/`health`/`watch` to print the
//! cluster-wide views; kept in the library so tools embedding the
//! client can reuse them.

use dstampede_obs::{HealthReport, HealthState, HistoryDump, SeriesField, Snapshot, TraceDump};
use dstampede_wire::NsEntry;

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{inner}}}")
}

/// Renders a snapshot as an aligned text table: one section per sample
/// kind, one row per series, with count/mean/p50/p99 columns for
/// histograms. Sources (the contributing address spaces) head the
/// output, so a cluster-wide pull shows who answered.
#[must_use]
pub fn render_snapshot_table(snap: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for c in &snap.counters {
        rows.push((
            format!(
                "{}/{}{}",
                c.id.subsystem,
                c.id.name,
                label_suffix(&c.id.labels)
            ),
            c.value.to_string(),
        ));
    }
    for g in &snap.gauges {
        rows.push((
            format!(
                "{}/{}{}",
                g.id.subsystem,
                g.id.name,
                label_suffix(&g.id.labels)
            ),
            g.value.to_string(),
        ));
    }
    for h in &snap.histograms {
        rows.push((
            format!(
                "{}/{}{}",
                h.id.subsystem,
                h.id.name,
                label_suffix(&h.id.labels)
            ),
            format!(
                "count={} mean={} p50={} p99={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            ),
        ));
    }
    let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
    let mut out = format!("sources: {}\n", snap.sources.join(", "));
    for (name, value) in rows {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    out
}

/// Renders an interval delta (a [`Snapshot::delta_since`] result) as
/// an aligned table headed with the window length: counters as the
/// window's increment plus a per-second rate, gauges at their level,
/// histograms as the window's sample count with interpolated
/// p50/p90/p99/p99.9. Series that did not move in the window are
/// dropped by `delta_since` itself, so a quiet interval renders short.
#[must_use]
pub fn render_interval_table(delta: &Snapshot, secs: f64) -> String {
    let rate = |v: u64| -> String {
        if secs > 0.0 {
            format!("{v} ({:.1}/s)", v as f64 / secs)
        } else {
            v.to_string()
        }
    };
    let mut rows: Vec<(String, String)> = Vec::new();
    for c in &delta.counters {
        rows.push((
            format!(
                "{}/{}{}",
                c.id.subsystem,
                c.id.name,
                label_suffix(&c.id.labels)
            ),
            rate(c.value),
        ));
    }
    for g in &delta.gauges {
        rows.push((
            format!(
                "{}/{}{}",
                g.id.subsystem,
                g.id.name,
                label_suffix(&g.id.labels)
            ),
            g.value.to_string(),
        ));
    }
    for h in &delta.histograms {
        rows.push((
            format!(
                "{}/{}{}",
                h.id.subsystem,
                h.id.name,
                label_suffix(&h.id.labels)
            ),
            format!(
                "count={} p50={} p90={} p99={} p99.9={}",
                h.count,
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.quantile(0.999)
            ),
        ));
    }
    let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
    let mut out = format!(
        "window: {secs:.1}s  sources: {}\n",
        delta.sources.join(", ")
    );
    if rows.is_empty() {
        out.push_str("(no movement in window)\n");
    }
    for (name, value) in rows {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    out
}

/// Renders a trace dump as per-item timelines: one block per
/// `(trace, timestamp)` pair, its spans ordered by start time and
/// offset from the timeline's first span. A cluster-wide pull shows
/// an item's whole journey — put on one address space, RPC hops,
/// get/consume elsewhere, GC at the end — in one block.
#[must_use]
pub fn render_trace_timelines(dump: &TraceDump) -> String {
    if dump.spans.is_empty() {
        return format!("(no spans; dropped={})\n", dump.dropped);
    }
    let mut out = String::new();
    for ((trace, ts), spans) in dump.timelines() {
        let origin = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        out.push_str(&format!("trace {trace} ts={ts} ({} spans)\n", spans.len()));
        let mut ordered = spans;
        ordered.sort_by_key(|s| (s.start_us, s.id));
        for s in ordered {
            let dur = if s.dur_us > 0 {
                format!(" dur={}us", s.dur_us)
            } else {
                String::new()
            };
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(" {}", s.detail)
            };
            out.push_str(&format!(
                "  +{:>8}us {:<10} {:<20} @{}{}{}\n",
                s.start_us.saturating_sub(origin),
                s.kind.name(),
                s.resource,
                s.source,
                dur,
                detail,
            ));
        }
    }
    if dump.dropped > 0 {
        out.push_str(&format!(
            "({} spans dropped under contention)\n",
            dump.dropped
        ));
    }
    out
}

/// Renders the last (up to) `width` values of a series as a unicode
/// sparkline, scaled to the window's own min/max (a flat window renders
/// mid-height). Empty input renders empty.
#[must_use]
pub fn sparkline(values: &[i64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail = &values[values.len().saturating_sub(width)..];
    if tail.is_empty() {
        return String::new();
    }
    let min = tail.iter().copied().min().unwrap_or(0);
    let max = tail.iter().copied().max().unwrap_or(0);
    let span = max.saturating_sub(min);
    tail.iter()
        .map(|&v| {
            if span == 0 {
                BARS[3]
            } else {
                let step = ((v.saturating_sub(min)) as i128 * (BARS.len() as i128 - 1)
                    / span as i128) as usize;
                BARS[step.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Per-sample increments of a (monotonic) series — what a counter did
/// between consecutive recorder ticks. Decreases clamp to zero.
fn deltas(samples: &[(i64, i64)]) -> Vec<i64> {
    samples
        .windows(2)
        .map(|w| (w[1].1 - w[0].1).max(0))
        .collect()
}

/// Renders a health report as an aligned table, worst states first:
/// one row per `(source, subject)` with the state, the reason it was
/// adopted, and its age in ticks. Heads the output with the overall
/// (worst) state so scripts can grep the first line.
#[must_use]
pub fn render_health_table(report: &HealthReport) -> String {
    let overall = if report.entries.is_empty() {
        "unknown (no subjects observed)".to_owned()
    } else {
        report.worst().to_string()
    };
    let mut out = format!("cluster health: {overall}\n");
    let mut entries: Vec<_> = report.entries.iter().collect();
    entries.sort_by(|a, b| {
        b.state
            .cmp(&a.state)
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.subject.cmp(&b.subject))
    });
    let src_w = entries.iter().map(|e| e.source.len()).max().unwrap_or(6);
    let sub_w = entries.iter().map(|e| e.subject.len()).max().unwrap_or(7);
    out.push_str(&format!(
        "{:<src_w$}  {:<sub_w$}  {:<8}  {:>5}  reason\n",
        "source", "subject", "state", "age"
    ));
    for e in entries {
        out.push_str(&format!(
            "{:<src_w$}  {:<sub_w$}  {:<8}  {:>5}  {}\n",
            e.source,
            e.subject,
            e.state.to_string(),
            e.tick.saturating_sub(e.since_tick),
            e.reason,
        ));
    }
    out
}

/// One frame of the `watch` dashboard: per-node health, the hottest
/// containers by STM occupancy, and RTT/retransmit sparklines per node,
/// all derived from a cluster-wide health report plus history dump.
#[must_use]
pub fn render_watch(health: &HealthReport, history: &HistoryDump) -> String {
    const SPARK_WIDTH: usize = 30;
    let mut out = render_health_table(health);

    // Rank nodes by their latest STM occupancy (channel + queue items).
    let mut sources: Vec<&str> = history.series.iter().map(|s| s.source.as_str()).collect();
    sources.sort_unstable();
    sources.dedup();
    let mut hot: Vec<(i64, &str, Vec<i64>)> = sources
        .iter()
        .map(|src| {
            let mut merged: std::collections::BTreeMap<i64, i64> =
                std::collections::BTreeMap::new();
            for name in ["channel_items", "queue_items"] {
                if let Some(s) = history.series_for(src, "stm", name, SeriesField::Value) {
                    for &(ts, v) in &s.samples {
                        *merged.entry(ts).or_insert(0) += v;
                    }
                }
            }
            let values: Vec<i64> = merged.into_values().collect();
            (values.last().copied().unwrap_or(0), *src, values)
        })
        .collect();
    hot.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    if hot.iter().any(|(_, _, v)| !v.is_empty()) {
        out.push_str("\nstm occupancy (items, hottest first)\n");
        for (latest, src, values) in &hot {
            if values.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  {src:<8} {:<SPARK_WIDTH$} {latest}\n",
                sparkline(values, SPARK_WIDTH)
            ));
        }
    }

    // Transport behaviour per node: smoothed RTT level, retransmits per
    // tick (from the cumulative counter's increments).
    let mut wrote_header = false;
    for src in &sources {
        let srtt = history
            .series_for(src, "clf", "srtt_us", SeriesField::Value)
            .map(|s| s.samples.iter().map(|&(_, v)| v).collect::<Vec<_>>())
            .unwrap_or_default();
        let retr = history
            .series_for(src, "clf", "retransmits", SeriesField::Value)
            .map(|s| deltas(&s.samples))
            .unwrap_or_default();
        if srtt.is_empty() && retr.is_empty() {
            continue;
        }
        if !wrote_header {
            out.push_str("\ntransport (srtt us / retransmits per tick)\n");
            wrote_header = true;
        }
        out.push_str(&format!(
            "  {src:<8} rtt  {:<SPARK_WIDTH$} {}\n",
            sparkline(&srtt, SPARK_WIDTH),
            srtt.last().copied().unwrap_or(0)
        ));
        out.push_str(&format!(
            "  {:<8} retr {:<SPARK_WIDTH$} {}\n",
            "",
            sparkline(&retr, SPARK_WIDTH),
            retr.last().copied().unwrap_or(0)
        ));
    }

    // Open-loop load harness, when a `load_perf` run is live: offered
    // vs achieved arrivals per tick (a widening gap is saturation) and
    // the corrected-p99 level the harness publishes.
    let mut wrote_load = false;
    for src in &sources {
        let offered = history
            .series_for(src, "load", "offered_ops", SeriesField::Value)
            .map(|s| deltas(&s.samples))
            .unwrap_or_default();
        let achieved = history
            .series_for(src, "load", "achieved_ops", SeriesField::Value)
            .map(|s| deltas(&s.samples))
            .unwrap_or_default();
        let p99 = history
            .series_for(src, "load", "p99_us", SeriesField::Value)
            .map(|s| s.samples.iter().map(|&(_, v)| v).collect::<Vec<_>>())
            .unwrap_or_default();
        if offered.is_empty() && achieved.is_empty() && p99.is_empty() {
            continue;
        }
        if !wrote_load {
            out.push_str("\nload (offered/achieved per tick, corrected p99 us)\n");
            wrote_load = true;
        }
        out.push_str(&format!(
            "  {src:<8} offr {:<SPARK_WIDTH$} {}\n",
            sparkline(&offered, SPARK_WIDTH),
            offered.last().copied().unwrap_or(0)
        ));
        out.push_str(&format!(
            "  {:<8} achv {:<SPARK_WIDTH$} {}\n",
            "",
            sparkline(&achieved, SPARK_WIDTH),
            achieved.last().copied().unwrap_or(0)
        ));
        out.push_str(&format!(
            "  {:<8} p99  {:<SPARK_WIDTH$} {}\n",
            "",
            sparkline(&p99, SPARK_WIDTH),
            p99.last().copied().unwrap_or(0)
        ));
    }

    if history.total_dropped() > 0 {
        out.push_str(&format!(
            "({} history samples overwritten)\n",
            history.total_dropped()
        ));
    }
    out
}

/// Renders the cluster's resource→node placement map: one row per
/// replicated resource (from the primaries' advertised
/// `repl/follower{resource=...}` gauges) joined with the name server's
/// registrations, with the primary's replication lag
/// (`repl/node_lag{node=...}`) and its `repl` health subject.
///
/// A follower of `-` means the route was retired (the follower was an
/// old peer without the replication RPCs); a named entry with no
/// follower gauge is unreplicated (created before replication was
/// enabled, or on a solo node).
#[must_use]
pub fn render_placement_table(
    entries: &[NsEntry],
    snap: &Snapshot,
    health: &HealthReport,
) -> String {
    // resource string → follower id (from the primary's gauges).
    let mut followers: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for g in &snap.gauges {
        if g.id.subsystem == "repl" && g.id.name == "follower" {
            if let Some((_, resource)) = g.id.labels.iter().find(|(k, _)| k == "resource") {
                followers.insert(resource.clone(), g.value);
            }
        }
    }
    // node (as-N) → replication lag.
    let mut lags: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for g in &snap.gauges {
        if g.id.subsystem == "repl" && g.id.name == "node_lag" {
            if let Some((_, node)) = g.id.labels.iter().find(|(k, _)| k == "node") {
                lags.insert(node.clone(), g.value);
            }
        }
    }
    // resource string → registered names.
    let mut names: std::collections::BTreeMap<String, Vec<&str>> =
        std::collections::BTreeMap::new();
    for e in entries {
        names
            .entry(e.resource.to_string())
            .or_default()
            .push(&e.name);
    }

    let mut resources: Vec<String> = followers.keys().cloned().collect();
    for r in names.keys() {
        if !followers.contains_key(r) {
            resources.push(r.clone());
        }
    }
    resources.sort();
    if resources.is_empty() {
        return "(no resources placed)\n".to_owned();
    }

    // `chan:OWNER.INDEX` / `queue:OWNER.INDEX` → the primary node name.
    let primary_of = |resource: &str| -> String {
        resource
            .split_once(':')
            .and_then(|(_, rest)| rest.split_once('.'))
            .map_or_else(|| "?".to_owned(), |(owner, _)| format!("as-{owner}"))
    };

    let mut rows: Vec<[String; 5]> = Vec::new();
    for resource in &resources {
        let primary = primary_of(resource);
        let follower = match followers.get(resource) {
            Some(v) if *v >= 0 => format!("as-{v}"),
            Some(_) => "- (retired)".to_owned(),
            None => "-".to_owned(),
        };
        let lag = lags
            .get(&primary)
            .map_or_else(|| "-".to_owned(), ToString::to_string);
        let state = health
            .entry(&primary, "repl")
            .map_or_else(|| "-".to_owned(), |e| e.state.to_string());
        let name = names
            .get(resource)
            .map_or_else(String::new, |n| n.join(","));
        rows.push([
            resource.clone(),
            name,
            primary,
            follower,
            lag + " / " + &state,
        ]);
    }

    let headers = ["resource", "name", "primary", "follower", "lag / health"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{h:<w$}  ", w = widths[i]));
    }
    out.push('\n');
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{cell:<w$}  ", w = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// True when the report holds any state at least as bad as `level` —
/// the `health` command's exit-code predicate. An empty report counts
/// as healthy.
#[must_use]
pub fn health_at_least(report: &HealthReport, level: HealthState) -> bool {
    !report.entries.is_empty() && report.worst() >= level
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_obs::MetricsRegistry;

    #[test]
    fn table_lists_every_series_and_sources() {
        let reg = MetricsRegistry::new("as-7");
        reg.counter("stm", "puts").add(3);
        reg.gauge("stm", "channel_items").set(2);
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "mem")])
            .inc();
        reg.histogram("rpc", "surrogate_latency_us").record(40);
        let table = render_snapshot_table(&reg.snapshot());
        assert!(table.starts_with("sources: as-7\n"));
        assert!(table.contains("stm/puts"));
        assert!(table.contains("stm/channel_items"));
        assert!(table.contains("clf/msgs_sent{transport=mem}"));
        assert!(table.contains("count=1"));
    }

    #[test]
    fn empty_snapshot_renders_sources_line_only() {
        let table = render_snapshot_table(&Snapshot::default());
        assert_eq!(table, "sources: \n");
    }

    #[test]
    fn trace_timelines_group_by_trace_and_timestamp() {
        let reg = MetricsRegistry::new("as-0");
        let tracer = reg.tracer();
        tracer.set_sampling(1);
        let ctx = tracer.begin_trace(5).unwrap();
        let child = tracer.finish(ctx, dstampede_obs::SpanKind::Put, "chan:0/0", 5, 10, "");
        tracer.instant(child, dstampede_obs::SpanKind::Get, "chan:0/0", 5, "");
        let text = render_trace_timelines(&tracer.dump());
        assert!(text.contains(&format!("trace {} ts=5 (2 spans)", ctx.trace)));
        assert!(text.contains("put"));
        assert!(text.contains("get"));
        assert!(text.contains("@as-0"));
    }

    #[test]
    fn empty_trace_dump_renders_placeholder() {
        let text = render_trace_timelines(&TraceDump::default());
        assert!(text.contains("no spans"));
    }

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[5, 5, 5], 10).chars().count(), 3);
        let line = sparkline(&[0, 10], 10);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
        // Only the last `width` values render.
        assert_eq!(sparkline(&[1, 2, 3, 4], 2).chars().count(), 2);
    }

    #[test]
    fn health_table_sorts_worst_first() {
        use dstampede_obs::HealthEngine;
        let engine = HealthEngine::new(dstampede_obs::HealthPolicy::default());
        engine.observe(1, "peer:as-1", HealthState::Healthy, "ok");
        engine.observe(1, "peer:as-2", HealthState::Dead, "declared dead");
        let report = engine.report("as-0");
        let text = render_health_table(&report);
        assert!(text.starts_with("cluster health: dead\n"));
        let dead_at = text.find("peer:as-2").unwrap();
        let healthy_at = text.find("peer:as-1").unwrap();
        assert!(dead_at < healthy_at);
        assert!(health_at_least(&report, HealthState::Suspect));
        assert!(!health_at_least(
            &HealthReport::default(),
            HealthState::Degraded
        ));
    }

    #[test]
    fn placement_table_joins_names_followers_and_lag() {
        use dstampede_core::{AsId, ChanId, ResourceId};
        let reg = MetricsRegistry::new("as-1");
        reg.gauge_labeled("repl", "follower", &[("resource", "chan:1.0")])
            .set(2);
        reg.gauge_labeled("repl", "node_lag", &[("node", "as-1")])
            .set(7);
        let entries = vec![NsEntry {
            name: "video/feed".into(),
            resource: ResourceId::Channel(ChanId {
                owner: AsId(1),
                index: 0,
            }),
            meta: String::new(),
        }];
        let engine = dstampede_obs::HealthEngine::new(dstampede_obs::HealthPolicy::default());
        engine.observe(1, "repl", HealthState::Healthy, "replication lag 7");
        let text = render_placement_table(&entries, &reg.snapshot(), &engine.report("as-1"));
        assert!(text.contains("chan:1.0"));
        assert!(text.contains("video/feed"));
        assert!(text.contains("as-1")); // primary
        assert!(text.contains("as-2")); // follower
        assert!(text.contains('7')); // lag
        assert!(text.contains("healthy"));
    }

    #[test]
    fn placement_table_handles_unreplicated_and_empty() {
        assert_eq!(
            render_placement_table(&[], &Snapshot::default(), &HealthReport::default()),
            "(no resources placed)\n"
        );
        use dstampede_core::{AsId, QueueId, ResourceId};
        let entries = vec![NsEntry {
            name: "jobs".into(),
            resource: ResourceId::Queue(QueueId {
                owner: AsId(0),
                index: 3,
            }),
            meta: String::new(),
        }];
        let text = render_placement_table(&entries, &Snapshot::default(), &HealthReport::default());
        assert!(text.contains("queue:0.3"));
        assert!(text.contains("jobs"));
    }

    #[test]
    fn interval_table_rates_counters_and_quantiles_histograms() {
        let reg = MetricsRegistry::new("as-0");
        reg.counter("load", "achieved_ops").add(100);
        reg.histogram("load", "latency_us").record(10);
        let prev = reg.snapshot();
        reg.counter("load", "achieved_ops").add(50);
        for _ in 0..99 {
            reg.histogram("load", "latency_us").record(10);
        }
        reg.histogram("load", "latency_us").record(100_000);
        let delta = reg.snapshot().delta_since(&prev);
        let text = render_interval_table(&delta, 2.0);
        assert!(text.starts_with("window: 2.0s"), "{text}");
        assert!(text.contains("load/achieved_ops"), "{text}");
        assert!(text.contains("50 (25.0/s)"), "{text}");
        assert!(text.contains("count=100"), "{text}");
        assert!(text.contains("p99.9="), "{text}");
        // A window with no movement renders the placeholder.
        let quiet = reg.snapshot().delta_since(&reg.snapshot());
        assert!(render_interval_table(&quiet, 1.0).contains("no movement"));
    }

    #[test]
    fn watch_renders_load_panel_when_series_present() {
        use dstampede_obs::{HealthEngine, HistoryRecorder};
        let reg = MetricsRegistry::new("as-0");
        reg.counter("load", "offered_ops").add(10);
        reg.counter("load", "achieved_ops").add(10);
        reg.gauge("load", "p99_us").set(450);
        let recorder = HistoryRecorder::new(16);
        recorder.sample(&reg, 1_000);
        reg.counter("load", "offered_ops").add(20);
        reg.counter("load", "achieved_ops").add(15);
        reg.gauge("load", "p99_us").set(900);
        recorder.sample(&reg, 2_000);
        let engine = HealthEngine::new(dstampede_obs::HealthPolicy::default());
        engine.observe(1, "stm", HealthState::Healthy, "ok");
        let text = render_watch(&engine.report("as-0"), &recorder.dump("as-0"));
        assert!(text.contains("load (offered/achieved per tick"), "{text}");
        assert!(text.contains("offr"), "{text}");
        assert!(text.contains("achv"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains(" 900\n"), "{text}");

        // Without load series the panel is absent.
        let quiet = MetricsRegistry::new("as-1");
        quiet.gauge("stm", "channel_items").set(1);
        let rec2 = HistoryRecorder::new(4);
        rec2.sample(&quiet, 1_000);
        let text = render_watch(&engine.report("as-1"), &rec2.dump("as-1"));
        assert!(!text.contains("load ("), "{text}");
    }

    #[test]
    fn watch_renders_occupancy_and_transport_sections() {
        use dstampede_obs::{HealthEngine, HistoryRecorder};
        let reg = MetricsRegistry::new("as-0");
        reg.gauge("stm", "channel_items").set(4);
        reg.gauge("clf", "srtt_us").set(250);
        reg.counter("clf", "retransmits").add(2);
        let recorder = HistoryRecorder::new(16);
        recorder.sample(&reg, 1_000);
        reg.gauge("stm", "channel_items").set(9);
        reg.counter("clf", "retransmits").add(3);
        recorder.sample(&reg, 2_000);
        let engine = HealthEngine::new(dstampede_obs::HealthPolicy::default());
        engine.observe(1, "stm", HealthState::Healthy, "occupancy 9");
        let text = render_watch(&engine.report("as-0"), &recorder.dump("as-0"));
        assert!(text.contains("stm occupancy"));
        assert!(text.contains("as-0"));
        assert!(text.contains("transport"));
        // Latest occupancy value is printed after the sparkline.
        assert!(text.contains(" 9\n"));
    }
}
