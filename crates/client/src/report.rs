//! Human-readable rendering of telemetry snapshots.
//!
//! Used by `dstampede-cli stats` to print the cluster-wide table; kept
//! in the library so tools embedding the client can reuse it.

use dstampede_obs::Snapshot;

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{inner}}}")
}

/// Renders a snapshot as an aligned text table: one section per sample
/// kind, one row per series, with count/mean/p50/p99 columns for
/// histograms. Sources (the contributing address spaces) head the
/// output, so a cluster-wide pull shows who answered.
#[must_use]
pub fn render_snapshot_table(snap: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for c in &snap.counters {
        rows.push((
            format!(
                "{}/{}{}",
                c.id.subsystem,
                c.id.name,
                label_suffix(&c.id.labels)
            ),
            c.value.to_string(),
        ));
    }
    for g in &snap.gauges {
        rows.push((
            format!(
                "{}/{}{}",
                g.id.subsystem,
                g.id.name,
                label_suffix(&g.id.labels)
            ),
            g.value.to_string(),
        ));
    }
    for h in &snap.histograms {
        rows.push((
            format!(
                "{}/{}{}",
                h.id.subsystem,
                h.id.name,
                label_suffix(&h.id.labels)
            ),
            format!(
                "count={} mean={} p50={} p99={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            ),
        ));
    }
    let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
    let mut out = format!("sources: {}\n", snap.sources.join(", "));
    for (name, value) in rows {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_obs::MetricsRegistry;

    #[test]
    fn table_lists_every_series_and_sources() {
        let reg = MetricsRegistry::new("as-7");
        reg.counter("stm", "puts").add(3);
        reg.gauge("stm", "channel_items").set(2);
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "mem")])
            .inc();
        reg.histogram("rpc", "surrogate_latency_us").record(40);
        let table = render_snapshot_table(&reg.snapshot());
        assert!(table.starts_with("sources: as-7\n"));
        assert!(table.contains("stm/puts"));
        assert!(table.contains("stm/channel_items"));
        assert!(table.contains("clf/msgs_sent{transport=mem}"));
        assert!(table.contains("count=1"));
    }

    #[test]
    fn empty_snapshot_renders_sources_line_only() {
        let table = render_snapshot_table(&Snapshot::default());
        assert_eq!(table, "sources: \n");
    }
}
