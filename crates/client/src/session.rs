//! End-device client sessions.
//!
//! An [`EndDevice`] is a tentacle of the Octopus: it attaches to a cluster
//! listener over TCP, negotiates its marshalling codec (XDR for the C
//! flavour, JDR for the Java flavour — paper §3.2.1), and then issues
//! D-Stampede API calls as RPCs fielded by its surrogate thread on the
//! cluster. Calls on one session are serialized, mirroring the
//! one-surrogate-per-device execution model; a client program that wants a
//! producer and a display to block independently attaches once per thread,
//! as the paper's video-conferencing client does.
//!
//! Garbage notifications queued by the surrogate arrive piggy-backed on
//! replies and are dispatched to locally registered hooks (§3.2.4).

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dstampede_core::{
    AsId, ChanId, ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, QueueId, ResourceId, StmError,
    StmResult, StreamItem, TagFilter, Timestamp, VirtualTime,
};
use dstampede_obs::{trace, HealthReport, HistoryDump, Snapshot, TraceDump};
use dstampede_wire::{
    codec_for, read_frame_bytes, write_encoded, BatchPutItem, Codec, CodecId, GcNote, NsEntry,
    Reply, Request, RequestFrame, WaitSpec,
};

/// Encodes batch-put entries with their per-item trace contexts.
fn batch_items(entries: Vec<(Timestamp, Item)>) -> Vec<BatchPutItem> {
    entries
        .into_iter()
        .map(|(ts, item)| BatchPutItem {
            ts,
            tag: item.tag(),
            payload: item.payload_bytes(),
            trace: item.trace_context().or_else(trace::current),
        })
        .collect()
}

/// Maps a batch-results code vector back to per-item outcomes.
fn codes_to_results(codes: Vec<u32>, expected: usize) -> StmResult<Vec<StmResult<()>>> {
    if codes.len() != expected {
        return Err(StmError::Protocol(format!(
            "batch reply has {} codes for {expected} items",
            codes.len()
        )));
    }
    Ok(codes
        .into_iter()
        .map(|c| {
            if c == 0 {
                Ok(())
            } else {
                Err(StmError::from_code(c, "batch put"))
            }
        })
        .collect())
}

/// Byte stream a session can run over (TCP, an in-process pipe, or a
/// shaped wrapper).
pub trait SessionStream: Read + Write + Send {}

impl<S: Read + Write + Send> SessionStream for S {}

/// Client-side garbage hook.
pub type ClientGarbageHook = Arc<dyn Fn(&GcNote) + Send + Sync>;

struct Inner {
    stream: Mutex<Box<dyn SessionStream>>,
    codec: Arc<dyn Codec>,
    session: AtomicU64,
    as_id: Mutex<AsId>,
    next_seq: AtomicU64,
    hooks: Mutex<HashMap<ResourceId, ClientGarbageHook>>,
    name: String,
}

impl Inner {
    fn call(&self, req: Request) -> StmResult<Reply> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let frame = RequestFrame::new(seq, req).with_trace(trace::current());
        let encoded = self
            .codec
            .encode_request(&frame)
            .map_err(|e| StmError::Protocol(e.to_string()))?;
        let mut stream = self.stream.lock();
        write_encoded(&mut *stream, &encoded).map_err(|_| StmError::Disconnected)?;
        let frame = read_frame_bytes(&mut *stream).map_err(|_| StmError::Disconnected)?;
        drop(stream);
        let reply = self
            .codec
            .decode_reply(&frame)
            .map_err(|e| StmError::Protocol(e.to_string()))?;
        if reply.seq != seq {
            return Err(StmError::Protocol(format!(
                "reply seq {} does not match request seq {seq}",
                reply.seq
            )));
        }
        self.dispatch_gc_notes(&reply.gc_notes);
        // The surrogate hands back the context of whatever item the call
        // touched; adopting it keeps the causal chain unbroken across
        // client-side hops (get here, put there).
        if reply.trace.is_some() {
            let _ = trace::set_current(reply.trace);
        }
        reply.reply.into_result()
    }

    fn dispatch_gc_notes(&self, notes: &[GcNote]) {
        if notes.is_empty() {
            return;
        }
        let hooks = self.hooks.lock();
        for note in notes {
            if let Some(hook) = hooks.get(&note.resource) {
                hook(note);
            }
        }
    }
}

/// A client session with the cluster.
///
/// Cloning shares the session (and its call serialization).
///
/// # Examples
///
/// See the crate-level documentation for an end-to-end example against a
/// running cluster.
#[derive(Clone)]
pub struct EndDevice {
    inner: Arc<Inner>,
}

impl EndDevice {
    /// Attaches to a cluster listener over TCP with the given codec — the
    /// general form of the C/Java client library entry points.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the listener is unreachable or the
    /// handshake fails.
    pub fn attach<A: ToSocketAddrs>(addr: A, codec: CodecId, name: &str) -> StmResult<EndDevice> {
        let stream = dstampede_clf::tcp_connect(addr).map_err(|_| StmError::Disconnected)?;
        EndDevice::attach_over(Box::new(stream), codec, name)
    }

    /// Attaches as a **C client** (XDR marshalling).
    ///
    /// # Errors
    ///
    /// As [`EndDevice::attach`].
    pub fn attach_c<A: ToSocketAddrs>(addr: A, name: &str) -> StmResult<EndDevice> {
        EndDevice::attach(addr, CodecId::Xdr, name)
    }

    /// Attaches as a **Java client** (JDR object marshalling).
    ///
    /// # Errors
    ///
    /// As [`EndDevice::attach`].
    pub fn attach_java<A: ToSocketAddrs>(addr: A, name: &str) -> StmResult<EndDevice> {
        EndDevice::attach(addr, CodecId::Jdr, name)
    }

    /// Attaches over an arbitrary byte stream (a shaped TCP stream, or an
    /// in-process pipe in tests).
    ///
    /// # Errors
    ///
    /// As [`EndDevice::attach`].
    pub fn attach_over(
        mut stream: Box<dyn SessionStream>,
        codec: CodecId,
        name: &str,
    ) -> StmResult<EndDevice> {
        stream
            .write_all(&[codec.byte()])
            .map_err(|_| StmError::Disconnected)?;
        stream.flush().map_err(|_| StmError::Disconnected)?;
        let inner = Arc::new(Inner {
            stream: Mutex::new(stream),
            codec: codec_for(codec),
            session: AtomicU64::new(0),
            as_id: Mutex::new(AsId(0)),
            next_seq: AtomicU64::new(1),
            hooks: Mutex::new(HashMap::new()),
            name: name.to_owned(),
        });
        let reply = inner.call(Request::Attach {
            client_name: name.to_owned(),
        })?;
        match reply {
            Reply::Attached { session, as_id } => {
                inner.session.store(session, Ordering::Release);
                *inner.as_id.lock() = as_id;
            }
            other => return Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
        Ok(EndDevice { inner })
    }

    /// The session id assigned by the listener.
    #[must_use]
    pub fn session(&self) -> u64 {
        self.inner.session.load(Ordering::Acquire)
    }

    /// The address space hosting this session's surrogate.
    #[must_use]
    pub fn as_id(&self) -> AsId {
        *self.inner.as_id.lock()
    }

    /// The client name given at attach.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The codec this session negotiated.
    #[must_use]
    pub fn codec(&self) -> CodecId {
        self.inner.codec.id()
    }

    /// Round-trip liveness/latency probe.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn ping(&self, nonce: u64) -> StmResult<u64> {
        match self.inner.call(Request::Ping { nonce })? {
            Reply::Pong { nonce } => Ok(nonce),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Creates a channel in the surrogate's address space.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn create_channel(&self, name: Option<&str>, attrs: ChannelAttrs) -> StmResult<ChanId> {
        match self.inner.call(Request::ChannelCreate {
            name: name.map(str::to_owned),
            attrs,
        })? {
            Reply::Created {
                resource: ResourceId::Channel(id),
            } => Ok(id),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Creates a queue in the surrogate's address space.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn create_queue(&self, name: Option<&str>, attrs: QueueAttrs) -> StmResult<QueueId> {
        match self.inner.call(Request::QueueCreate {
            name: name.map(str::to_owned),
            attrs,
        })? {
            Reply::Created {
                resource: ResourceId::Queue(id),
            } => Ok(id),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Opens an input connection to a channel anywhere in the cluster.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] for dangling ids.
    pub fn connect_channel_in(&self, chan: ChanId, interest: Interest) -> StmResult<ClientChanIn> {
        self.connect_channel_in_filtered(chan, interest, TagFilter::Any)
    }

    /// Opens an input connection attending only to item tags that pass
    /// `filter` (the selective-attention filtering extension).
    ///
    /// # Errors
    ///
    /// As [`EndDevice::connect_channel_in`].
    pub fn connect_channel_in_filtered(
        &self,
        chan: ChanId,
        interest: Interest,
        filter: TagFilter,
    ) -> StmResult<ClientChanIn> {
        match self.inner.call(Request::ConnectChannelIn {
            chan,
            interest,
            filter,
        })? {
            Reply::Connected { conn } => Ok(ClientChanIn {
                device: self.clone(),
                chan,
                conn,
            }),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Opens an output connection to a channel anywhere in the cluster.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] for dangling ids.
    pub fn connect_channel_out(&self, chan: ChanId) -> StmResult<ClientChanOut> {
        match self.inner.call(Request::ConnectChannelOut { chan })? {
            Reply::Connected { conn } => Ok(ClientChanOut {
                device: self.clone(),
                chan,
                conn,
            }),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Opens an input connection to a queue anywhere in the cluster.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] for dangling ids.
    pub fn connect_queue_in(&self, queue: QueueId) -> StmResult<ClientQueueIn> {
        match self.inner.call(Request::ConnectQueueIn { queue })? {
            Reply::Connected { conn } => Ok(ClientQueueIn {
                device: self.clone(),
                queue,
                conn,
            }),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Opens an output connection to a queue anywhere in the cluster.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] for dangling ids.
    pub fn connect_queue_out(&self, queue: QueueId) -> StmResult<ClientQueueOut> {
        match self.inner.call(Request::ConnectQueueOut { queue })? {
            Reply::Connected { conn } => Ok(ClientQueueOut {
                device: self.clone(),
                queue,
                conn,
            }),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers a name with the cluster's name server.
    ///
    /// # Errors
    ///
    /// [`StmError::NameExists`] on collision.
    pub fn ns_register(&self, name: &str, resource: ResourceId, meta: &str) -> StmResult<()> {
        match self.inner.call(Request::NsRegister {
            name: name.to_owned(),
            resource,
            meta: meta.to_owned(),
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Looks a name up, optionally blocking until it appears.
    ///
    /// # Errors
    ///
    /// [`StmError::NameAbsent`] (non-blocking) or [`StmError::Timeout`].
    pub fn ns_lookup(&self, name: &str, wait: WaitSpec) -> StmResult<(ResourceId, String)> {
        match self.inner.call(Request::NsLookup {
            name: name.to_owned(),
            wait,
        })? {
            Reply::NsFound { resource, meta } => Ok((resource, meta)),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Removes a name registration.
    ///
    /// # Errors
    ///
    /// [`StmError::NameAbsent`] when unregistered.
    pub fn ns_unregister(&self, name: &str) -> StmResult<()> {
        match self.inner.call(Request::NsUnregister {
            name: name.to_owned(),
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Lists every name registration.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn ns_list(&self) -> StmResult<Vec<NsEntry>> {
        match self.inner.call(Request::NsList)? {
            Reply::NsEntries { entries } => Ok(entries),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pulls a telemetry snapshot from the attached address space —
    /// STM latency/occupancy, GC, CLF, and surrogate RPC series. With
    /// `cluster = true` the address space first fans out to its peers
    /// and merges their snapshots into a cluster-wide view.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn stats(&self, cluster: bool) -> StmResult<Snapshot> {
        match self.inner.call(Request::StatsPull { cluster })? {
            Reply::StatsReport { snapshot } => Snapshot::decode(&snapshot)
                .map_err(|e| StmError::Protocol(format!("bad stats snapshot: {e}"))),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pulls the causal-trace span store from the attached address space
    /// — every sampled item-lifecycle edge (put, wire transfer, surrogate
    /// RPC, get/consume, GC reclamation, synchronize waits) recorded
    /// there. With `cluster = true` the address space fans out to its
    /// peers and merges their dumps, so one pull from any tentacle yields
    /// the cluster-wide trace.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn trace(&self, cluster: bool) -> StmResult<TraceDump> {
        match self.inner.call(Request::TracePull { cluster })? {
            Reply::TraceReport { dump } => TraceDump::decode(&dump)
                .map_err(|e| StmError::Protocol(format!("bad trace dump: {e}"))),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pulls the flight recorder's metric history from the attached
    /// address space — the recent window of every counter/gauge/histogram
    /// series, sampled on the recorder tick. With `cluster = true` the
    /// address space fans out to its peers and merges their windows.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke;
    /// [`StmError::Protocol`] against a cluster predating the flight
    /// recorder.
    pub fn history(&self, cluster: bool) -> StmResult<HistoryDump> {
        match self.inner.call(Request::HistoryPull { cluster })? {
            Reply::HistoryReport { dump } => HistoryDump::decode(&dump)
                .map_err(|e| StmError::Protocol(format!("bad history dump: {e}"))),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pulls the derived health report from the attached address space —
    /// debounced per-peer/per-resource states. With `cluster = true` the
    /// address space fans out to its peers and merges their reports
    /// (fresher, then worse, entries win per subject).
    ///
    /// # Errors
    ///
    /// As [`EndDevice::history`].
    pub fn health(&self, cluster: bool) -> StmResult<HealthReport> {
        match self.inner.call(Request::HealthPull { cluster })? {
            Reply::HealthReport { report } => HealthReport::decode(&report)
                .map_err(|e| StmError::Protocol(format!("bad health report: {e}"))),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers a local garbage hook for a resource and asks the cluster
    /// to queue notifications (paper §3.2.4). Notifications are delivered
    /// on subsequent API calls.
    ///
    /// # Errors
    ///
    /// [`StmError::BadMode`] when the resource lives outside the
    /// surrogate's address space.
    pub fn install_garbage_hook<F>(&self, resource: ResourceId, hook: F) -> StmResult<()>
    where
        F: Fn(&GcNote) + Send + Sync + 'static,
    {
        match self.inner.call(Request::InstallGarbageHook { resource })? {
            Reply::Ok => {
                self.inner.hooks.lock().insert(resource, Arc::new(hook));
                Ok(())
            }
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Starts a background thread that renews this session's lease with
    /// periodic [`Request::Heartbeat`]s — for long-idle end devices
    /// attached to a listener configured with a session lease (any request
    /// renews the lease, so busy devices need no keepalive). The thread
    /// stops when the returned guard drops, or silently when the session
    /// breaks.
    #[must_use]
    pub fn start_keepalive(&self, period: Duration) -> Keepalive {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        // Weak: the keepalive must not hold the session open by itself.
        let inner = Arc::downgrade(&self.inner);
        let thread = std::thread::Builder::new()
            .name("dstampede-keepalive".into())
            .spawn(move || {
                let mut incarnation: u64 = 0;
                'outer: loop {
                    // Sleep in small steps so dropping the guard is prompt.
                    let until = Instant::now() + period;
                    while Instant::now() < until {
                        if thread_stop.load(Ordering::Acquire) {
                            break 'outer;
                        }
                        std::thread::sleep(Duration::from_millis(10).min(period));
                    }
                    let Some(inner) = inner.upgrade() else {
                        break;
                    };
                    incarnation += 1;
                    if inner.call(Request::Heartbeat { incarnation }).is_err() {
                        break;
                    }
                }
            })
            .ok();
        Keepalive { stop, thread }
    }

    /// Detaches cleanly: the surrogate tears down and the session ends.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session was already broken.
    pub fn detach(self) -> StmResult<()> {
        match self.inner.call(Request::Detach)? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

/// Guard for a session keepalive thread; the thread stops when this
/// drops.
pub struct Keepalive {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for Keepalive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keepalive")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for Keepalive {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for EndDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EndDevice")
            .field("name", &self.inner.name)
            .field("session", &self.inner.session)
            .field("as_id", &self.inner.as_id)
            .field("codec", &self.inner.codec.id())
            .finish()
    }
}

/// A client-side input connection to a channel; disconnects on drop.
pub struct ClientChanIn {
    device: EndDevice,
    chan: ChanId,
    conn: u64,
}

impl ClientChanIn {
    /// The channel's id.
    #[must_use]
    pub fn channel_id(&self) -> ChanId {
        self.chan
    }

    /// Gets an item.
    ///
    /// # Errors
    ///
    /// As the core channel `get` family, transported over RPC.
    pub fn get(&self, spec: GetSpec, wait: WaitSpec) -> StmResult<(Timestamp, Item)> {
        // Scope the ambient context so the reply's trace (the item's
        // origin context) lands on the reconstructed item without
        // leaking into unrelated later calls on this thread.
        let guard = trace::scope(trace::current());
        let reply = self.device.inner.call(Request::ChannelGet {
            conn: self.conn,
            spec,
            wait,
        });
        let ctx = trace::current();
        drop(guard);
        match reply? {
            Reply::Item { ts, tag, payload } => {
                Ok((ts, Item::new(payload).with_tag(tag).with_trace(ctx)))
            }
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Typed get via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`ClientChanIn::get`], plus decoding errors from `T`.
    pub fn get_typed<T: StreamItem>(
        &self,
        spec: GetSpec,
        wait: WaitSpec,
    ) -> StmResult<(Timestamp, T)> {
        let (ts, item) = self.get(spec, wait)?;
        Ok((ts, item.decode::<T>()?))
    }

    /// Resolves several get specs in one session round trip. Each spec
    /// resolves independently and non-blocking; per-spec failures come
    /// back in the inner results.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn get_many(&self, specs: &[GetSpec]) -> StmResult<Vec<StmResult<(Timestamp, Item)>>> {
        let reply = self.device.inner.call(Request::GetBatch {
            conn: self.conn,
            specs: specs.to_vec(),
            max: specs.len() as u32,
        })?;
        match reply {
            Reply::BatchItems { items } => {
                if items.len() != specs.len() {
                    return Err(StmError::Protocol(format!(
                        "batch reply has {} items for {} specs",
                        items.len(),
                        specs.len()
                    )));
                }
                Ok(items
                    .into_iter()
                    .map(|got| {
                        if got.code == 0 {
                            Ok((
                                got.ts,
                                Item::new(got.payload)
                                    .with_tag(got.tag)
                                    .with_trace(got.trace),
                            ))
                        } else {
                            Err(StmError::from_code(got.code, "batch get"))
                        }
                    })
                    .collect())
            }
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Declares items through `upto` consumed.
    ///
    /// # Errors
    ///
    /// As the core channel `consume_until`.
    pub fn consume_until(&self, upto: Timestamp) -> StmResult<()> {
        match self.device.inner.call(Request::ChannelConsume {
            conn: self.conn,
            upto,
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Advances the connection's virtual-time promise.
    ///
    /// # Errors
    ///
    /// As the core channel `set_vt`.
    pub fn set_vt(&self, vt: VirtualTime) -> StmResult<()> {
        match self.device.inner.call(Request::ChannelSetVt {
            conn: self.conn,
            vt: vt.floor(),
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

impl fmt::Debug for ClientChanIn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientChanIn")
            .field("chan", &self.chan)
            .field("conn", &self.conn)
            .finish()
    }
}

impl Drop for ClientChanIn {
    fn drop(&mut self) {
        let _ = self
            .device
            .inner
            .call(Request::Disconnect { conn: self.conn });
    }
}

/// A client-side output connection to a channel; disconnects on drop.
pub struct ClientChanOut {
    device: EndDevice,
    chan: ChanId,
    conn: u64,
}

impl ClientChanOut {
    /// The channel's id.
    #[must_use]
    pub fn channel_id(&self) -> ChanId {
        self.chan
    }

    /// Puts an item.
    ///
    /// # Errors
    ///
    /// As the core channel `put` family, transported over RPC.
    pub fn put(&self, ts: Timestamp, item: Item, wait: WaitSpec) -> StmResult<()> {
        // An item relayed from a get carries its origin context; ride it
        // on the request frame so the cluster stitches both hops into
        // one trace.
        let _guard = trace::scope(item.trace_context().or_else(trace::current));
        match self.device.inner.call(Request::ChannelPut {
            conn: self.conn,
            ts,
            tag: item.tag(),
            payload: item.payload_bytes(),
            wait,
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Puts several items in one session round trip. Items apply
    /// independently — no transactional atomicity across the batch;
    /// per-item outcomes come back in order.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn put_many(
        &self,
        entries: Vec<(Timestamp, Item)>,
        wait: WaitSpec,
    ) -> StmResult<Vec<StmResult<()>>> {
        let n = entries.len();
        match self.device.inner.call(Request::PutBatch {
            conn: self.conn,
            items: batch_items(entries),
            wait,
        })? {
            Reply::BatchResults { codes } => codes_to_results(codes, n),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

impl ClientChanOut {
    /// Typed put via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`ClientChanOut::put`].
    pub fn put_typed<T: StreamItem>(
        &self,
        ts: Timestamp,
        value: &T,
        wait: WaitSpec,
    ) -> StmResult<()> {
        self.put(ts, value.to_item(), wait)
    }
}

impl fmt::Debug for ClientChanOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientChanOut")
            .field("chan", &self.chan)
            .field("conn", &self.conn)
            .finish()
    }
}

impl Drop for ClientChanOut {
    fn drop(&mut self) {
        let _ = self
            .device
            .inner
            .call(Request::Disconnect { conn: self.conn });
    }
}

/// A client-side input connection to a queue; disconnects on drop,
/// requeueing unsettled tickets on the cluster.
pub struct ClientQueueIn {
    device: EndDevice,
    queue: QueueId,
    conn: u64,
}

impl ClientQueueIn {
    /// The queue's id.
    #[must_use]
    pub fn queue_id(&self) -> QueueId {
        self.queue
    }

    /// Gets the next item and its settlement ticket.
    ///
    /// # Errors
    ///
    /// As the core queue `get` family, transported over RPC.
    pub fn get(&self, wait: WaitSpec) -> StmResult<(Timestamp, Item, u64)> {
        let guard = trace::scope(trace::current());
        let reply = self.device.inner.call(Request::QueueGet {
            conn: self.conn,
            wait,
        });
        let ctx = trace::current();
        drop(guard);
        match reply? {
            Reply::QueueItem {
                ts,
                tag,
                payload,
                ticket,
            } => Ok((ts, Item::new(payload).with_tag(tag).with_trace(ctx), ticket)),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Dequeues up to `max` items in one session round trip, non-blocking.
    /// An empty queue yields an empty vector; every returned ticket
    /// settles individually with [`ClientQueueIn::consume`] or
    /// [`ClientQueueIn::requeue`].
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn dequeue_many(&self, max: usize) -> StmResult<Vec<(Timestamp, Item, u64)>> {
        let reply = self.device.inner.call(Request::GetBatch {
            conn: self.conn,
            specs: Vec::new(),
            max: u32::try_from(max).unwrap_or(u32::MAX),
        })?;
        match reply {
            Reply::BatchItems { items } => Ok(items
                .into_iter()
                .take_while(|got| got.code == 0)
                .map(|got| {
                    (
                        got.ts,
                        Item::new(got.payload)
                            .with_tag(got.tag)
                            .with_trace(got.trace),
                        got.ticket,
                    )
                })
                .collect()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Settles a ticket as consumed.
    ///
    /// # Errors
    ///
    /// As the core queue `consume`.
    pub fn consume(&self, ticket: u64) -> StmResult<()> {
        match self.device.inner.call(Request::QueueConsume {
            conn: self.conn,
            ticket,
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Puts an unfinished item back at the head of the queue.
    ///
    /// # Errors
    ///
    /// As the core queue `requeue`.
    pub fn requeue(&self, ticket: u64) -> StmResult<()> {
        match self.device.inner.call(Request::QueueRequeue {
            conn: self.conn,
            ticket,
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

impl fmt::Debug for ClientQueueIn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientQueueIn")
            .field("queue", &self.queue)
            .field("conn", &self.conn)
            .finish()
    }
}

impl Drop for ClientQueueIn {
    fn drop(&mut self) {
        let _ = self
            .device
            .inner
            .call(Request::Disconnect { conn: self.conn });
    }
}

/// A client-side output connection to a queue; disconnects on drop.
pub struct ClientQueueOut {
    device: EndDevice,
    queue: QueueId,
    conn: u64,
}

impl ClientQueueOut {
    /// The queue's id.
    #[must_use]
    pub fn queue_id(&self) -> QueueId {
        self.queue
    }

    /// Puts an item.
    ///
    /// # Errors
    ///
    /// As the core queue `put` family, transported over RPC.
    pub fn put(&self, ts: Timestamp, item: Item, wait: WaitSpec) -> StmResult<()> {
        let _guard = trace::scope(item.trace_context().or_else(trace::current));
        match self.device.inner.call(Request::QueuePut {
            conn: self.conn,
            ts,
            tag: item.tag(),
            payload: item.payload_bytes(),
            wait,
        })? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Enqueues several items in one session round trip. Items enqueue
    /// contiguously in order; per-item outcomes come back in order, with
    /// no transactional atomicity across the batch.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the session broke.
    pub fn enqueue_many(
        &self,
        entries: Vec<(Timestamp, Item)>,
        wait: WaitSpec,
    ) -> StmResult<Vec<StmResult<()>>> {
        let n = entries.len();
        match self.device.inner.call(Request::PutBatch {
            conn: self.conn,
            items: batch_items(entries),
            wait,
        })? {
            Reply::BatchResults { codes } => codes_to_results(codes, n),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

impl fmt::Debug for ClientQueueOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientQueueOut")
            .field("queue", &self.queue)
            .field("conn", &self.conn)
            .finish()
    }
}

impl Drop for ClientQueueOut {
    fn drop(&mut self) {
        let _ = self
            .device
            .inner
            .call(Request::Disconnect { conn: self.conn });
    }
}
