//! Churn drill: sustained end-device turnover against live listeners.
//!
//! The load harness (`load_perf --churn-ms`) exercises in-process
//! session churn, where every connection releases its GC claim on
//! drop. This drill covers the part only a real wire session can: a
//! TCP client that vanishes without detaching leaves a surrogate
//! holding cursors until the dirty-teardown or session-lease path
//! reaps it. Under 20%+ continuous churn mixing clean detaches, abrupt
//! socket drops, and silent leaks, the cluster must
//!
//! * reap every session (started == clean + dirty + lease once the
//!   drill drains, `session/active` gauge back to zero),
//! * keep the GC horizon bounded while churning (live STM items never
//!   build up past the working set), and
//! * surface the churn on the `sessions` health subject (a kill burst
//!   degrades it; a quiet cluster reports it healthy again).

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

use dstampede_client::EndDevice;
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_obs::{HealthPolicy, HealthState};
use dstampede_runtime::{Cluster, RecorderConfig};
use dstampede_wire::WaitSpec;

/// Deterministic fate source so the drill replays identically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Device {
    device: EndDevice,
    inp: dstampede_client::ClientChanIn,
    out: dstampede_client::ClientChanOut,
}

fn join(cluster: &Cluster, chan: dstampede_core::ChanId, sid: usize) -> Device {
    let addr = cluster.listener_addr(sid as u16 % 2).unwrap();
    let device = EndDevice::attach_c(addr, &format!("churn-{sid}")).unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromLatest)
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    Device { device, inp, out }
}

/// One device operation at a fresh shared timestamp: put, read it
/// back, release the cursor past it.
fn run_op(d: &Device, clock: &AtomicI64) {
    let ts = Timestamp::new(clock.fetch_add(1, Ordering::Relaxed));
    d.out
        .put(ts, Item::from_vec(vec![0xcd; 32]), WaitSpec::Forever)
        .unwrap();
    let (got, _) = d.inp.get(GetSpec::Exact(ts), WaitSpec::Forever).unwrap();
    d.inp.consume_until(got).unwrap();
}

fn total_teardowns(cluster: &Cluster) -> (u64, u64, u64, u64, usize) {
    let mut totals = (0, 0, 0, 0, 0);
    for i in 0..2 {
        let s = cluster.listener(i).unwrap().stats();
        totals.0 += s.sessions_started;
        totals.1 += s.clean_detaches;
        totals.2 += s.dirty_teardowns;
        totals.3 += s.lease_teardowns;
        totals.4 += s.active_surrogates;
    }
    totals
}

fn live_items(cluster: &Cluster) -> i64 {
    cluster
        .spaces()
        .iter()
        .map(|s| {
            s.metrics().gauge("stm", "channel_items").get()
                + s.metrics().gauge("stm", "queue_items").get()
        })
        .sum()
}

#[test]
fn sustained_churn_reaps_sessions_and_bounds_the_horizon() {
    let lease = Duration::from_millis(300);
    let cluster = Cluster::builder()
        .address_spaces(2)
        .session_lease(lease)
        .build()
        .unwrap();
    // Health ticks are driven manually (no recorder thread) so the
    // burst-detection assertions are deterministic.
    let recorder = RecorderConfig {
        session_churn_threshold: 3,
        policy: HealthPolicy {
            worsen_after: 1,
            recover_after: 2,
        },
        ..RecorderConfig::default()
    };
    for space in cluster.spaces() {
        space.set_health_policy(recorder.policy);
    }

    let chan = cluster
        .space(0)
        .unwrap()
        .create_channel(None, ChannelAttrs::default())
        .id();
    let clock = AtomicI64::new(1);
    let mut rng = 0x00d5_7a3e_u64;

    // Steady population; > 20% replaced every round.
    const POPULATION: usize = 20;
    const ROUNDS: usize = 6;
    const CHURN_PER_ROUND: usize = 5;
    let mut devices: Vec<Device> = (0..POPULATION)
        .map(|sid| join(&cluster, chan, sid))
        .collect();
    let mut next_sid = POPULATION;
    let mut leaked = 0u64; // silent clients only the lease can reap
    let mut killed = 0u64;
    let mut max_live = 0i64;

    for round in 0..ROUNDS {
        for d in &devices {
            run_op(d, &clock);
        }
        max_live = max_live.max(live_items(&cluster));

        for _ in 0..CHURN_PER_ROUND {
            let victim = devices.swap_remove(splitmix64(&mut rng) as usize % devices.len());
            match splitmix64(&mut rng) % 3 {
                0 => {
                    // Clean leave: conns disconnect, then a Detach.
                    let Device { device, inp, out } = victim;
                    drop((inp, out));
                    device.detach().unwrap();
                }
                1 => {
                    // Crash: the socket closes with no Detach — the
                    // surrogate notices the broken stream and tears
                    // down dirty, releasing the session's claims.
                    killed += 1;
                    drop(victim);
                }
                _ => {
                    // Silent leak: the client keeps the socket open
                    // and stops talking; only the session lease
                    // reclaims the surrogate (and its GC cursors).
                    leaked += 1;
                    std::mem::forget(victim);
                }
            }
            devices.push(join(&cluster, chan, next_sid));
            next_sid += 1;
        }
        // While churning, a leaked cursor may pin up to a lease's worth
        // of puts — bounded, but not the working set. Anything at the
        // total-puts level would mean nothing reclaims at all.
        assert!(
            live_items(&cluster) < (POPULATION * ROUNDS) as i64,
            "round {round}: GC horizon unbounded, {} live items",
            live_items(&cluster)
        );
    }

    // The lease is the horizon bound: once it reaps the silent
    // sessions, their pinned cursors release and the next operations
    // reclaim the backlog down to the live working set. Survivors keep
    // trickling traffic so their own leases stay fresh while the
    // leaked ones expire.
    let reap_until = Instant::now() + lease + Duration::from_millis(200);
    while Instant::now() < reap_until {
        for d in &devices {
            run_op(d, &clock);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let reclaimed = live_items(&cluster);
    assert!(
        reclaimed < 3 * POPULATION as i64,
        "lease reaping did not release the horizon: {reclaimed} live items"
    );

    // A kill burst past the per-tick threshold degrades the `sessions`
    // subject on the listener's address space. Teardown accounting is
    // asynchronous (the surrogate thread must notice the broken
    // socket), so wait for the counters before sampling the tick.
    let space0 = cluster.space(0).unwrap();
    space0.record_tick(&recorder); // settle the per-tick delta baseline
    let before = cluster.listener(0).unwrap().stats().dirty_teardowns;
    let burst: Vec<Device> = (0..4)
        .map(|i| join(&cluster, chan, next_sid + 2 * i))
        .collect();
    drop(burst);
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.listener(0).unwrap().stats().dirty_teardowns < before + 4 {
        assert!(Instant::now() < deadline, "kill burst never reaped");
        std::thread::sleep(Duration::from_millis(5));
    }
    space0.record_tick(&recorder);
    let entry = space0
        .health_report()
        .subject("sessions")
        .expect("sessions health subject missing")
        .clone();
    assert_eq!(
        entry.state,
        HealthState::Degraded,
        "kill burst not reflected: {} ({})",
        entry.state,
        entry.reason
    );

    // Drain: detach the survivors, then wait for the lease to reap the
    // leaked sessions and the gauges to agree that nothing is left.
    for d in devices.drain(..) {
        let Device { device, inp, out } = d;
        drop((inp, out));
        device.detach().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (started, clean, dirty, leased, active) = total_teardowns(&cluster);
        if active == 0 && started == clean + dirty + leased {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sessions leaked: started {started}, clean {clean}, dirty {dirty}, \
             lease {leased}, active {active}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let (started, clean, dirty, leased, _) = total_teardowns(&cluster);
    assert_eq!(started, clean + dirty + leased);
    assert!(
        leased >= leaked,
        "lease reaped {leased} sessions, expected at least the {leaked} leaked"
    );
    assert!(dirty >= killed + 4, "dirty {dirty} < killed {}", killed + 4);
    assert!(clean > 0, "no clean detach observed");
    for space in cluster.spaces() {
        assert_eq!(
            space.metrics().gauge("session", "active").get(),
            0,
            "session/active gauge leaked on {:?}",
            space.id()
        );
    }
    assert!(
        max_live < (POPULATION * ROUNDS) as i64,
        "churn let {max_live} items accumulate"
    );

    // With churn over, two quiet ticks recover the subject.
    space0.record_tick(&recorder);
    space0.record_tick(&recorder);
    space0.record_tick(&recorder);
    let entry = space0
        .health_report()
        .subject("sessions")
        .expect("sessions health subject missing")
        .clone();
    assert_eq!(entry.state, HealthState::Healthy, "{}", entry.reason);

    cluster.shutdown();
}
