//! Drives the `dstampede-cli` binary as a real subprocess against an
//! in-test cluster: a second cross-process path (the first is the
//! `dstamped` daemon test in the runtime crate).

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use dstampede_runtime::Cluster;

#[test]
fn cli_session_end_to_end() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_dstampede-cli"))
        .arg(addr.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cli");
    let mut stdin = child.stdin.take().expect("stdin");
    let stdout = child.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("attached"), "banner: {line}");

    let mut send = |cmd: &str| -> String {
        writeln!(stdin, "{cmd}").unwrap();
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out.trim().to_owned()
    };

    assert_eq!(send("ping"), "pong");

    let created = send("create-channel demo");
    let chan = created
        .strip_prefix("channel ")
        .expect("channel id")
        .to_owned();

    let out_conn = send(&format!("connect-out {chan}"));
    let out_handle = out_conn.strip_prefix("conn ").expect("handle").to_owned();
    let in_conn = send(&format!("connect-in {chan}"));
    let in_handle = in_conn.strip_prefix("conn ").expect("handle").to_owned();

    assert_eq!(
        send(&format!("put {out_handle} 3 hello from the cli")),
        "ok"
    );
    let got = send(&format!("get {in_handle} 3"));
    assert!(got.contains("hello from the cli"), "got: {got}");
    assert_eq!(send(&format!("consume {in_handle} 3")), "ok");

    assert_eq!(send(&format!("ns-register cli/demo {chan}")), "ok");
    let found = send("ns-lookup cli/demo");
    assert!(found.contains("chan:"), "lookup: {found}");
    let listing = send("ns-list");
    assert!(listing.contains("cli/demo"), "list: {listing}");

    // Errors are reported, not fatal.
    let err = send("get 999 1");
    assert!(err.starts_with("error:"), "err: {err}");

    writeln!(stdin, "quit").unwrap();
    drop(stdin);
    let status = child.wait().unwrap();
    assert!(status.success());
    cluster.shutdown();
}

#[test]
fn cli_rejects_missing_address() {
    let out = Command::new(env!("CARGO_BIN_EXE_dstampede-cli"))
        .output()
        .expect("run cli without args");
    assert!(!out.status.success());
}
