//! End-to-end tests: end-device client library against a live cluster.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dstampede_client::EndDevice;
use dstampede_core::{
    ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, ResourceId, StmError, TagFilter, Timestamp,
};
use dstampede_runtime::Cluster;
use dstampede_wire::{CodecId, WaitSpec};

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

#[test]
fn both_codecs_full_stream_cycle() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    for codec in [CodecId::Xdr, CodecId::Jdr] {
        let device = EndDevice::attach(addr, codec, "cycle").unwrap();
        assert_eq!(device.codec(), codec);
        assert_eq!(device.ping(9).unwrap(), 9);
        let chan = device
            .create_channel(None, ChannelAttrs::default())
            .unwrap();
        let out = device.connect_channel_out(chan).unwrap();
        let inp = device
            .connect_channel_in(chan, Interest::FromEarliest)
            .unwrap();
        for i in 0..5 {
            out.put(
                ts(i),
                Item::from_vec(vec![i as u8; 100]).with_tag(i as u32),
                WaitSpec::Forever,
            )
            .unwrap();
        }
        for i in 0..5 {
            let (t, item) = inp.get(GetSpec::Exact(ts(i)), WaitSpec::Forever).unwrap();
            assert_eq!(t, ts(i));
            assert_eq!(item.tag(), i as u32);
            assert_eq!(item.payload(), &vec![i as u8; 100][..]);
            inp.consume_until(t).unwrap();
        }
        drop((out, inp));
        device.detach().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn client_blocking_get_woken_by_other_client() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let creator = EndDevice::attach_c(addr, "creator").unwrap();
    let chan = creator
        .create_channel(None, ChannelAttrs::default())
        .unwrap();

    let consumer = EndDevice::attach_java(addr, "consumer").unwrap();
    let inp = consumer
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    let getter = std::thread::spawn(move || {
        let got = inp.get(GetSpec::Exact(ts(3)), WaitSpec::Forever);
        drop(inp);
        got
    });

    std::thread::sleep(Duration::from_millis(50));
    let producer = EndDevice::attach_c(addr, "producer").unwrap();
    let out = producer.connect_channel_out(chan).unwrap();
    out.put(ts(3), Item::from_vec(vec![7]), WaitSpec::Forever)
        .unwrap();

    let (t, item) = getter.join().unwrap().unwrap();
    assert_eq!(t, ts(3));
    assert_eq!(item.payload(), &[7]);
    cluster.shutdown();
}

#[test]
fn nameserver_rendezvous_between_clients() {
    let cluster = Cluster::in_process(2).unwrap();
    // Client A attaches to AS 1's listener, creates and registers.
    let a = EndDevice::attach_c(cluster.listener_addr(1).unwrap(), "a").unwrap();
    let chan = a.create_channel(None, ChannelAttrs::default()).unwrap();
    a.ns_register("video-feed", ResourceId::Channel(chan), "camera a")
        .unwrap();

    // Client B attaches to AS 0's listener and finds it.
    let b = EndDevice::attach_java(cluster.listener_addr(0).unwrap(), "b").unwrap();
    let (res, meta) = b.ns_lookup("video-feed", WaitSpec::Forever).unwrap();
    assert_eq!(res, ResourceId::Channel(chan));
    assert_eq!(meta, "camera a");
    assert_eq!(b.ns_list().unwrap().len(), 1);

    // Cross-space access: B connects to the channel owned by AS 1 via its
    // surrogate on AS 0 (the paper's configuration 2 topology).
    let out = a.connect_channel_out(chan).unwrap();
    let inp = b.connect_channel_in(chan, Interest::FromEarliest).unwrap();
    out.put(ts(1), Item::from_vec(vec![42]), WaitSpec::Forever)
        .unwrap();
    let (_, item) = inp.get(GetSpec::Exact(ts(1)), WaitSpec::Forever).unwrap();
    assert_eq!(item.payload(), &[42]);

    b.ns_unregister("video-feed").unwrap();
    assert_eq!(
        b.ns_lookup("video-feed", WaitSpec::NonBlocking)
            .unwrap_err(),
        StmError::NameAbsent
    );
    cluster.shutdown();
}

#[test]
fn queue_work_sharing_across_clients() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let boss = EndDevice::attach_c(addr, "splitter").unwrap();
    let queue = boss.create_queue(None, QueueAttrs::default()).unwrap();
    let out = boss.connect_queue_out(queue).unwrap();
    for frag in 0..8u32 {
        out.put(
            ts(1),
            Item::from_vec(vec![frag as u8]).with_tag(frag),
            WaitSpec::Forever,
        )
        .unwrap();
    }

    let mut workers = Vec::new();
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for w in 0..2 {
        let seen = Arc::clone(&seen);
        workers.push(std::thread::spawn(move || {
            let device = EndDevice::attach_c(addr, &format!("tracker-{w}")).unwrap();
            let inp = device.connect_queue_in(queue).unwrap();
            loop {
                match inp.get(WaitSpec::TimeoutMs(200)) {
                    Ok((_, item, ticket)) => {
                        seen.lock().push(item.tag());
                        inp.consume(ticket).unwrap();
                    }
                    Err(StmError::Timeout) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            drop(inp);
            device.detach().unwrap();
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    let mut tags = seen.lock().clone();
    tags.sort_unstable();
    assert_eq!(tags, (0..8).collect::<Vec<_>>());
    cluster.shutdown();
}

#[test]
fn queue_requeue_from_client() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "requeue").unwrap();
    let queue = device.create_queue(None, QueueAttrs::default()).unwrap();
    let out = device.connect_queue_out(queue).unwrap();
    let inp = device.connect_queue_in(queue).unwrap();
    out.put(ts(1), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();
    let (_, _, ticket) = inp.get(WaitSpec::Forever).unwrap();
    inp.requeue(ticket).unwrap();
    let (_, item, ticket2) = inp.get(WaitSpec::Forever).unwrap();
    assert_eq!(item.payload(), &[1]);
    inp.consume(ticket2).unwrap();
    cluster.shutdown();
}

#[test]
fn garbage_notifications_reach_client_hook() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "gc-client").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();

    let fired = Arc::new(AtomicUsize::new(0));
    let f2 = Arc::clone(&fired);
    device
        .install_garbage_hook(ResourceId::Channel(chan), move |note| {
            assert_eq!(note.resource, ResourceId::Channel(chan));
            f2.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();

    let out = device.connect_channel_out(chan).unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    out.put(ts(1), Item::from_vec(vec![0; 64]), WaitSpec::Forever)
        .unwrap();
    let (t, _) = inp.get(GetSpec::Exact(ts(1)), WaitSpec::Forever).unwrap();
    inp.consume_until(t).unwrap(); // reclamation happens here
                                   // Delivery is piggy-backed: the *next* call carries the note.
    let _ = device.ping(1).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    cluster.shutdown();
}

#[test]
fn nonblocking_and_timeout_errors_propagate() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "errors").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    assert_eq!(
        inp.get(GetSpec::Latest, WaitSpec::NonBlocking).unwrap_err(),
        StmError::Absent
    );
    assert_eq!(
        inp.get(GetSpec::Latest, WaitSpec::TimeoutMs(30))
            .unwrap_err(),
        StmError::Timeout
    );
    // Duplicate puts rejected through the whole stack.
    let out = device.connect_channel_out(chan).unwrap();
    out.put(ts(1), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();
    assert_eq!(
        out.put(ts(1), Item::from_vec(vec![2]), WaitSpec::Forever)
            .unwrap_err(),
        StmError::TsExists
    );
    cluster.shutdown();
}

#[test]
fn client_crash_releases_gc_claims() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let owner = EndDevice::attach_c(addr, "owner").unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default()).unwrap();
    let out = owner.connect_channel_out(chan).unwrap();

    // A second client connects an input but never consumes, then "crashes":
    // we drive the wire protocol by hand and drop the socket without
    // Disconnect or Detach.
    {
        use dstampede_wire::{codec_for, read_frame_bytes, write_encoded, Request, RequestFrame};
        use std::io::Write as _;
        let codec = codec_for(CodecId::Xdr);
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(&[CodecId::Xdr.byte()]).unwrap();
        for (seq, req) in [
            (
                1,
                Request::Attach {
                    client_name: "crasher".into(),
                },
            ),
            (
                2,
                Request::ConnectChannelIn {
                    chan,
                    interest: Interest::FromEarliest,
                    filter: TagFilter::Any,
                },
            ),
        ] {
            let encoded = codec.encode_request(&RequestFrame::new(seq, req)).unwrap();
            write_encoded(&mut raw, &encoded).unwrap();
            let _ = read_frame_bytes(&mut raw).unwrap();
        }
        // Socket drops here: a crash without Detach.
    }
    out.put(ts(1), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();

    // The surrogate notices the dead socket and tears the session down,
    // releasing the stale connection's claim. A fresh consumer can then
    // drive the item to reclamation.
    let consumer = EndDevice::attach_c(addr, "consumer").unwrap();
    let inp = consumer
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    let (t, _) = inp.get(GetSpec::Exact(ts(1)), WaitSpec::Forever).unwrap();
    inp.consume_until(t).unwrap();

    let listener = cluster.listener(0).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while listener.stats().dirty_teardowns == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(listener.stats().dirty_teardowns, 1);
    cluster.shutdown();
}

#[test]
fn many_clients_interleaved() {
    let cluster = Cluster::in_process(2).unwrap();
    let chan_owner = EndDevice::attach_c(cluster.listener_addr(0).unwrap(), "owner").unwrap();
    let chan = chan_owner
        .create_channel(None, ChannelAttrs::default())
        .unwrap();

    let mut producers = Vec::new();
    for p in 0..3i64 {
        let addr = cluster.listener_addr((p % 2) as u16).unwrap();
        producers.push(std::thread::spawn(move || {
            let device = EndDevice::attach_c(addr, &format!("p{p}")).unwrap();
            let out = device.connect_channel_out(chan).unwrap();
            for i in 0..20 {
                out.put(
                    ts(p * 1000 + i),
                    Item::from_vec(vec![p as u8]),
                    WaitSpec::Forever,
                )
                .unwrap();
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }

    let consumer = EndDevice::attach_java(cluster.listener_addr(1).unwrap(), "c").unwrap();
    let inp = consumer
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    let mut count = 0;
    let mut last = Timestamp::MIN;
    loop {
        match inp.get(GetSpec::After(last), WaitSpec::NonBlocking) {
            Ok((t, _)) => {
                assert!(t > last);
                last = t;
                count += 1;
            }
            Err(StmError::Absent) => break,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(count, 60);
    cluster.shutdown();
}

#[test]
fn filtered_client_connection_attends_selectively() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "filtered").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    // Only attend to odd-tagged items.
    let inp = device
        .connect_channel_in_filtered(
            chan,
            Interest::FromEarliest,
            TagFilter::Stripe {
                modulus: 2,
                remainder: 1,
            },
        )
        .unwrap();
    for v in 0..6u32 {
        out.put(
            ts(i64::from(v)),
            Item::from_vec(vec![v as u8]).with_tag(v),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    let mut seen = Vec::new();
    let mut last = Timestamp::MIN;
    while let Ok((t, item)) = inp.get(GetSpec::After(last), WaitSpec::NonBlocking) {
        seen.push(item.tag());
        last = t;
    }
    assert_eq!(seen, vec![1, 3, 5]);
    // Consuming through the whole range reclaims everything: the
    // even-tagged items were never pinned by this connection.
    inp.consume_until(ts(5)).unwrap();
    let space = cluster.space(0).unwrap();
    let chan_arc = space.registry().channel(chan).unwrap();
    assert_eq!(chan_arc.live_items(), 0);
    cluster.shutdown();
}

#[test]
fn batched_channel_cycle_both_codecs() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    for codec in [CodecId::Xdr, CodecId::Jdr] {
        let device = EndDevice::attach(addr, codec, "batcher").unwrap();
        let chan = device
            .create_channel(None, ChannelAttrs::default())
            .unwrap();
        let out = device.connect_channel_out(chan).unwrap();
        let inp = device
            .connect_channel_in(chan, Interest::FromEarliest)
            .unwrap();

        let entries = (0..16i64)
            .map(|i| (ts(i), Item::from_vec(vec![i as u8; 32]).with_tag(i as u32)))
            .collect::<Vec<_>>();
        let results = out.put_many(entries, WaitSpec::Forever).unwrap();
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(Result::is_ok));

        // A second batch over an overlapping range fails only per item.
        let redo = vec![
            (ts(0), Item::from_vec(vec![9])),
            (ts(100), Item::from_vec(vec![9])),
        ];
        let results = out.put_many(redo, WaitSpec::Forever).unwrap();
        assert_eq!(results[0].clone().unwrap_err(), StmError::TsExists);
        assert!(results[1].is_ok());

        let specs = (0..4i64).map(|i| GetSpec::Exact(ts(i))).collect::<Vec<_>>();
        let got = inp.get_many(&specs).unwrap();
        assert_eq!(got.len(), 4);
        for (i, res) in got.into_iter().enumerate() {
            let (t, item) = res.unwrap();
            assert_eq!(t, ts(i as i64));
            assert_eq!(item.tag(), i as u32);
            assert_eq!(item.payload(), &vec![i as u8; 32][..]);
        }
        // Misses come back per spec, not as a frame-level error.
        let got = inp
            .get_many(&[GetSpec::Exact(ts(5)), GetSpec::Exact(ts(999))])
            .unwrap();
        assert!(got[0].is_ok());
        assert_eq!(got[1].clone().unwrap_err(), StmError::Absent);
        device.detach().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn batched_queue_cycle_from_client() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "q-batcher").unwrap();
    let queue = device.create_queue(None, QueueAttrs::default()).unwrap();
    let out = device.connect_queue_out(queue).unwrap();
    let inp = device.connect_queue_in(queue).unwrap();

    let entries = (0..10u32)
        .map(|i| (ts(1), Item::from_vec(vec![i as u8]).with_tag(i)))
        .collect::<Vec<_>>();
    let results = out.enqueue_many(entries, WaitSpec::Forever).unwrap();
    assert_eq!(results.len(), 10);
    assert!(results.iter().all(Result::is_ok));

    // First drain takes at most 6; tickets settle individually.
    let first = inp.dequeue_many(6).unwrap();
    assert_eq!(first.len(), 6);
    let tags = first
        .iter()
        .map(|(_, item, _)| item.tag())
        .collect::<Vec<_>>();
    assert_eq!(tags, (0..6).collect::<Vec<_>>());
    for (_, _, ticket) in &first {
        inp.consume(*ticket).unwrap();
    }
    // Second drain returns what is left, and a third returns empty.
    let second = inp.dequeue_many(32).unwrap();
    assert_eq!(second.len(), 4);
    for (_, _, ticket) in &second {
        inp.consume(*ticket).unwrap();
    }
    assert!(inp.dequeue_many(32).unwrap().is_empty());
    device.detach().unwrap();
    cluster.shutdown();
}
