//! Acceptance tests for the flight recorder's wire path: an end device
//! pulls cluster-wide metric history and health over
//! `HistoryPull`/`HealthPull`, and a peer predating the recorder
//! degrades gracefully.

use std::time::Duration;

use dstampede_client::{render_health_table, render_watch, EndDevice};
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_obs::{HealthState, SeriesField};
use dstampede_runtime::{Cluster, RecorderConfig};
use dstampede_wire::WaitSpec;

fn fast_recorder() -> RecorderConfig {
    RecorderConfig {
        tick: Duration::from_millis(20),
        ..RecorderConfig::default()
    }
}

#[test]
fn cluster_wide_history_and_health_pull() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .flight_recorder(fast_recorder())
        .build()
        .unwrap();

    // Cross-space workload so both address spaces' series move.
    let owner = cluster.space(0).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let device = EndDevice::attach_c(cluster.listener_addr(1).unwrap(), "recorder-test").unwrap();
    let out = device.connect_channel_out(chan.id()).unwrap();
    let inp = device
        .connect_channel_in(chan.id(), Interest::FromEarliest)
        .unwrap();
    for i in 0..6 {
        out.put(
            Timestamp::new(i),
            Item::from_vec(vec![i as u8; 32]),
            WaitSpec::Forever,
        )
        .unwrap();
        let (t, _) = inp
            .get(GetSpec::Exact(Timestamp::new(i)), WaitSpec::Forever)
            .unwrap();
        inp.consume_until(t).unwrap();
    }

    // Let the recorders tick a few times over the workload's counters.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let all_ticked = (0..2).all(|i| cluster.space(i).unwrap().recorder_ticks() >= 3);
        if all_ticked || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let history = device.history(true).unwrap();
    // Both address spaces' rings arrived in one pull, with multiple
    // samples per series (CLF counters bind at startup on every node).
    for src in ["as-0", "as-1"] {
        let sent = history
            .series_for(src, "clf", "msgs_sent", SeriesField::Value)
            .unwrap_or_else(|| panic!("no clf/msgs_sent window from {src}"));
        assert!(
            sent.samples.len() >= 2,
            "expected several samples from {src}, got {}",
            sent.samples.len()
        );
        // Timestamps ascend and the counter is monotonic.
        for w in sent.samples.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }
    // The puts landed on the channel owner's registry.
    let puts = history
        .series_for("as-0", "stm", "puts", SeriesField::Value)
        .expect("no stm/puts window from the owner");
    assert!(puts.samples.last().unwrap().1 >= 6);

    let health = device.health(true).unwrap();
    // Each address space derives peer + local transport/storage states;
    // a quiet healthy cluster reports all-healthy.
    for (source, subject) in [
        ("as-0", "peer:as-1"),
        ("as-1", "peer:as-0"),
        ("as-0", "clf"),
        ("as-0", "stm"),
        ("as-1", "clf"),
        ("as-1", "stm"),
    ] {
        let entry = health
            .entry(source, subject)
            .unwrap_or_else(|| panic!("no health entry {source}/{subject}"));
        assert_eq!(
            entry.state,
            HealthState::Healthy,
            "{source}/{subject} unexpectedly {} ({})",
            entry.state,
            entry.reason
        );
    }

    // The dashboard renders both views without panicking and mentions
    // the overall state plus the occupancy section.
    let frame = render_watch(&health, &history);
    assert!(frame.starts_with("cluster health: healthy\n"), "{frame}");
    assert!(frame.contains("stm occupancy"), "{frame}");
    let table = render_health_table(&health);
    assert!(table.contains("peer:as-1"));

    device.detach().unwrap();
    cluster.shutdown();
}

#[test]
fn old_peer_downgrade_skips_incapable_peer() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .flight_recorder(fast_recorder())
        .build()
        .unwrap();
    let puller = cluster.space(1).unwrap();
    // Pretend as-0 predates the flight recorder.
    puller.set_peer_recorder(dstampede_core::AsId(0), false);
    assert!(!puller.peer_supports_recorder(dstampede_core::AsId(0)));

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while puller.recorder_ticks() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    // The cluster pull completes and carries only the capable node.
    let history = puller.history_cluster_dump();
    assert!(history.series.iter().all(|s| s.source == "as-1"));
    let health = puller.health_cluster_report();
    assert!(health.entries.iter().all(|e| e.source == "as-1"));
    assert!(health.subject("peer:as-0").is_some());

    // Restoring capability re-enables the fan-out.
    puller.set_peer_recorder(dstampede_core::AsId(0), true);
    let history = puller.history_cluster_dump();
    assert!(history.series.iter().any(|s| s.source == "as-0"));

    cluster.shutdown();
}
