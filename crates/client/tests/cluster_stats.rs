//! Acceptance test for the telemetry subsystem: a cluster-wide stats
//! pull from an end device must cover STM, GC, CLF, and surrogate RPC
//! series from every address space of a multi-space cluster.

use std::time::Duration;

use dstampede_client::{render_snapshot_table, EndDevice};
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, Timestamp};
use dstampede_runtime::{gc_epoch, Cluster};
use dstampede_wire::WaitSpec;

#[test]
fn cluster_wide_stats_pull_covers_stm_gc_and_clf() {
    let cluster = Cluster::in_process(2).unwrap();

    // Workload: attach to address space 1 but operate on a channel owned
    // by address space 0, so every operation crosses CLF.
    let owner = cluster.space(0).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let device = EndDevice::attach_c(cluster.listener_addr(1).unwrap(), "stats-test").unwrap();
    let out = device.connect_channel_out(chan.id()).unwrap();
    let inp = device
        .connect_channel_in(chan.id(), Interest::FromEarliest)
        .unwrap();
    for i in 0..8 {
        out.put(
            Timestamp::new(i),
            Item::from_vec(vec![i as u8; 64]),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    // One jumbo item above the zero-copy threshold, so the wire pool's
    // copies-avoided accounting has something to report.
    out.put(
        Timestamp::new(8),
        Item::from_vec(vec![9u8; 1024]),
        WaitSpec::Forever,
    )
    .unwrap();
    for i in 0..9 {
        let (t, _) = inp
            .get(GetSpec::Exact(Timestamp::new(i)), WaitSpec::Forever)
            .unwrap();
        inp.consume_until(t).unwrap();
    }

    // A queue workload local to address space 1 so queue-labeled series
    // appear too.
    let q = cluster
        .space(1)
        .unwrap()
        .create_queue(None, QueueAttrs::default());
    let qout = device.connect_queue_out(q.id()).unwrap();
    let qin = device.connect_queue_in(q.id()).unwrap();
    qout.put(
        Timestamp::new(0),
        Item::from_vec(vec![1]),
        WaitSpec::Forever,
    )
    .unwrap();
    let (_, _, ticket) = qin.get(WaitSpec::Forever).unwrap();
    qin.consume(ticket).unwrap();

    // Wait until the owner reclaimed the fully consumed channel items, so
    // the GC reclamation counters are populated.
    for _ in 0..200 {
        if chan.live_items() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(chan.live_items(), 0);

    // One GC epoch report from each address space.
    for i in 0..2 {
        gc_epoch::report_once(&cluster.space(i).unwrap());
    }

    let snap = device.stats(true).unwrap();

    // Both address spaces answered the fan-out.
    assert_eq!(snap.sources, vec!["as-0".to_string(), "as-1".to_string()]);

    // STM: put/get latency and occupancy.
    assert!(snap.counter_value("stm", "puts").unwrap_or(0) >= 9);
    assert!(snap.counter_value("stm", "gets").unwrap_or(0) >= 9);
    assert!(snap.counter_value("stm", "consumes").unwrap_or(0) >= 9);
    assert!(snap.histogram("stm", "put_latency_us").unwrap().count >= 1);
    assert!(snap.histogram("stm", "get_latency_us").unwrap().count >= 1);
    assert_eq!(snap.gauge_value("stm", "channel_items"), Some(0));
    assert_eq!(snap.gauge_value("stm", "queue_items"), Some(0));

    // GC: epochs and reclamation.
    assert!(snap.counter_value("gc", "epochs").unwrap_or(0) >= 2);
    assert!(snap.counter_value("gc", "reclaimed_items").unwrap_or(0) >= 9);
    assert!(snap.counter_value("gc", "reclaimed_bytes").unwrap_or(0) >= 8 * 64);
    assert!(snap.histogram("gc", "epoch_duration_us").unwrap().count >= 2);

    // CLF: the channel traffic crossed the in-process fabric.
    assert!(snap.counter_value("clf", "msgs_sent").unwrap_or(0) >= 1);
    assert!(snap.counter_value("clf", "msgs_received").unwrap_or(0) >= 1);
    assert!(snap.counter_value("clf", "bytes_sent").unwrap_or(0) >= 64);

    // RPC: the surrogate fielded our calls, and the proxy crossed spaces.
    assert!(snap.histogram("rpc", "surrogate_latency_us").unwrap().count >= 1);
    assert!(snap.histogram("rpc", "remote_op_us").unwrap().count >= 1);

    // Wire pool: the zero-copy data plane drew encode buffers from the
    // pool and the jumbo payload rode the wire as a borrowed view.
    let pool_traffic = snap.gauge_value("wire", "pool_hits").unwrap_or(0)
        + snap.gauge_value("wire", "pool_misses").unwrap_or(0);
    assert!(pool_traffic >= 1, "no pool traffic in snapshot");
    assert!(snap.gauge_value("wire", "copies_avoided").unwrap_or(0) >= 1);
    assert!(
        snap.gauge_value("wire", "bytes_copied_avoided")
            .unwrap_or(0)
            >= 1024
    );

    // The rendered table carries the same coverage.
    let table = render_snapshot_table(&snap);
    assert!(table.starts_with("sources: as-0, as-1\n"));
    for series in [
        "stm/puts",
        "gc/epochs",
        "clf/msgs_sent",
        "rpc/surrogate_latency_us",
        "wire/copies_avoided",
        // Telemetry self-accounting: span-store, event-log, and
        // flight-recorder ring overwrite counts surface as gauges.
        "obs/span_drops",
        "obs/event_drops",
        "obs/history_drops",
    ] {
        assert!(table.contains(series), "table missing {series}:\n{table}");
    }
    assert!(snap.gauge_value("obs", "span_drops").is_some());
    assert!(snap.gauge_value("obs", "event_drops").is_some());

    device.detach().unwrap();
    cluster.shutdown();
}

#[test]
fn local_stats_pull_reports_only_the_attached_space() {
    let cluster = Cluster::in_process(2).unwrap();
    let device = EndDevice::attach_c(cluster.listener_addr(1).unwrap(), "local-stats").unwrap();
    device.ping(1).unwrap();

    let snap = device.stats(false).unwrap();
    assert_eq!(snap.sources, vec!["as-1".to_string()]);
    assert!(snap.histogram("rpc", "surrogate_latency_us").unwrap().count >= 1);

    device.detach().unwrap();
    cluster.shutdown();
}
