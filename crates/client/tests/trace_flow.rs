//! Acceptance tests for end-to-end causal tracing: one item put from
//! an end device yields one connected trace whose spans cross address
//! spaces, retrievable via `TracePull` from any address space and
//! exportable as Chrome trace-event JSON.

use std::time::Duration;

use dstampede_client::EndDevice;
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede_obs::SpanKind;
use dstampede_runtime::Cluster;
use dstampede_wire::WaitSpec;

#[test]
fn one_put_yields_one_connected_cross_space_trace() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .trace_sampling(1)
        .build()
        .unwrap();

    // The channel lives on address space 0, but the device attaches to
    // address space 1 — every operation crosses the inter-AS wire, so
    // the trace must too.
    let owner = cluster.space(0).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let device = EndDevice::attach_c(cluster.listener_addr(1).unwrap(), "tracer-dev").unwrap();
    let out = device.connect_channel_out(chan.id()).unwrap();
    let inp = device
        .connect_channel_in(chan.id(), Interest::FromEarliest)
        .unwrap();

    out.put(
        Timestamp::new(7),
        Item::from_vec(vec![1, 2, 3]),
        WaitSpec::Forever,
    )
    .unwrap();
    let (ts, item) = inp
        .get(GetSpec::Exact(Timestamp::new(7)), WaitSpec::Forever)
        .unwrap();
    assert_eq!(item.payload(), &[1, 2, 3]);
    inp.consume_until(ts).unwrap();

    // Wait for the owner to reclaim the consumed item so a GcReclaim
    // span exists.
    for _ in 0..200 {
        if chan.live_items() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(chan.live_items(), 0);

    // Cluster-wide pull through the device attached to AS 1.
    let dump = device.trace(true).unwrap();
    let put = dump
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Put && s.ts == 7)
        .expect("put span recorded");
    let reclaim = dump
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::GcReclaim && s.ts == 7)
        .expect("gc reclaim span recorded");
    let get = dump
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Get && s.ts == 7)
        .expect("get span recorded");

    // Put, get, and reclamation all belong to ONE trace...
    assert_eq!(put.trace, reclaim.trace);
    assert_eq!(put.trace, get.trace);
    // ...whose spans come from more than one address space: the channel
    // owner records the lifecycle edges while the surrogate's address
    // space records the RPC hop.
    let rpc = dump
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Rpc && s.trace == put.trace)
        .expect("rpc span recorded");
    assert_ne!(rpc.source, put.source, "trace must span address spaces");

    // The same connected trace is retrievable from the OTHER address
    // space too.
    let dev0 = EndDevice::attach_c(cluster.listener_addr(0).unwrap(), "tracer-dev0").unwrap();
    let dump0 = dev0.trace(true).unwrap();
    let ids: Vec<_> = dump0
        .spans
        .iter()
        .filter(|s| s.trace == put.trace)
        .map(|s| s.kind)
        .collect();
    assert!(ids.contains(&SpanKind::Put));
    assert!(ids.contains(&SpanKind::GcReclaim));
    assert!(ids.contains(&SpanKind::Rpc));

    // And exports as Chrome trace-event JSON.
    let json = dump.to_chrome_json();
    assert!(json.starts_with('{'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains(&format!("{}", put.trace)));

    drop((out, inp));
    let _ = device.detach();
    let _ = dev0.detach();
    cluster.shutdown();
}

#[test]
fn tracing_disabled_by_default_records_nothing() {
    let cluster = Cluster::builder().address_spaces(1).build().unwrap();
    let device = EndDevice::attach_c(cluster.listener_addr(0).unwrap(), "quiet").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    out.put(
        Timestamp::new(0),
        Item::from_vec(vec![9]),
        WaitSpec::Forever,
    )
    .unwrap();
    let dump = device.trace(true).unwrap();
    assert!(dump.spans.is_empty(), "sampling 0 must record no spans");
    drop(out);
    let _ = device.detach();
    cluster.shutdown();
}
