//! Channel and queue attributes.
//!
//! Attributes fix a container's capacity, overflow policy and garbage
//! collection policy at creation time. They travel over the wire when an end
//! device asks the cluster to create a container, so they are plain data
//! with stable encodings.

use std::fmt;

/// What a `put` does when the container is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowPolicy {
    /// Block the putter until garbage collection frees a slot (default).
    ///
    /// This is the classic space-time memory behaviour: producers are paced
    /// by the slowest interested consumer.
    #[default]
    Block,
    /// Fail the put immediately with [`crate::StmError::Full`].
    Reject,
    /// Evict the oldest live item (firing its garbage hook) to make room.
    ///
    /// Useful for sensors where only recent data matters — the paper's
    /// "selective attention" taken to its limit.
    DropOldest,
}

impl OverflowPolicy {
    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            OverflowPolicy::Block => 0,
            OverflowPolicy::Reject => 1,
            OverflowPolicy::DropOldest => 2,
        }
    }

    /// Decodes a wire code, defaulting unknown codes to `Block`.
    #[must_use]
    pub fn from_code(code: u32) -> Self {
        match code {
            1 => OverflowPolicy::Reject,
            2 => OverflowPolicy::DropOldest,
            _ => OverflowPolicy::Block,
        }
    }
}

impl fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverflowPolicy::Block => write!(f, "block"),
            OverflowPolicy::Reject => write!(f, "reject"),
            OverflowPolicy::DropOldest => write!(f, "drop-oldest"),
        }
    }
}

/// Which garbage collection algorithm governs a container.
///
/// Both are described in the Stampede line of work referenced by the paper
/// (§3.1, "Garbage Collection"); see [`crate::gc`] for the algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GcPolicy {
    /// Reference counting on explicit `consume` marks (REF).
    #[default]
    Ref,
    /// Transparent GC driven by per-connection virtual time (TGC).
    Transparent,
}

impl GcPolicy {
    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            GcPolicy::Ref => 0,
            GcPolicy::Transparent => 1,
        }
    }

    /// Decodes a wire code, defaulting unknown codes to `Ref`.
    #[must_use]
    pub fn from_code(code: u32) -> Self {
        match code {
            1 => GcPolicy::Transparent,
            _ => GcPolicy::Ref,
        }
    }
}

impl fmt::Display for GcPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcPolicy::Ref => write!(f, "ref"),
            GcPolicy::Transparent => write!(f, "transparent"),
        }
    }
}

/// Attributes of a channel, built with [`ChannelAttrs::builder`].
///
/// # Examples
///
/// ```
/// use dstampede_core::{ChannelAttrs, OverflowPolicy, GcPolicy};
///
/// let attrs = ChannelAttrs::builder()
///     .capacity(32)
///     .overflow(OverflowPolicy::Reject)
///     .gc(GcPolicy::Transparent)
///     .build();
/// assert_eq!(attrs.capacity(), Some(32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelAttrs {
    capacity: Option<u32>,
    overflow: OverflowPolicy,
    gc: GcPolicy,
    shards: Option<u32>,
}

impl ChannelAttrs {
    /// Starts building channel attributes.
    #[must_use]
    pub fn builder() -> ChannelAttrsBuilder {
        ChannelAttrsBuilder {
            attrs: ChannelAttrs::default(),
        }
    }

    /// Maximum number of live items, or `None` for unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<u32> {
        self.capacity
    }

    /// Behaviour at capacity.
    #[must_use]
    pub fn overflow(&self) -> OverflowPolicy {
        self.overflow
    }

    /// Garbage collection algorithm.
    #[must_use]
    pub fn gc(&self) -> GcPolicy {
        self.gc
    }

    /// Number of internal storage shards, or `None` for the owner's default.
    ///
    /// This is a local tuning knob, not a wire attribute: it never travels
    /// in create requests, so a decoded `ChannelAttrs` always reports `None`
    /// and the owning address space fills in its configured default.
    #[must_use]
    pub fn shards(&self) -> Option<u32> {
        self.shards
    }

    /// Returns a copy with the shard count pinned (registries use this to
    /// apply an address-space default to wire-decoded attrs).
    #[must_use]
    pub fn with_shards(mut self, n: u32) -> Self {
        self.shards = Some(n);
        self
    }
}

impl Default for ChannelAttrs {
    /// Unbounded, blocking, reference-counted.
    fn default() -> Self {
        ChannelAttrs {
            capacity: None,
            overflow: OverflowPolicy::Block,
            gc: GcPolicy::Ref,
            shards: None,
        }
    }
}

/// Builder for [`ChannelAttrs`].
#[derive(Debug, Clone)]
pub struct ChannelAttrsBuilder {
    attrs: ChannelAttrs,
}

impl ChannelAttrsBuilder {
    /// Bounds the channel to `n` live items.
    #[must_use]
    pub fn capacity(mut self, n: u32) -> Self {
        self.attrs.capacity = Some(n);
        self
    }

    /// Removes any capacity bound.
    #[must_use]
    pub fn unbounded(mut self) -> Self {
        self.attrs.capacity = None;
        self
    }

    /// Sets the overflow policy.
    #[must_use]
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.attrs.overflow = policy;
        self
    }

    /// Sets the garbage collection policy.
    #[must_use]
    pub fn gc(mut self, policy: GcPolicy) -> Self {
        self.attrs.gc = policy;
        self
    }

    /// Sets the internal storage shard count (0 is clamped to 1).
    ///
    /// Local tuning knob only — not encoded on the wire.
    #[must_use]
    pub fn shards(mut self, n: u32) -> Self {
        self.attrs.shards = Some(n);
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> ChannelAttrs {
        self.attrs
    }
}

/// Attributes of a queue, built with [`QueueAttrs::builder`].
///
/// # Examples
///
/// ```
/// use dstampede_core::QueueAttrs;
///
/// let attrs = QueueAttrs::builder().capacity(8).build();
/// assert_eq!(attrs.capacity(), Some(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueAttrs {
    capacity: Option<u32>,
    overflow: OverflowPolicy,
    shards: Option<u32>,
}

impl QueueAttrs {
    /// Starts building queue attributes.
    #[must_use]
    pub fn builder() -> QueueAttrsBuilder {
        QueueAttrsBuilder {
            attrs: QueueAttrs::default(),
        }
    }

    /// Maximum number of queued items, or `None` for unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<u32> {
        self.capacity
    }

    /// Behaviour at capacity.
    #[must_use]
    pub fn overflow(&self) -> OverflowPolicy {
        self.overflow
    }

    /// Number of in-flight ticket shards, or `None` for the owner's default.
    ///
    /// Like [`ChannelAttrs::shards`], this is a local tuning knob and never
    /// travels on the wire.
    #[must_use]
    pub fn shards(&self) -> Option<u32> {
        self.shards
    }

    /// Returns a copy with the shard count pinned.
    #[must_use]
    pub fn with_shards(mut self, n: u32) -> Self {
        self.shards = Some(n);
        self
    }
}

impl Default for QueueAttrs {
    /// Unbounded, blocking.
    fn default() -> Self {
        QueueAttrs {
            capacity: None,
            overflow: OverflowPolicy::Block,
            shards: None,
        }
    }
}

/// Builder for [`QueueAttrs`].
#[derive(Debug, Clone)]
pub struct QueueAttrsBuilder {
    attrs: QueueAttrs,
}

impl QueueAttrsBuilder {
    /// Bounds the queue to `n` items.
    #[must_use]
    pub fn capacity(mut self, n: u32) -> Self {
        self.attrs.capacity = Some(n);
        self
    }

    /// Removes any capacity bound.
    #[must_use]
    pub fn unbounded(mut self) -> Self {
        self.attrs.capacity = None;
        self
    }

    /// Sets the overflow policy.
    #[must_use]
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.attrs.overflow = policy;
        self
    }

    /// Sets the in-flight ticket shard count (0 is clamped to 1).
    ///
    /// Local tuning knob only — not encoded on the wire.
    #[must_use]
    pub fn shards(mut self, n: u32) -> Self {
        self.attrs.shards = Some(n);
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> QueueAttrs {
        self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_channel_attrs_are_unbounded_block_ref() {
        let a = ChannelAttrs::default();
        assert_eq!(a.capacity(), None);
        assert_eq!(a.overflow(), OverflowPolicy::Block);
        assert_eq!(a.gc(), GcPolicy::Ref);
    }

    #[test]
    fn builder_sets_all_fields() {
        let a = ChannelAttrs::builder()
            .capacity(4)
            .overflow(OverflowPolicy::DropOldest)
            .gc(GcPolicy::Transparent)
            .build();
        assert_eq!(a.capacity(), Some(4));
        assert_eq!(a.overflow(), OverflowPolicy::DropOldest);
        assert_eq!(a.gc(), GcPolicy::Transparent);
    }

    #[test]
    fn unbounded_clears_capacity() {
        let a = ChannelAttrs::builder().capacity(4).unbounded().build();
        assert_eq!(a.capacity(), None);
        let q = QueueAttrs::builder().capacity(4).unbounded().build();
        assert_eq!(q.capacity(), None);
    }

    #[test]
    fn queue_builder_round_trip() {
        let q = QueueAttrs::builder()
            .capacity(2)
            .overflow(OverflowPolicy::Reject)
            .build();
        assert_eq!(q.capacity(), Some(2));
        assert_eq!(q.overflow(), OverflowPolicy::Reject);
    }

    #[test]
    fn policy_codes_round_trip() {
        for p in [
            OverflowPolicy::Block,
            OverflowPolicy::Reject,
            OverflowPolicy::DropOldest,
        ] {
            assert_eq!(OverflowPolicy::from_code(p.code()), p);
        }
        for g in [GcPolicy::Ref, GcPolicy::Transparent] {
            assert_eq!(GcPolicy::from_code(g.code()), g);
        }
    }

    #[test]
    fn unknown_codes_fall_back_to_defaults() {
        assert_eq!(OverflowPolicy::from_code(77), OverflowPolicy::Block);
        assert_eq!(GcPolicy::from_code(77), GcPolicy::Ref);
    }

    #[test]
    fn shards_default_to_owner_choice() {
        assert_eq!(ChannelAttrs::default().shards(), None);
        assert_eq!(QueueAttrs::default().shards(), None);
        assert_eq!(ChannelAttrs::builder().shards(4).build().shards(), Some(4));
        assert_eq!(QueueAttrs::builder().shards(4).build().shards(), Some(4));
    }
}
