//! Timestamp-indexed channels: the core space-time memory container.
//!
//! A channel stores items indexed by application-defined [`Timestamp`]s and
//! allows *random access* by timestamp (unlike a [`crate::Queue`], which is
//! FIFO). Threads connect for input and/or output and then `put`/`get`
//! items; input connections signal disinterest with `consume_until`, and the
//! channel reclaims items no connection can ever need again (§3.1 of the
//! paper).
//!
//! # Consumption and garbage collection
//!
//! Two policies are available (fixed at creation via
//! `ChannelAttrs`):
//!
//! * [`GcPolicy::Ref`] — each live item tracks the set of input connections
//!   that have not yet consumed it. `consume_until(ts)` marks every item at
//!   or below `ts` consumed by that connection; an item whose pending set
//!   empties is reclaimed.
//! * [`GcPolicy::Transparent`] — connections advance a [`VirtualTime`]
//!   promise instead; items below the minimum virtual-time floor across all
//!   input connections are dead and reclaimed without explicit consumes.
//!
//! In both policies reclamation only happens while at least one input
//! connection is attached: a stream produced before any consumer arrives is
//! retained (subject to the capacity bound).
//!
//! # Blocking
//!
//! `get` blocks until a qualifying item arrives; `put` blocks while the
//! channel is at capacity under [`OverflowPolicy::Block`]. Every blocking
//! operation has `try_` and `_timeout` variants.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_obs::{trace, MetricsRegistry, SpanKind, TraceContext, Tracer};
use parking_lot::{Condvar, Mutex};

use crate::attr::{ChannelAttrs, GcPolicy, OverflowPolicy};
use crate::error::{StmError, StmResult};
use crate::handler::{GarbageEvent, Hooks};
use crate::ids::{ChanId, ConnId, ResourceId};
use crate::item::{Item, StreamItem};
use crate::metrics::StmMetrics;
use crate::time::{Timestamp, VirtualTime};

/// Which item a `get` refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GetSpec {
    /// The item with exactly this timestamp.
    Exact(Timestamp),
    /// The newest item this connection has not consumed.
    Latest,
    /// The oldest item this connection has not consumed.
    Earliest,
    /// The oldest item with timestamp strictly greater than the given one.
    ///
    /// `After` is the natural way to step through a stream: keep the last
    /// timestamp you saw and ask for the next.
    After(Timestamp),
}

/// Where a new input connection starts paying attention.
///
/// Items below the interest point are treated as already consumed by the new
/// connection, so late joiners do not retroactively pin old data (the
/// paper's "selective attention").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interest {
    /// Interested in every item still live in the channel (default).
    #[default]
    FromEarliest,
    /// Interested only in items put after this connection attaches.
    FromLatest,
    /// Interested in items with timestamp at or above the given one.
    FromTs(Timestamp),
}

/// Which item tags an input connection pays attention to.
///
/// This implements the filtering extension the paper lists as future work
/// (§6): "extending the selective attention capability of D-Stampede to
/// perform user defined filtering operations". The filter is fixed at
/// connect time and is *complete* disinterest: filtered-out items are
/// never returned by any get on the connection **and never pinned by it**
/// — an item whose tag no attached connection wants is garbage.
///
/// Reclamation of filtered channels is prefix-ordered by timestamp: a
/// fully-consumed item behind a still-claimed one is collected once the
/// prefix reaches it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum TagFilter {
    /// Attend to every item (default).
    #[default]
    Any,
    /// Attend only to items whose tag is in the set.
    Only(Vec<u32>),
    /// Attend only to items with `tag % modulus == remainder` — the
    /// natural way to stripe fragments across a pool of analysers.
    Stripe {
        /// Divisor (must be non-zero to match anything).
        modulus: u32,
        /// Selected remainder class.
        remainder: u32,
    },
}

impl TagFilter {
    /// Whether an item with this tag passes the filter.
    #[must_use]
    pub fn matches(&self, tag: u32) -> bool {
        match self {
            TagFilter::Any => true,
            TagFilter::Only(tags) => tags.contains(&tag),
            TagFilter::Stripe { modulus, remainder } => {
                *modulus != 0 && tag % modulus == *remainder
            }
        }
    }
}

/// Monotonic counters describing a channel's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Successful puts.
    pub puts: u64,
    /// Successful gets.
    pub gets: u64,
    /// `consume_until` / `set_vt` calls.
    pub consumes: u64,
    /// Items reclaimed by garbage collection.
    pub reclaimed_items: u64,
    /// Payload bytes reclaimed by garbage collection.
    pub reclaimed_bytes: u64,
}

#[derive(Default)]
struct AtomicStats {
    puts: AtomicU64,
    gets: AtomicU64,
    consumes: AtomicU64,
    reclaimed_items: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ChannelStats {
        ChannelStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            consumes: self.consumes.load(Ordering::Relaxed),
            reclaimed_items: self.reclaimed_items.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
        }
    }
}

struct Slot {
    item: Item,
    /// Input connections that have not yet consumed this item (REF policy).
    pending: HashSet<ConnId>,
}

struct InConnState {
    /// Everything at or below this timestamp is consumed by this connection.
    until: Timestamp,
    /// Virtual-time promise (TGC policy).
    vt: VirtualTime,
    /// Which tags this connection attends to.
    filter: TagFilter,
}

impl InConnState {
    /// Highest timestamp this connection is provably done with.
    fn done_through(&self) -> Timestamp {
        self.until.max(self.vt.floor().prev())
    }
}

struct ChanState {
    items: BTreeMap<Timestamp, Slot>,
    /// Every timestamp at or below the floor is permanently gone.
    floor: Timestamp,
    in_conns: HashMap<ConnId, InConnState>,
    out_conns: HashSet<ConnId>,
    next_conn: u64,
    closed: bool,
}

/// A timestamp-indexed space-time memory channel.
///
/// Channels are created through an address-space registry (see
/// [`crate::StmRegistry`]) or directly with [`Channel::new`] for
/// single-address-space use, and are always handled through [`Arc`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dstampede_core::{Channel, ChannelAttrs, GetSpec, Item, Timestamp};
///
/// # fn main() -> Result<(), dstampede_core::StmError> {
/// let chan = Channel::standalone(ChannelAttrs::default());
/// let out = chan.connect_output();
/// let inp = chan.connect_input(Default::default());
///
/// out.put(Timestamp::new(0), Item::from_vec(vec![1, 2, 3]))?;
/// let (ts, item) = inp.get(GetSpec::Exact(Timestamp::new(0)))?;
/// assert_eq!(item.payload(), &[1, 2, 3]);
/// inp.consume_until(ts)?;
/// # Ok(())
/// # }
/// ```
pub struct Channel {
    id: ChanId,
    name: Option<String>,
    attrs: ChannelAttrs,
    state: Mutex<ChanState>,
    items_cv: Condvar,
    space_cv: Condvar,
    hooks: Mutex<Hooks>,
    stats: AtomicStats,
    obs: StmMetrics,
    /// Precomputed `chan:OWNER/INDEX` span label — span recording on
    /// sampled items must not pay a format per edge.
    span_resource: String,
}

impl Channel {
    /// Creates a channel with an explicit system-wide id, reporting
    /// telemetry to the process-global metrics registry.
    ///
    /// Registries call this; for local experimentation use
    /// [`Channel::standalone`].
    #[must_use]
    pub fn new(id: ChanId, name: Option<String>, attrs: ChannelAttrs) -> Arc<Self> {
        Channel::new_in(id, name, attrs, dstampede_obs::global())
    }

    /// Creates a channel reporting telemetry to `metrics` (used by
    /// address-space registries so each space's activity is attributed
    /// separately in cluster-wide snapshots).
    #[must_use]
    pub fn new_in(
        id: ChanId,
        name: Option<String>,
        attrs: ChannelAttrs,
        metrics: &MetricsRegistry,
    ) -> Arc<Self> {
        Arc::new(Channel {
            id,
            name,
            attrs,
            state: Mutex::new(ChanState {
                items: BTreeMap::new(),
                floor: Timestamp::MIN,
                in_conns: HashMap::new(),
                out_conns: HashSet::new(),
                next_conn: 1,
                closed: false,
            }),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            hooks: Mutex::new(Hooks::new()),
            stats: AtomicStats::default(),
            obs: StmMetrics::channel(metrics),
            span_resource: format!("chan:{}/{}", id.owner.0, id.index),
        })
    }

    /// Creates an unregistered channel for single-address-space use.
    #[must_use]
    pub fn standalone(attrs: ChannelAttrs) -> Arc<Self> {
        Channel::new(
            ChanId {
                owner: crate::ids::AsId(0),
                index: 0,
            },
            None,
            attrs,
        )
    }

    /// The channel's system-wide id.
    #[must_use]
    pub fn id(&self) -> ChanId {
        self.id
    }

    /// The channel's registered name, if any.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The creation-time attributes.
    #[must_use]
    pub fn attrs(&self) -> &ChannelAttrs {
        &self.attrs
    }

    /// A snapshot of activity counters.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats.snapshot()
    }

    /// Number of live (unreclaimed) items.
    #[must_use]
    pub fn live_items(&self) -> usize {
        self.state.lock().items.len()
    }

    /// The reclamation floor: every timestamp at or below it is gone.
    #[must_use]
    pub fn gc_floor(&self) -> Timestamp {
        self.state.lock().floor
    }

    /// Installs a garbage hook fired for every reclaimed item.
    ///
    /// The hook runs outside the channel lock, after the item is gone.
    pub fn set_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.lock().set_garbage(hook);
    }

    /// Installs an additional garbage hook alongside any existing ones.
    pub fn add_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.lock().add_garbage(hook);
    }

    /// Opens an input connection.
    ///
    /// The returned guard disconnects on drop, releasing this connection's
    /// claim on unconsumed items.
    #[must_use]
    pub fn connect_input(self: &Arc<Self>, interest: Interest) -> InputConn {
        self.connect_input_filtered(interest, TagFilter::Any)
    }

    /// Opens an input connection attending only to items whose tag passes
    /// `filter` (the user-defined filtering extension; see [`TagFilter`]).
    #[must_use]
    pub fn connect_input_filtered(
        self: &Arc<Self>,
        interest: Interest,
        filter: TagFilter,
    ) -> InputConn {
        let mut st = self.state.lock();
        let id = ConnId(st.next_conn);
        st.next_conn += 1;
        let from = match interest {
            Interest::FromEarliest => Timestamp::MIN,
            Interest::FromLatest => st
                .items
                .keys()
                .next_back()
                .copied()
                .map_or(Timestamp::MIN, Timestamp::next),
            Interest::FromTs(ts) => ts,
        };
        // Items at or above the interest point whose tag passes the filter
        // gain this connection in their pending set; everything else is
        // treated as pre-consumed.
        for (&ts, slot) in st.items.range_mut(from..) {
            debug_assert!(ts >= from);
            if filter.matches(slot.item.tag()) {
                slot.pending.insert(id);
            }
        }
        st.in_conns.insert(
            id,
            InConnState {
                until: from.prev(),
                vt: VirtualTime::START,
                filter,
            },
        );
        drop(st);
        InputConn {
            chan: Arc::clone(self),
            id,
        }
    }

    /// Opens an output connection.
    #[must_use]
    pub fn connect_output(self: &Arc<Self>) -> OutputConn {
        let mut st = self.state.lock();
        let id = ConnId(st.next_conn);
        st.next_conn += 1;
        st.out_conns.insert(id);
        drop(st);
        OutputConn {
            chan: Arc::clone(self),
            id,
        }
    }

    /// Closes the channel: all blocked operations wake with
    /// [`StmError::Closed`], further puts fail, and gets of already-present
    /// items keep working so consumers can drain.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Whether [`Channel::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    // ---- internal operations (used by connection guards and the runtime) --

    /// Resolves a spec against the current state for a given connection.
    /// Returns `Ok(Some(ts))` when an item qualifies now, `Ok(None)` when
    /// one could still arrive, and an error when it never can. Items the
    /// connection's tag filter rejects are invisible to it.
    fn resolve(st: &ChanState, conn: ConnId, spec: GetSpec) -> StmResult<Option<Timestamp>> {
        let c = st.in_conns.get(&conn).ok_or(StmError::NoSuchConnection)?;
        let done = c.done_through();
        let filter = &c.filter;
        match spec {
            GetSpec::Exact(ts) => {
                if ts <= done || ts <= st.floor {
                    return Err(StmError::Dropped);
                }
                match st.items.get(&ts) {
                    Some(slot) if !filter.matches(slot.item.tag()) => Err(StmError::Dropped),
                    Some(_) => Ok(Some(ts)),
                    None => Ok(None),
                }
            }
            GetSpec::Latest => Ok(st
                .items
                .range(done.next()..)
                .rev()
                .find(|(_, slot)| filter.matches(slot.item.tag()))
                .map(|(&ts, _)| ts)),
            GetSpec::Earliest => Ok(st
                .items
                .range(done.next()..)
                .find(|(_, slot)| filter.matches(slot.item.tag()))
                .map(|(&ts, _)| ts)),
            GetSpec::After(after) => {
                let from = after.max(done).next();
                Ok(st
                    .items
                    .range(from..)
                    .find(|(_, slot)| filter.matches(slot.item.tag()))
                    .map(|(&ts, _)| ts))
            }
        }
    }

    /// The stable resource name spans use for this channel.
    fn span_resource(&self) -> &str {
        &self.span_resource
    }

    /// Reconstructs a span start time (µs on the tracer clock) from a
    /// latency-histogram `Instant`, so untraced operations pay no
    /// extra clock reads.
    fn span_start(tracer: &Tracer, started: Instant) -> u64 {
        tracer
            .now_us()
            .saturating_sub(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    pub(crate) fn do_get(
        &self,
        conn: ConnId,
        spec: GetSpec,
        deadline: Deadline,
    ) -> StmResult<(Timestamp, Item)> {
        let started = Instant::now();
        let mut st = self.state.lock();
        loop {
            if let Some(ts) = Self::resolve(&st, conn, spec)? {
                let item = st.items.get(&ts).expect("resolved ts present").item.clone();
                self.stats.gets.fetch_add(1, Ordering::Relaxed);
                self.obs.record_get(started);
                if let Some(ctx) = item.trace_context() {
                    self.obs.tracer.finish(
                        ctx,
                        SpanKind::Get,
                        self.span_resource(),
                        ts.value(),
                        Self::span_start(&self.obs.tracer, started),
                        "",
                    );
                }
                return Ok((ts, item));
            }
            if st.closed {
                return Err(StmError::Closed);
            }
            match deadline {
                Deadline::Now => return Err(StmError::Absent),
                Deadline::Never => {
                    self.items_cv.wait(&mut st);
                }
                Deadline::At(instant) => {
                    if self.items_cv.wait_until(&mut st, instant).timed_out() {
                        return Err(StmError::Timeout);
                    }
                }
            }
        }
    }

    pub(crate) fn do_put(
        &self,
        conn: ConnId,
        ts: Timestamp,
        item: Item,
        deadline: Deadline,
    ) -> StmResult<()> {
        let started = Instant::now();
        // A sampled item that arrives without a context starts its
        // trace here; an ambient context (e.g. a surrogate executing a
        // remote put) takes precedence so the trace begun on the end
        // device is the one that continues.
        let mut item = item;
        if item.trace_context().is_none() {
            item.set_trace_context(
                trace::current().or_else(|| self.obs.tracer.begin_trace(ts.value())),
            );
        }
        let ctx = item.trace_context();
        let len = item.len();
        let mut evicted: Vec<(Timestamp, Slot)> = Vec::new();
        {
            let mut st = self.state.lock();
            if !st.out_conns.contains(&conn) {
                return Err(StmError::NoSuchConnection);
            }
            loop {
                if st.closed {
                    return Err(StmError::Closed);
                }
                if ts <= st.floor {
                    return Err(StmError::TsTooOld);
                }
                if st.items.contains_key(&ts) {
                    return Err(StmError::TsExists);
                }
                let cap = self.attrs.capacity().map(|c| c as usize);
                let full = cap.is_some_and(|c| st.items.len() >= c);
                if !full {
                    break;
                }
                match self.attrs.overflow() {
                    OverflowPolicy::Reject => return Err(StmError::Full),
                    OverflowPolicy::DropOldest => {
                        if let Some((&old_ts, _)) = st.items.iter().next() {
                            let slot = st.items.remove(&old_ts).expect("min key present");
                            st.floor = st.floor.max(old_ts);
                            evicted.push((old_ts, slot));
                        }
                        break;
                    }
                    OverflowPolicy::Block => match deadline {
                        Deadline::Now => return Err(StmError::Full),
                        Deadline::Never => {
                            self.space_cv.wait(&mut st);
                        }
                        Deadline::At(instant) => {
                            if self.space_cv.wait_until(&mut st, instant).timed_out() {
                                return Err(StmError::Timeout);
                            }
                        }
                    },
                }
            }
            let pending: HashSet<ConnId> = st
                .in_conns
                .iter()
                .filter(|(_, c)| c.done_through() < ts && c.filter.matches(item.tag()))
                .map(|(&id, _)| id)
                .collect();
            st.items.insert(ts, Slot { item, pending });
            self.stats.puts.fetch_add(1, Ordering::Relaxed);
            self.obs.occupancy.inc();
            self.obs.record_put(started);
        }
        self.items_cv.notify_all();
        if let Some(ctx) = ctx {
            self.obs.tracer.finish(
                ctx,
                SpanKind::Put,
                self.span_resource(),
                ts.value(),
                Self::span_start(&self.obs.tracer, started),
                &format!("bytes={len}"),
            );
        }
        self.finish_reclaim(evicted);
        Ok(())
    }

    pub(crate) fn do_consume_until(&self, conn: ConnId, upto: Timestamp) -> StmResult<()> {
        let started = Instant::now();
        let reclaimed;
        let mut traced: Vec<(i64, TraceContext)> = Vec::new();
        {
            let mut st = self.state.lock();
            let c = st
                .in_conns
                .get_mut(&conn)
                .ok_or(StmError::NoSuchConnection)?;
            if upto <= c.until {
                return Ok(()); // idempotent: already consumed through here
            }
            c.until = upto;
            for (ts, slot) in st.items.range_mut(..=upto) {
                if slot.pending.remove(&conn) {
                    if let Some(ctx) = slot.item.trace_context() {
                        traced.push((ts.value(), ctx));
                    }
                }
            }
            self.stats.consumes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_consume(started);
            reclaimed = Self::collect(&mut st, self.attrs.gc());
        }
        for (ts, ctx) in traced {
            self.obs
                .tracer
                .instant(ctx, SpanKind::Consume, self.span_resource(), ts, "");
        }
        self.finish_reclaim(reclaimed);
        Ok(())
    }

    pub(crate) fn do_set_vt(&self, conn: ConnId, vt: VirtualTime) -> StmResult<()> {
        let started = Instant::now();
        let reclaimed;
        let mut traced: Vec<(i64, TraceContext)> = Vec::new();
        {
            let mut st = self.state.lock();
            let c = st
                .in_conns
                .get_mut(&conn)
                .ok_or(StmError::NoSuchConnection)?;
            if vt <= c.vt {
                return Ok(()); // virtual time never moves backwards
            }
            c.vt = vt;
            // A virtual-time promise also implies consumption under REF.
            let done = vt.floor().prev();
            if done > c.until {
                c.until = done;
                for (ts, slot) in st.items.range_mut(..=done) {
                    if slot.pending.remove(&conn) {
                        if let Some(ctx) = slot.item.trace_context() {
                            traced.push((ts.value(), ctx));
                        }
                    }
                }
            }
            self.stats.consumes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_consume(started);
            reclaimed = Self::collect(&mut st, self.attrs.gc());
        }
        for (ts, ctx) in traced {
            self.obs
                .tracer
                .instant(ctx, SpanKind::Consume, self.span_resource(), ts, "");
        }
        self.finish_reclaim(reclaimed);
        Ok(())
    }

    pub(crate) fn do_disconnect_input(&self, conn: ConnId) {
        let reclaimed;
        {
            let mut st = self.state.lock();
            if st.in_conns.remove(&conn).is_none() {
                return;
            }
            for (_, slot) in st.items.iter_mut() {
                slot.pending.remove(&conn);
            }
            // The departing connection's claims are released, but if it was
            // the *last* input connection, unconsumed items are retained for
            // future joiners — a crashed consumer must not take data with it
            // (failure-handling extension; see module docs).
            reclaimed = Self::collect(&mut st, self.attrs.gc());
        }
        // Wake blocked getters on this connection so they observe
        // NoSuchConnection instead of sleeping until the next put.
        self.items_cv.notify_all();
        self.finish_reclaim(reclaimed);
    }

    pub(crate) fn do_disconnect_output(&self, conn: ConnId) {
        let mut st = self.state.lock();
        st.out_conns.remove(&conn);
    }

    /// Collects dead items. Requires at least one input connection so that
    /// pre-consumer streams are retained.
    fn collect(st: &mut ChanState, policy: GcPolicy) -> Vec<(Timestamp, Slot)> {
        if st.in_conns.is_empty() {
            return Vec::new();
        }
        Self::collect_inner(st, policy)
    }

    fn collect_inner(st: &mut ChanState, policy: GcPolicy) -> Vec<(Timestamp, Slot)> {
        let dead_through: Timestamp = match policy {
            GcPolicy::Ref => {
                // Reclamation is prefix-based: collect the leading run of
                // items nobody still claims. Without tag filters pending
                // sets are monotone in ts, so the prefix is exact; with
                // filters a dead item can sit behind a live one and is
                // reclaimed when the prefix reaches it (safety unaffected,
                // liveness slightly lazy — see TagFilter docs).
                let mut last = None;
                for (&ts, slot) in st.items.iter() {
                    if slot.pending.is_empty() {
                        last = Some(ts);
                    } else {
                        break;
                    }
                }
                match last {
                    Some(ts) => ts,
                    None => return Vec::new(),
                }
            }
            GcPolicy::Transparent => {
                let min_floor = st
                    .in_conns
                    .values()
                    .map(|c| c.vt.floor())
                    .min()
                    .unwrap_or(Timestamp::MIN);
                min_floor.prev()
            }
        };
        let mut reclaimed = Vec::new();
        while let Some((&ts, _)) = st.items.iter().next() {
            if ts > dead_through {
                break;
            }
            let slot = st.items.remove(&ts).expect("min key present");
            reclaimed.push((ts, slot));
        }
        if let Some((ts, _)) = reclaimed.last() {
            st.floor = st.floor.max(*ts);
        }
        reclaimed
    }

    /// Fires hooks and wakes blocked putters, outside the state lock.
    fn finish_reclaim(&self, reclaimed: Vec<(Timestamp, Slot)>) {
        if reclaimed.is_empty() {
            return;
        }
        self.space_cv.notify_all();
        self.obs
            .occupancy
            .add(-i64::try_from(reclaimed.len()).unwrap_or(i64::MAX));
        let hooks = self.hooks.lock().clone();
        let mut bytes = 0u64;
        for (ts, slot) in &reclaimed {
            self.stats.reclaimed_items.fetch_add(1, Ordering::Relaxed);
            self.stats
                .reclaimed_bytes
                .fetch_add(slot.item.len() as u64, Ordering::Relaxed);
            bytes += slot.item.len() as u64;
            if let Some(ctx) = slot.item.trace_context() {
                self.obs.tracer.instant(
                    ctx,
                    SpanKind::GcReclaim,
                    self.span_resource(),
                    ts.value(),
                    &format!("bytes={}", slot.item.len()),
                );
            }
            hooks.fire_garbage(&GarbageEvent {
                resource: ResourceId::Channel(self.id),
                ts: *ts,
                tag: slot.item.tag(),
                len: slot.item.len() as u32,
            });
        }
        self.obs.record_reclaim(reclaimed.len() as u64, bytes);
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Channel")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("live_items", &st.items.len())
            .field("in_conns", &st.in_conns.len())
            .field("out_conns", &st.out_conns.len())
            .field("closed", &st.closed)
            .finish()
    }
}

/// Deadline discipline for blocking operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Deadline {
    /// Fail immediately instead of blocking.
    Now,
    /// Block indefinitely.
    Never,
    /// Block until the given instant.
    At(std::time::Instant),
}

impl Deadline {
    pub(crate) fn after(d: Duration) -> Self {
        Deadline::At(std::time::Instant::now() + d)
    }
}

/// An input connection to a [`Channel`]; disconnects on drop.
///
/// See the [`Channel`] example for typical use.
pub struct InputConn {
    chan: Arc<Channel>,
    id: ConnId,
}

impl InputConn {
    /// This connection's id (unique within the channel).
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The channel this connection is attached to.
    #[must_use]
    pub fn channel(&self) -> &Arc<Channel> {
        &self.chan
    }

    /// Blocking get.
    ///
    /// # Errors
    ///
    /// [`StmError::Dropped`] if the requested item was consumed or
    /// collected, [`StmError::Closed`] if the channel closes while waiting,
    /// [`StmError::NoSuchConnection`] if the connection was torn down.
    pub fn get(&self, spec: GetSpec) -> StmResult<(Timestamp, Item)> {
        self.chan.do_get(self.id, spec, Deadline::Never)
    }

    /// Non-blocking get.
    ///
    /// # Errors
    ///
    /// As [`InputConn::get`], plus [`StmError::Absent`] when no qualifying
    /// item is present right now.
    pub fn try_get(&self, spec: GetSpec) -> StmResult<(Timestamp, Item)> {
        self.chan.do_get(self.id, spec, Deadline::Now)
    }

    /// Get with a timeout.
    ///
    /// # Errors
    ///
    /// As [`InputConn::get`], plus [`StmError::Timeout`].
    pub fn get_timeout(&self, spec: GetSpec, timeout: Duration) -> StmResult<(Timestamp, Item)> {
        self.chan.do_get(self.id, spec, Deadline::after(timeout))
    }

    /// Typed blocking get via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`InputConn::get`], plus decoding errors from `T`.
    pub fn get_typed<T: StreamItem>(&self, spec: GetSpec) -> StmResult<(Timestamp, T)> {
        let (ts, item) = self.get(spec)?;
        Ok((ts, item.decode::<T>()?))
    }

    /// Declares every item at or below `upto` garbage as far as this
    /// connection is concerned. Idempotent; never un-consumes.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchConnection`] if the connection was torn down.
    pub fn consume_until(&self, upto: Timestamp) -> StmResult<()> {
        self.chan.do_consume_until(self.id, upto)
    }

    /// Advances this connection's virtual-time promise: it will never again
    /// request items below `vt`'s floor. Drives reclamation under
    /// [`GcPolicy::Transparent`]; implies consumption under [`GcPolicy::Ref`].
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchConnection`] if the connection was torn down.
    pub fn set_vt(&self, vt: VirtualTime) -> StmResult<()> {
        self.chan.do_set_vt(self.id, vt)
    }

    /// Tears the connection down now rather than waiting for drop: the
    /// connection's claims are released (its virtual time no longer
    /// constrains reclamation) and any getter blocked on it wakes with
    /// [`StmError::NoSuchConnection`]. Idempotent; the eventual drop
    /// becomes a no-op. Used by failure recovery to orphan connections
    /// still referenced by blocked workers.
    pub fn disconnect(&self) {
        self.chan.do_disconnect_input(self.id);
    }
}

impl fmt::Debug for InputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InputConn")
            .field("chan", &self.chan.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for InputConn {
    fn drop(&mut self) {
        self.chan.do_disconnect_input(self.id);
    }
}

/// An output connection to a [`Channel`]; disconnects on drop.
pub struct OutputConn {
    chan: Arc<Channel>,
    id: ConnId,
}

impl OutputConn {
    /// This connection's id (unique within the channel).
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The channel this connection is attached to.
    #[must_use]
    pub fn channel(&self) -> &Arc<Channel> {
        &self.chan
    }

    /// Blocking put (blocks only when the channel is bounded with
    /// [`OverflowPolicy::Block`] and full).
    ///
    /// # Errors
    ///
    /// [`StmError::TsExists`] for duplicate timestamps,
    /// [`StmError::TsTooOld`] for timestamps below the reclamation floor,
    /// [`StmError::Full`] under [`OverflowPolicy::Reject`],
    /// [`StmError::Closed`] after close.
    pub fn put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.chan.do_put(self.id, ts, item, Deadline::Never)
    }

    /// Non-blocking put.
    ///
    /// # Errors
    ///
    /// As [`OutputConn::put`], with [`StmError::Full`] instead of blocking.
    pub fn try_put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.chan.do_put(self.id, ts, item, Deadline::Now)
    }

    /// Put with a timeout on the capacity wait.
    ///
    /// # Errors
    ///
    /// As [`OutputConn::put`], plus [`StmError::Timeout`].
    pub fn put_timeout(&self, ts: Timestamp, item: Item, timeout: Duration) -> StmResult<()> {
        self.chan
            .do_put(self.id, ts, item, Deadline::after(timeout))
    }

    /// Typed put via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`OutputConn::put`].
    pub fn put_typed<T: StreamItem>(&self, ts: Timestamp, value: &T) -> StmResult<()> {
        self.put(ts, value.to_item())
    }

    /// Tears the connection down now rather than waiting for drop.
    /// Idempotent; used by failure recovery.
    pub fn disconnect(&self) {
        self.chan.do_disconnect_output(self.id);
    }
}

impl fmt::Debug for OutputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OutputConn")
            .field("chan", &self.chan.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for OutputConn {
    fn drop(&mut self) {
        self.chan.do_disconnect_output(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn item(bytes: &[u8]) -> Item {
        Item::copy_from_slice(bytes)
    }

    fn ts(v: i64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn put_get_round_trip() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"hello")).unwrap();
        let (t, it) = inp.get(GetSpec::Exact(ts(1))).unwrap();
        assert_eq!(t, ts(1));
        assert_eq!(it.payload(), b"hello");
    }

    #[test]
    fn duplicate_put_rejected() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.put(ts(1), item(b"b")), Err(StmError::TsExists));
    }

    #[test]
    fn try_get_absent() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        assert_eq!(
            inp.try_get(GetSpec::Exact(ts(5))).unwrap_err(),
            StmError::Absent
        );
    }

    #[test]
    fn random_access_any_order() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in [5i64, 1, 3] {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        for v in [3i64, 5, 1] {
            let (_, it) = inp.get(GetSpec::Exact(ts(v))).unwrap();
            assert_eq!(it.payload(), &[v as u8]);
        }
    }

    #[test]
    fn latest_earliest_after() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in 1..=5 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        assert_eq!(inp.try_get(GetSpec::Latest).unwrap().0, ts(5));
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(1));
        assert_eq!(inp.try_get(GetSpec::After(ts(2))).unwrap().0, ts(3));
        assert_eq!(
            inp.try_get(GetSpec::After(ts(5))).unwrap_err(),
            StmError::Absent
        );
    }

    #[test]
    fn consume_hides_items_from_this_connection() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        a.consume_until(ts(2)).unwrap();
        assert_eq!(
            a.try_get(GetSpec::Exact(ts(2))).unwrap_err(),
            StmError::Dropped
        );
        assert_eq!(a.try_get(GetSpec::Earliest).unwrap().0, ts(3));
        // b is unaffected; items 1..=2 are still live because b has not consumed.
        assert_eq!(b.try_get(GetSpec::Exact(ts(1))).unwrap().0, ts(1));
        assert_eq!(ch.live_items(), 3);
    }

    #[test]
    fn reclaim_when_all_inputs_consume() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        a.consume_until(ts(2)).unwrap();
        assert_eq!(ch.live_items(), 3);
        b.consume_until(ts(1)).unwrap();
        assert_eq!(ch.live_items(), 2); // ts 1 reclaimed
        assert_eq!(ch.gc_floor(), ts(1));
        b.consume_until(ts(3)).unwrap();
        assert_eq!(ch.live_items(), 1); // ts 2 reclaimed (a consumed through 2)
        a.consume_until(ts(3)).unwrap();
        assert_eq!(ch.live_items(), 0);
        assert_eq!(ch.gc_floor(), ts(3));
        let s = ch.stats();
        assert_eq!(s.reclaimed_items, 3);
        assert_eq!(s.reclaimed_bytes, 3);
    }

    #[test]
    fn put_below_floor_rejected() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        inp.consume_until(ts(1)).unwrap();
        assert_eq!(out.put(ts(1), item(b"y")), Err(StmError::TsTooOld));
        assert_eq!(out.put(ts(0), item(b"y")), Err(StmError::TsTooOld));
        out.put(ts(2), item(b"z")).unwrap();
    }

    #[test]
    fn no_reclaim_without_input_connections() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        assert_eq!(ch.live_items(), 3);
        // A late consumer still sees everything.
        let inp = ch.connect_input(Interest::default());
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(1));
    }

    #[test]
    fn from_latest_interest_skips_existing_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        out.put(ts(1), item(b"old")).unwrap();
        let inp = ch.connect_input(Interest::FromLatest);
        assert_eq!(
            inp.try_get(GetSpec::Exact(ts(1))).unwrap_err(),
            StmError::Dropped
        );
        out.put(ts(2), item(b"new")).unwrap();
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(2));
    }

    #[test]
    fn from_ts_interest() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        for v in 1..=4 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        let inp = ch.connect_input(Interest::FromTs(ts(3)));
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(3));
        // Consuming through 4 reclaims nothing below 3 on account of this
        // conn alone (it never held 1..2), and no other conn exists, so all
        // four items reclaim once it consumes: 1,2 had empty pending sets.
        inp.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn disconnect_releases_pending_claims() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        a.consume_until(ts(1)).unwrap();
        assert_eq!(ch.live_items(), 1); // b still pending
        drop(b);
        assert_eq!(ch.live_items(), 0); // b's claim released
    }

    #[test]
    fn blocking_get_wakes_on_put() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let out = ch2.connect_output();
            out.put(ts(7), item(b"late")).unwrap();
        });
        let (t, it) = inp.get(GetSpec::Exact(ts(7))).unwrap();
        assert_eq!(t, ts(7));
        assert_eq!(it.payload(), b"late");
        h.join().unwrap();
    }

    #[test]
    fn get_timeout_expires() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let err = inp
            .get_timeout(GetSpec::Exact(ts(1)), Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, StmError::Timeout);
    }

    #[test]
    fn bounded_block_policy_paces_producer() {
        let attrs = ChannelAttrs::builder().capacity(2).build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        assert_eq!(out.try_put(ts(3), item(b"c")), Err(StmError::Full));
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            // Consume ts 1 to free a slot.
            inp.consume_until(ts(1)).unwrap();
            inp // keep conn alive until producer finished
        });
        out.put(ts(3), item(b"c")).unwrap(); // blocks until consume
        assert_eq!(ch2.live_items(), 3 - 1);
        drop(h.join().unwrap());
    }

    #[test]
    fn bounded_reject_policy() {
        let attrs = ChannelAttrs::builder()
            .capacity(1)
            .overflow(OverflowPolicy::Reject)
            .build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.put(ts(2), item(b"b")), Err(StmError::Full));
    }

    #[test]
    fn bounded_drop_oldest_policy_fires_hook() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&dropped);
        let attrs = ChannelAttrs::builder()
            .capacity(2)
            .overflow(OverflowPolicy::DropOldest)
            .build();
        let ch = Channel::standalone(attrs);
        ch.set_garbage_hook(move |e| {
            assert_eq!(e.ts, ts(1));
            d2.fetch_add(1, Ordering::SeqCst);
        });
        let out = ch.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        out.put(ts(3), item(b"c")).unwrap(); // evicts ts 1
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
        assert_eq!(ch.live_items(), 2);
        assert_eq!(ch.gc_floor(), ts(1));
    }

    #[test]
    fn close_wakes_blocked_getter() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            ch2.close();
        });
        assert_eq!(
            inp.get(GetSpec::Exact(ts(1))).unwrap_err(),
            StmError::Closed
        );
        h.join().unwrap();
    }

    #[test]
    fn close_allows_draining_present_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        ch.close();
        assert!(ch.is_closed());
        assert_eq!(out.put(ts(2), item(b"y")), Err(StmError::Closed));
        assert_eq!(inp.get(GetSpec::Exact(ts(1))).unwrap().0, ts(1));
    }

    #[test]
    fn transparent_gc_reclaims_by_virtual_time() {
        let attrs = ChannelAttrs::builder().gc(GcPolicy::Transparent).build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        for v in 1..=5 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        a.set_vt(VirtualTime::at(ts(4))).unwrap();
        assert_eq!(ch.live_items(), 5); // b still at START
        b.set_vt(VirtualTime::at(ts(3))).unwrap();
        // min floor = 3 => ts 1,2 dead
        assert_eq!(ch.live_items(), 3);
        assert_eq!(ch.gc_floor(), ts(2));
    }

    #[test]
    fn virtual_time_never_regresses() {
        let attrs = ChannelAttrs::builder().gc(GcPolicy::Transparent).build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        a.set_vt(VirtualTime::at(ts(5))).unwrap();
        a.set_vt(VirtualTime::at(ts(2))).unwrap(); // ignored
        assert_eq!(ch.live_items(), 0);
        assert_eq!(
            a.try_get(GetSpec::Exact(ts(3))).unwrap_err(),
            StmError::Dropped
        );
    }

    #[test]
    fn typed_put_get() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put_typed(ts(1), &"frame-1".to_owned()).unwrap();
        let (_, s) = inp.get_typed::<String>(GetSpec::Exact(ts(1))).unwrap();
        assert_eq!(s, "frame-1");
    }

    #[test]
    fn stats_track_operations() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"abc")).unwrap();
        let _ = inp.get(GetSpec::Exact(ts(1))).unwrap();
        let _ = inp.get(GetSpec::Exact(ts(1))).unwrap();
        inp.consume_until(ts(1)).unwrap();
        let s = ch.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.consumes, 1);
        assert_eq!(s.reclaimed_items, 1);
        assert_eq!(s.reclaimed_bytes, 3);
    }

    #[test]
    fn consume_is_idempotent() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        inp.consume_until(ts(1)).unwrap();
        inp.consume_until(ts(1)).unwrap();
        inp.consume_until(ts(0)).unwrap(); // lower: no-op
        assert_eq!(ch.stats().consumes, 1);
    }

    #[test]
    fn garbage_hook_runs_for_normal_reclaim() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&events);
        let ch = Channel::standalone(ChannelAttrs::default());
        ch.set_garbage_hook(move |e| e2.lock().push((e.ts, e.len)));
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"abcd")).unwrap();
        inp.consume_until(ts(1)).unwrap();
        assert_eq!(events.lock().as_slice(), &[(ts(1), 4)]);
    }

    #[test]
    fn many_producers_many_consumers() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let mut handles = Vec::new();
        for p in 0..4 {
            let ch = Arc::clone(&ch);
            handles.push(thread::spawn(move || {
                let out = ch.connect_output();
                for i in 0..50 {
                    out.put(ts(p * 1000 + i), item(&[p as u8])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let inp = ch.connect_input(Interest::default());
        let mut count = 0;
        let mut last = Timestamp::MIN;
        while let Ok((t, _)) = inp.try_get(GetSpec::After(last)) {
            assert!(t > last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 200);
    }

    #[test]
    fn get_after_steps_in_order() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in [10i64, 20, 30] {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        let mut seen = Vec::new();
        let mut last = Timestamp::MIN;
        while let Ok((t, _)) = inp.try_get(GetSpec::After(last)) {
            seen.push(t.value());
            last = t;
        }
        assert_eq!(seen, vec![10, 20, 30]);
    }

    #[test]
    fn debug_impl_is_informative() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let s = format!("{ch:?}");
        assert!(s.contains("Channel"));
        assert!(s.contains("live_items"));
    }

    #[test]
    fn tag_filter_matching() {
        assert!(TagFilter::Any.matches(7));
        let only = TagFilter::Only(vec![1, 3]);
        assert!(only.matches(1));
        assert!(only.matches(3));
        assert!(!only.matches(2));
        let stripe = TagFilter::Stripe {
            modulus: 3,
            remainder: 1,
        };
        assert!(stripe.matches(1));
        assert!(stripe.matches(4));
        assert!(!stripe.matches(3));
        assert!(!TagFilter::Stripe {
            modulus: 0,
            remainder: 0
        }
        .matches(0));
    }

    #[test]
    fn filtered_connection_sees_only_matching_tags() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input_filtered(Interest::default(), TagFilter::Only(vec![1]));
        out.put(ts(1), item(b"a").with_tag(0)).unwrap();
        out.put(ts(2), item(b"b").with_tag(1)).unwrap();
        out.put(ts(3), item(b"c").with_tag(0)).unwrap();
        out.put(ts(4), item(b"d").with_tag(1)).unwrap();
        // Earliest/Latest/After skip non-matching tags.
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(2));
        assert_eq!(inp.try_get(GetSpec::Latest).unwrap().0, ts(4));
        assert_eq!(inp.try_get(GetSpec::After(ts(2))).unwrap().0, ts(4));
        // Exact of a filtered-out item reads as dropped (declared
        // disinterest).
        assert_eq!(
            inp.try_get(GetSpec::Exact(ts(1))).unwrap_err(),
            StmError::Dropped
        );
    }

    #[test]
    fn filtered_connections_do_not_pin_unwanted_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let even = ch.connect_input_filtered(
            Interest::default(),
            TagFilter::Stripe {
                modulus: 2,
                remainder: 0,
            },
        );
        let odd = ch.connect_input_filtered(
            Interest::default(),
            TagFilter::Stripe {
                modulus: 2,
                remainder: 1,
            },
        );
        for v in 1..=4 {
            out.put(ts(v), item(&[v as u8]).with_tag(v as u32)).unwrap();
        }
        // Each consumes only what it attends to. Reclamation is
        // prefix-ordered: after `even` consumes, the even-tagged items are
        // dead but sit behind ts 1 (still claimed by `odd`), so nothing
        // reclaims yet.
        even.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 4);
        // Once `odd` consumes too, the whole prefix is dead.
        odd.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn items_nobody_attends_to_are_garbage() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input_filtered(Interest::default(), TagFilter::Only(vec![5]));
        out.put(ts(1), item(b"junk").with_tag(9)).unwrap();
        out.put(ts(2), item(b"want").with_tag(5)).unwrap();
        // Consuming through ts 2 collects both: the tag-9 item was never
        // claimed by anyone.
        let (t, _) = inp.get(GetSpec::Earliest).unwrap();
        assert_eq!(t, ts(2));
        inp.consume_until(t).unwrap();
        assert_eq!(ch.live_items(), 0);
        assert_eq!(ch.stats().reclaimed_items, 2);
    }

    #[test]
    fn filter_applies_to_preexisting_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        out.put(ts(1), item(b"x").with_tag(0)).unwrap();
        out.put(ts(2), item(b"y").with_tag(1)).unwrap();
        let inp = ch.connect_input_filtered(Interest::FromEarliest, TagFilter::Only(vec![1]));
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(2));
        inp.consume_until(ts(2)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn explicit_disconnect_wakes_blocked_getter() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = Arc::new(ch.connect_input(Interest::default()));
        let waiter = Arc::clone(&inp);
        let h = thread::spawn(move || waiter.get(GetSpec::Earliest));
        thread::sleep(Duration::from_millis(50));
        inp.disconnect();
        assert_eq!(
            h.join().unwrap().unwrap_err(),
            StmError::NoSuchConnection,
            "a getter blocked on a disconnected connection must wake"
        );
        // Idempotent: a second disconnect (and the eventual drop) is a no-op.
        inp.disconnect();
    }

    #[test]
    fn disconnect_releases_claims_for_reclamation() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let slow = ch.connect_input(Interest::default());
        let fast = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        fast.consume_until(ts(2)).unwrap();
        // `slow` still claims everything, so nothing reclaims.
        assert_eq!(ch.live_items(), 2);
        // Orphaning `slow` (crashed peer) releases its claims; `fast`
        // remains connected so the dead prefix is reclaimed.
        slow.disconnect();
        assert_eq!(ch.live_items(), 0);
        assert_eq!(ch.stats().reclaimed_items, 2);
    }
}
