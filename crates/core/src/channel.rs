//! Timestamp-indexed channels: the core space-time memory container.
//!
//! A channel stores items indexed by application-defined [`Timestamp`]s and
//! allows *random access* by timestamp (unlike a [`crate::Queue`], which is
//! FIFO). Threads connect for input and/or output and then `put`/`get`
//! items; input connections signal disinterest with `consume_until`, and the
//! channel reclaims items no connection can ever need again (§3.1 of the
//! paper).
//!
//! # Sharded storage
//!
//! Item storage is striped across N timestamp-partitioned shards (an item
//! with timestamp `ts` lives in shard `ts mod N`, Euclidean), each behind
//! its own lock. The connection table sits behind a read-write lock taken
//! in read mode by every data-path operation, and per-connection consume
//! cursors are monotone atomics advanced with `fetch_max` — so a
//! `consume_until`/`set_vt` sweeping one shard never serializes a `put`
//! landing in another. The GC floor and live count are merged across
//! shards from monotone atomics. Shard count comes from
//! [`ChannelAttrs::shards`] (default [`DEFAULT_STM_SHARDS`]); one shard
//! reproduces the classic single-lock behaviour exactly.
//!
//! # Consumption and garbage collection
//!
//! Two policies are available (fixed at creation via
//! `ChannelAttrs`):
//!
//! * [`GcPolicy::Ref`] — each live item tracks the set of input connections
//!   that have not yet consumed it. `consume_until(ts)` marks every item at
//!   or below `ts` consumed by that connection; an item whose pending set
//!   empties is reclaimed.
//! * [`GcPolicy::Transparent`] — connections advance a [`VirtualTime`]
//!   promise instead; items below the minimum virtual-time floor across all
//!   input connections are dead and reclaimed without explicit consumes.
//!
//! In both policies reclamation only happens while at least one input
//! connection is attached: a stream produced before any consumer arrives is
//! retained (subject to the capacity bound).
//!
//! # Blocking
//!
//! `get` blocks until a qualifying item arrives; `put` blocks while the
//! channel is at capacity under [`OverflowPolicy::Block`]. Every blocking
//! operation has `try_` and `_timeout` variants.
//!
//! # Batching
//!
//! [`OutputConn::put_many`] and [`InputConn::get_many`] move a batch of
//! items in one call: one connection-table read lock, one lock acquisition
//! per shard touched, and one wakeup for the whole batch. Batch operations
//! are per-item independent — each item succeeds or fails exactly as its
//! singleton counterpart would, and a failure never rolls back its
//! neighbours.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_obs::{trace, MetricsRegistry, SpanKind, TraceContext, Tracer};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::attr::{ChannelAttrs, GcPolicy, OverflowPolicy};
use crate::error::{StmError, StmResult};
use crate::handler::{GarbageEvent, HookSlot, PutEvent};
use crate::ids::{ChanId, ConnId, ResourceId};
use crate::item::{Item, StreamItem};
use crate::metrics::StmMetrics;
use crate::time::{Timestamp, VirtualTime};
use crate::waiter::WakerSet;

/// Default number of storage shards for channels and queues when the
/// creation attributes leave it unspecified.
pub const DEFAULT_STM_SHARDS: u32 = 8;

/// Which item a `get` refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GetSpec {
    /// The item with exactly this timestamp.
    Exact(Timestamp),
    /// The newest item this connection has not consumed.
    Latest,
    /// The oldest item this connection has not consumed.
    Earliest,
    /// The oldest item with timestamp strictly greater than the given one.
    ///
    /// `After` is the natural way to step through a stream: keep the last
    /// timestamp you saw and ask for the next.
    After(Timestamp),
}

/// Where a new input connection starts paying attention.
///
/// Items below the interest point are treated as already consumed by the new
/// connection, so late joiners do not retroactively pin old data (the
/// paper's "selective attention").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interest {
    /// Interested in every item still live in the channel (default).
    #[default]
    FromEarliest,
    /// Interested only in items put after this connection attaches.
    FromLatest,
    /// Interested in items with timestamp at or above the given one.
    FromTs(Timestamp),
}

/// Which item tags an input connection pays attention to.
///
/// This implements the filtering extension the paper lists as future work
/// (§6): "extending the selective attention capability of D-Stampede to
/// perform user defined filtering operations". The filter is fixed at
/// connect time and is *complete* disinterest: filtered-out items are
/// never returned by any get on the connection **and never pinned by it**
/// — an item whose tag no attached connection wants is garbage.
///
/// Reclamation of filtered channels is prefix-ordered by timestamp: a
/// fully-consumed item behind a still-claimed one is collected once the
/// prefix reaches it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum TagFilter {
    /// Attend to every item (default).
    #[default]
    Any,
    /// Attend only to items whose tag is in the set.
    Only(Vec<u32>),
    /// Attend only to items with `tag % modulus == remainder` — the
    /// natural way to stripe fragments across a pool of analysers.
    Stripe {
        /// Divisor (must be non-zero to match anything).
        modulus: u32,
        /// Selected remainder class.
        remainder: u32,
    },
}

impl TagFilter {
    /// Whether an item with this tag passes the filter.
    #[must_use]
    pub fn matches(&self, tag: u32) -> bool {
        match self {
            TagFilter::Any => true,
            TagFilter::Only(tags) => tags.contains(&tag),
            TagFilter::Stripe { modulus, remainder } => {
                *modulus != 0 && tag % modulus == *remainder
            }
        }
    }
}

/// Monotonic counters describing a channel's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Successful puts.
    pub puts: u64,
    /// Successful gets.
    pub gets: u64,
    /// `consume_until` / `set_vt` calls.
    pub consumes: u64,
    /// Items reclaimed by garbage collection.
    pub reclaimed_items: u64,
    /// Payload bytes reclaimed by garbage collection.
    pub reclaimed_bytes: u64,
}

#[derive(Default)]
struct AtomicStats {
    puts: AtomicU64,
    gets: AtomicU64,
    consumes: AtomicU64,
    reclaimed_items: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ChannelStats {
        ChannelStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            consumes: self.consumes.load(Ordering::Relaxed),
            reclaimed_items: self.reclaimed_items.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
        }
    }
}

struct Slot {
    item: Item,
    /// Input connections that have not yet consumed this item (REF policy).
    pending: HashSet<ConnId>,
}

/// Per-input-connection state. The cursors are monotone and advanced with
/// `fetch_max`, so consumes and virtual-time promises need only a *read*
/// lock on the connection table — the shard locks order them against puts.
struct InConn {
    /// Everything at or below this timestamp is consumed by this connection.
    until: AtomicI64,
    /// Virtual-time promise floor (TGC policy).
    vt_floor: AtomicI64,
    /// Which tags this connection attends to.
    filter: TagFilter,
}

impl InConn {
    /// Highest timestamp this connection is provably done with.
    fn done_through(&self) -> Timestamp {
        let until = Timestamp::new(self.until.load(Ordering::SeqCst));
        let vt = Timestamp::new(self.vt_floor.load(Ordering::SeqCst));
        until.max(vt.prev())
    }
}

/// Connection table and lifecycle flags. Shard locks nest strictly inside
/// this lock; gates are only touched with no container lock held.
struct ChanMeta {
    in_conns: HashMap<ConnId, InConn>,
    out_conns: HashSet<ConnId>,
    next_conn: u64,
    closed: bool,
}

/// An eventcount-style wakeup gate: waiters register, snapshot a sequence
/// number, re-check their predicate, and sleep only while the sequence is
/// unchanged. Notifiers pay a single atomic load when nobody is waiting,
/// keeping the uncontended put path free of condvar traffic.
struct Gate {
    seq: Mutex<u64>,
    cv: Condvar,
    waiters: AtomicUsize,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            seq: Mutex::new(0),
            cv: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Registers intent to wait and snapshots the wakeup sequence. Must be
    /// paired with exactly one `wait` or `unregister`.
    fn register(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        *self.seq.lock()
    }

    /// Drops a registration without waiting.
    fn unregister(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocks until the sequence moves past `snap` or the deadline expires;
    /// returns `false` on timeout. Unregisters in every case.
    fn wait(&self, snap: u64, deadline: Deadline) -> bool {
        let timed_out = {
            let mut seq = self.seq.lock();
            let mut timed_out = false;
            while *seq == snap && !timed_out {
                match deadline {
                    Deadline::Now => timed_out = true,
                    Deadline::Never => self.cv.wait(&mut seq),
                    Deadline::At(at) => {
                        timed_out = self.cv.wait_until(&mut seq, at).timed_out();
                    }
                }
            }
            timed_out
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        !timed_out
    }

    /// Wakes every registered waiter. The state change that satisfies the
    /// waiter's predicate must be published (its lock released) before the
    /// call; the SeqCst register/load pair then makes missed wakeups
    /// impossible.
    fn notify(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            {
                let mut seq = self.seq.lock();
                *seq = seq.wrapping_add(1);
            }
            self.cv.notify_all();
        }
    }
}

/// A timestamp-indexed space-time memory channel.
///
/// Channels are created through an address-space registry (see
/// [`crate::StmRegistry`]) or directly with [`Channel::new`] for
/// single-address-space use, and are always handled through [`Arc`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dstampede_core::{Channel, ChannelAttrs, GetSpec, Item, Timestamp};
///
/// # fn main() -> Result<(), dstampede_core::StmError> {
/// let chan = Channel::standalone(ChannelAttrs::default());
/// let out = chan.connect_output();
/// let inp = chan.connect_input(Default::default());
///
/// out.put(Timestamp::new(0), Item::from_vec(vec![1, 2, 3]))?;
/// let (ts, item) = inp.get(GetSpec::Exact(Timestamp::new(0)))?;
/// assert_eq!(item.payload(), &[1, 2, 3]);
/// inp.consume_until(ts)?;
/// # Ok(())
/// # }
/// ```
pub struct Channel {
    id: ChanId,
    name: Option<String>,
    attrs: ChannelAttrs,
    meta: RwLock<ChanMeta>,
    /// Timestamp-striped item storage: `ts` lands in shard
    /// `ts mod shards.len()` (Euclidean).
    shards: Box<[Mutex<BTreeMap<Timestamp, Slot>>]>,
    /// Cached minimum key per shard (`i64::MAX` when empty). Written only
    /// under the matching shard lock; read lock-free as a reclamation
    /// skip hint — stale reads are safe because a missed fresh minimum is
    /// simply collected on a later pass.
    shard_lows: Box<[AtomicI64]>,
    /// Reclamation floor; monotone, advanced with `fetch_max` only.
    floor: AtomicI64,
    /// Live item count across all shards.
    live: AtomicUsize,
    /// Live items carrying a trace context. When zero, consume paths
    /// skip the per-item walk that emits Consume trace events.
    traced_live: AtomicUsize,
    items_gate: Gate,
    space_gate: Gate,
    /// Reactor-task counterparts of the gates: parked wakers, woken at
    /// exactly the same sites the gates notify.
    items_wakers: WakerSet,
    space_wakers: WakerSet,
    hooks: HookSlot,
    /// Fast-path flag: put paths clone the payload handle for put hooks
    /// only when one is installed, so unhooked channels pay nothing.
    put_hooked: AtomicBool,
    stats: AtomicStats,
    obs: StmMetrics,
    /// Precomputed `chan:OWNER/INDEX` span label — span recording on
    /// sampled items must not pay a format per edge.
    span_resource: String,
}

impl Channel {
    /// Creates a channel with an explicit system-wide id, reporting
    /// telemetry to the process-global metrics registry.
    ///
    /// Registries call this; for local experimentation use
    /// [`Channel::standalone`].
    #[must_use]
    pub fn new(id: ChanId, name: Option<String>, attrs: ChannelAttrs) -> Arc<Self> {
        Channel::new_in(id, name, attrs, dstampede_obs::global())
    }

    /// Creates a channel reporting telemetry to `metrics` (used by
    /// address-space registries so each space's activity is attributed
    /// separately in cluster-wide snapshots).
    #[must_use]
    pub fn new_in(
        id: ChanId,
        name: Option<String>,
        attrs: ChannelAttrs,
        metrics: &MetricsRegistry,
    ) -> Arc<Self> {
        let nshards = attrs.shards().unwrap_or(DEFAULT_STM_SHARDS).max(1) as usize;
        let shards: Box<[Mutex<BTreeMap<Timestamp, Slot>>]> =
            (0..nshards).map(|_| Mutex::new(BTreeMap::new())).collect();
        let shard_lows: Box<[AtomicI64]> = (0..nshards).map(|_| AtomicI64::new(i64::MAX)).collect();
        Arc::new(Channel {
            id,
            name,
            attrs,
            meta: RwLock::new(ChanMeta {
                in_conns: HashMap::new(),
                out_conns: HashSet::new(),
                next_conn: 1,
                closed: false,
            }),
            shards,
            shard_lows,
            floor: AtomicI64::new(Timestamp::MIN.value()),
            live: AtomicUsize::new(0),
            traced_live: AtomicUsize::new(0),
            items_gate: Gate::new(),
            space_gate: Gate::new(),
            items_wakers: WakerSet::new(),
            space_wakers: WakerSet::new(),
            hooks: HookSlot::new(),
            put_hooked: AtomicBool::new(false),
            stats: AtomicStats::default(),
            obs: StmMetrics::channel(metrics),
            span_resource: format!("chan:{}/{}", id.owner.0, id.index),
        })
    }

    /// Creates an unregistered channel for single-address-space use.
    #[must_use]
    pub fn standalone(attrs: ChannelAttrs) -> Arc<Self> {
        Channel::new(
            ChanId {
                owner: crate::ids::AsId(0),
                index: 0,
            },
            None,
            attrs,
        )
    }

    /// The channel's system-wide id.
    #[must_use]
    pub fn id(&self) -> ChanId {
        self.id
    }

    /// The channel's registered name, if any.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The creation-time attributes.
    #[must_use]
    pub fn attrs(&self) -> &ChannelAttrs {
        &self.attrs
    }

    /// Number of storage shards backing this channel.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A snapshot of activity counters.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats.snapshot()
    }

    /// Number of live (unreclaimed) items.
    #[must_use]
    pub fn live_items(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// The reclamation floor: every timestamp at or below it is gone.
    #[must_use]
    pub fn gc_floor(&self) -> Timestamp {
        Timestamp::new(self.floor.load(Ordering::SeqCst))
    }

    /// Installs a garbage hook fired for every reclaimed item.
    ///
    /// The hook runs outside the channel lock, after the item is gone.
    pub fn set_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.update(|h| h.set_garbage(hook));
    }

    /// Installs an additional garbage hook alongside any existing ones.
    pub fn add_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.update(|h| h.add_garbage(hook));
    }

    /// Installs a put hook fired for every accepted item, outside the
    /// channel lock (the runtime's replicator tails accepted puts this
    /// way). Same discipline as garbage hooks: fast, no re-entrant calls.
    pub fn add_put_hook<F>(&self, hook: F)
    where
        F: Fn(PutEvent) + Send + Sync + 'static,
    {
        self.hooks.update(|h| h.add_put(hook));
        self.put_hooked.store(true, Ordering::SeqCst);
    }

    /// Opens an input connection.
    ///
    /// The returned guard disconnects on drop, releasing this connection's
    /// claim on unconsumed items.
    #[must_use]
    pub fn connect_input(self: &Arc<Self>, interest: Interest) -> InputConn {
        self.connect_input_filtered(interest, TagFilter::Any)
    }

    /// Opens an input connection attending only to items whose tag passes
    /// `filter` (the user-defined filtering extension; see [`TagFilter`]).
    #[must_use]
    pub fn connect_input_filtered(
        self: &Arc<Self>,
        interest: Interest,
        filter: TagFilter,
    ) -> InputConn {
        // The write lock excludes concurrent puts, so the pending-set
        // snapshot across shards is consistent.
        let mut meta = self.meta.write();
        let id = ConnId(meta.next_conn);
        meta.next_conn += 1;
        let from = match interest {
            Interest::FromEarliest => Timestamp::MIN,
            Interest::FromLatest => {
                let mut hi: Option<Timestamp> = None;
                for shard in self.shards.iter() {
                    if let Some(&t) = shard.lock().keys().next_back() {
                        if hi.is_none_or(|h| t > h) {
                            hi = Some(t);
                        }
                    }
                }
                hi.map_or(Timestamp::MIN, Timestamp::next)
            }
            Interest::FromTs(ts) => ts,
        };
        // Filtered connections claim items through per-slot pending sets;
        // items at or above the interest point whose tag passes the filter
        // gain this connection, everything else is treated as
        // pre-consumed. Unfiltered connections claim by cursor alone: an
        // item is theirs exactly while their done-through sits below it,
        // so no per-item membership is recorded (and none is swept on
        // consume — the hot path stays lock-free).
        if !matches!(filter, TagFilter::Any) {
            for shard in self.shards.iter() {
                let mut shard = shard.lock();
                for (_, slot) in shard.range_mut(from..) {
                    if filter.matches(slot.item.tag()) {
                        slot.pending.insert(id);
                    }
                }
            }
        }
        meta.in_conns.insert(
            id,
            InConn {
                until: AtomicI64::new(from.prev().value()),
                vt_floor: AtomicI64::new(Timestamp::MIN.value()),
                filter,
            },
        );
        drop(meta);
        InputConn {
            chan: Arc::clone(self),
            id,
        }
    }

    /// Opens an output connection.
    #[must_use]
    pub fn connect_output(self: &Arc<Self>) -> OutputConn {
        let mut meta = self.meta.write();
        let id = ConnId(meta.next_conn);
        meta.next_conn += 1;
        meta.out_conns.insert(id);
        drop(meta);
        OutputConn {
            chan: Arc::clone(self),
            id,
        }
    }

    /// Closes the channel: all blocked operations wake with
    /// [`StmError::Closed`], further puts fail, and gets of already-present
    /// items keep working so consumers can drain.
    pub fn close(&self) {
        self.meta.write().closed = true;
        self.notify_items();
        self.notify_space();
    }

    /// Whether [`Channel::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.meta.read().closed
    }

    /// Wakes item-arrival waiters: blocked threads and parked reactor tasks.
    fn notify_items(&self) {
        self.items_gate.notify();
        self.items_wakers.wake_all();
    }

    /// Wakes space-available waiters: blocked threads and parked reactor
    /// tasks.
    fn notify_space(&self) {
        self.space_gate.notify();
        self.space_wakers.wake_all();
    }

    /// Parks a reactor task until the next item arrival (or close /
    /// disconnect). Register first, then re-try the non-blocking get; see
    /// [`WakerSet`] for the race-free ordering contract.
    pub fn register_items_waker(&self, waker: &std::task::Waker) {
        self.items_wakers.register(waker);
    }

    /// Parks a reactor task until space frees up (or close). Register
    /// first, then re-try the non-blocking put.
    pub fn register_space_waker(&self, waker: &std::task::Waker) {
        self.space_wakers.register(waker);
    }

    // ---- internal operations (used by connection guards and the runtime) --

    /// The shard a timestamp is stored in.
    fn shard_of(&self, ts: Timestamp) -> usize {
        ts.value().rem_euclid(self.shards.len() as i64) as usize
    }

    /// Resolves a spec against the current state for a given connection,
    /// cloning the item out under its shard lock. Returns `Ok(Some(..))`
    /// when an item qualifies now, `Ok(None)` when one could still arrive,
    /// and an error when it never can. Items the connection's tag filter
    /// rejects are invisible to it.
    fn resolve(
        &self,
        meta: &ChanMeta,
        conn: ConnId,
        spec: GetSpec,
    ) -> StmResult<Option<(Timestamp, Item)>> {
        let c = meta.in_conns.get(&conn).ok_or(StmError::NoSuchConnection)?;
        let done = c.done_through();
        let filter = &c.filter;
        match spec {
            GetSpec::Exact(ts) => {
                if ts <= done || ts.value() <= self.floor.load(Ordering::SeqCst) {
                    return Err(StmError::Dropped);
                }
                match self.shards[self.shard_of(ts)].lock().get(&ts) {
                    Some(slot) if !filter.matches(slot.item.tag()) => Err(StmError::Dropped),
                    Some(slot) => Ok(Some((ts, slot.item.clone()))),
                    None => Ok(None),
                }
            }
            GetSpec::Latest => {
                let mut best: Option<(Timestamp, Item)> = None;
                for shard in self.shards.iter() {
                    let shard = shard.lock();
                    if let Some((&t, slot)) = shard
                        .range(done.next()..)
                        .rev()
                        .find(|(_, s)| filter.matches(s.item.tag()))
                    {
                        if best.as_ref().is_none_or(|(b, _)| t > *b) {
                            best = Some((t, slot.item.clone()));
                        }
                    }
                }
                Ok(best)
            }
            GetSpec::Earliest => Ok(self.scan_earliest(done.next(), filter)),
            GetSpec::After(after) => Ok(self.scan_earliest(after.max(done).next(), filter)),
        }
    }

    /// Oldest item at or above `from` passing the filter, merged across
    /// shards.
    fn scan_earliest(&self, from: Timestamp, filter: &TagFilter) -> Option<(Timestamp, Item)> {
        let mut best: Option<(Timestamp, Item)> = None;
        for shard in self.shards.iter() {
            let shard = shard.lock();
            if let Some((&t, slot)) = shard
                .range(from..)
                .find(|(_, s)| filter.matches(s.item.tag()))
            {
                if best.as_ref().is_none_or(|(b, _)| t < *b) {
                    best = Some((t, slot.item.clone()));
                }
            }
        }
        best
    }

    /// The stable resource name spans use for this channel.
    fn span_resource(&self) -> &str {
        &self.span_resource
    }

    /// Reconstructs a span start time (µs on the tracer clock) from a
    /// latency-histogram `Instant`, so untraced operations pay no
    /// extra clock reads.
    fn span_start(tracer: &Tracer, started: Instant) -> u64 {
        tracer
            .now_us()
            .saturating_sub(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    /// Shared success bookkeeping for gets.
    fn finish_get(&self, found: (Timestamp, Item), started: Instant) -> (Timestamp, Item) {
        let (ts, item) = found;
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.obs.record_get(started);
        if let Some(ctx) = item.trace_context() {
            self.obs.tracer.finish(
                ctx,
                SpanKind::Get,
                self.span_resource(),
                ts.value(),
                Self::span_start(&self.obs.tracer, started),
                "",
            );
        }
        (ts, item)
    }

    pub(crate) fn do_get(
        &self,
        conn: ConnId,
        spec: GetSpec,
        deadline: Deadline,
    ) -> StmResult<(Timestamp, Item)> {
        let started = Instant::now();
        // Fast path: no gate registration when a decision is immediate.
        {
            let meta = self.meta.read();
            if let Some(found) = self.resolve(&meta, conn, spec)? {
                drop(meta);
                return Ok(self.finish_get(found, started));
            }
            if meta.closed {
                return Err(StmError::Closed);
            }
        }
        if matches!(deadline, Deadline::Now) {
            return Err(StmError::Absent);
        }
        loop {
            // Register-then-recheck: any put/close/disconnect published
            // after our re-check bumps the gate sequence, so sleeping on
            // the snapshot cannot miss it.
            let snap = self.items_gate.register();
            let decided = {
                let meta = self.meta.read();
                match self.resolve(&meta, conn, spec) {
                    Err(e) => Some(Err(e)),
                    Ok(Some(found)) => Some(Ok(found)),
                    Ok(None) if meta.closed => Some(Err(StmError::Closed)),
                    Ok(None) => None,
                }
            };
            match decided {
                Some(res) => {
                    self.items_gate.unregister();
                    return res.map(|found| self.finish_get(found, started));
                }
                None => {
                    if !self.items_gate.wait(snap, deadline) {
                        return Err(StmError::Timeout);
                    }
                }
            }
        }
    }

    /// Evicts the globally oldest item (DropOldest policy), raising the
    /// floor past it. A no-op when every shard is empty.
    fn evict_oldest(&self, evicted: &mut Vec<(Timestamp, Slot)>) {
        loop {
            let mut oldest: Option<(Timestamp, usize)> = None;
            for (idx, shard) in self.shards.iter().enumerate() {
                if let Some(&t) = shard.lock().keys().next() {
                    if oldest.is_none_or(|(best, _)| t < best) {
                        oldest = Some((t, idx));
                    }
                }
            }
            let Some((t, idx)) = oldest else { return };
            // Re-check under the lock: the min may have been consumed or
            // evicted by a racing caller between the scan and here.
            let mut shard = self.shards[idx].lock();
            if let Some(slot) = shard.remove(&t) {
                self.shard_lows[idx].store(
                    shard.keys().next().map_or(i64::MAX, |t| t.value()),
                    Ordering::SeqCst,
                );
                drop(shard);
                self.floor.fetch_max(t.value(), Ordering::SeqCst);
                self.live.fetch_sub(1, Ordering::SeqCst);
                evicted.push((t, slot));
                return;
            }
        }
    }

    /// The insert core of `put`: validates, reserves capacity, and lands
    /// the item in its shard. `slot_item` is taken exactly once, on the
    /// iteration that inserts.
    fn put_loop(
        &self,
        conn: ConnId,
        ts: Timestamp,
        slot_item: &mut Option<Item>,
        deadline: Deadline,
        evicted: &mut Vec<(Timestamp, Slot)>,
    ) -> StmResult<()> {
        let cap = self.attrs.capacity().map(|c| c as usize);
        loop {
            {
                let meta = self.meta.read();
                if !meta.out_conns.contains(&conn) {
                    return Err(StmError::NoSuchConnection);
                }
                if meta.closed {
                    return Err(StmError::Closed);
                }
                if ts.value() <= self.floor.load(Ordering::SeqCst) {
                    return Err(StmError::TsTooOld);
                }
                let idx = self.shard_of(ts);
                if cap.is_some() && self.shards[idx].lock().contains_key(&ts) {
                    // Duplicate beats Full, as in the single-lock code.
                    return Err(StmError::TsExists);
                }
                let mut reserved = false;
                match cap {
                    None => {
                        self.live.fetch_add(1, Ordering::SeqCst);
                        reserved = true;
                    }
                    Some(c) => {
                        let cur = self.live.load(Ordering::SeqCst);
                        if cur < c {
                            if self
                                .live
                                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok()
                            {
                                reserved = true;
                            } else {
                                continue; // lost the slot race; retry
                            }
                        } else {
                            match self.attrs.overflow() {
                                OverflowPolicy::Reject => return Err(StmError::Full),
                                OverflowPolicy::DropOldest => {
                                    self.evict_oldest(evicted);
                                    self.live.fetch_add(1, Ordering::SeqCst);
                                    reserved = true;
                                }
                                OverflowPolicy::Block => {}
                            }
                        }
                    }
                }
                if reserved {
                    let mut shard = self.shards[idx].lock();
                    if ts.value() <= self.floor.load(Ordering::SeqCst) {
                        self.live.fetch_sub(1, Ordering::SeqCst);
                        return Err(StmError::TsTooOld);
                    }
                    if shard.contains_key(&ts) {
                        self.live.fetch_sub(1, Ordering::SeqCst);
                        return Err(StmError::TsExists);
                    }
                    let item = slot_item.take().expect("item inserted exactly once");
                    // Only filtered connections live in pending sets;
                    // unfiltered claims are implied by cursors. The cursors
                    // are read *inside* the shard lock: a racing consume
                    // either advanced `until` before this read (item lands
                    // pre-consumed) or sweeps this shard after this insert
                    // (and removes the claim).
                    let pending: HashSet<ConnId> = meta
                        .in_conns
                        .iter()
                        .filter(|(_, c)| {
                            !matches!(c.filter, TagFilter::Any)
                                && c.done_through() < ts
                                && c.filter.matches(item.tag())
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    if item.trace_context().is_some() {
                        self.traced_live.fetch_add(1, Ordering::SeqCst);
                    }
                    shard.insert(ts, Slot { item, pending });
                    self.shard_lows[idx].fetch_min(ts.value(), Ordering::SeqCst);
                    self.stats.puts.fetch_add(1, Ordering::Relaxed);
                    self.obs.occupancy.inc();
                    return Ok(());
                }
            }
            // Bounded + Block + full: wait for space.
            match deadline {
                Deadline::Now => return Err(StmError::Full),
                _ => {
                    let snap = self.space_gate.register();
                    let still_full = {
                        let meta = self.meta.read();
                        !meta.closed && cap.is_some_and(|c| self.live.load(Ordering::SeqCst) >= c)
                    };
                    if still_full {
                        if !self.space_gate.wait(snap, deadline) {
                            return Err(StmError::Timeout);
                        }
                    } else {
                        self.space_gate.unregister();
                    }
                }
            }
        }
    }

    pub(crate) fn do_put(
        &self,
        conn: ConnId,
        ts: Timestamp,
        item: Item,
        deadline: Deadline,
    ) -> StmResult<()> {
        let started = Instant::now();
        // A sampled item that arrives without a context starts its
        // trace here; an ambient context (e.g. a surrogate executing a
        // remote put) takes precedence so the trace begun on the end
        // device is the one that continues.
        let mut item = item;
        if item.trace_context().is_none() {
            item.set_trace_context(
                trace::current().or_else(|| self.obs.tracer.begin_trace(ts.value())),
            );
        }
        let ctx = item.trace_context();
        let len = item.len();
        let hook_put = self
            .put_hooked
            .load(Ordering::Relaxed)
            .then(|| (item.tag(), item.payload_bytes()));
        let mut evicted: Vec<(Timestamp, Slot)> = Vec::new();
        let mut slot_item = Some(item);
        let result = self.put_loop(conn, ts, &mut slot_item, deadline, &mut evicted);
        if result.is_ok() {
            self.obs.record_put(started);
            self.notify_items();
            if let Some((tag, payload)) = hook_put {
                let hooks = self.hooks.get();
                hooks.fire_put(PutEvent {
                    resource: ResourceId::Channel(self.id),
                    ts,
                    tag,
                    payload,
                });
            }
            if let Some(ctx) = ctx {
                self.obs.tracer.finish(
                    ctx,
                    SpanKind::Put,
                    self.span_resource(),
                    ts.value(),
                    Self::span_start(&self.obs.tracer, started),
                    &format!("bytes={len}"),
                );
            }
        }
        self.finish_reclaim(evicted);
        result
    }

    /// Puts a batch of items, returning one result per entry (in order).
    ///
    /// Unbounded channels take the fast path: one connection-table read
    /// lock, one lock acquisition per shard touched, one wakeup. Bounded
    /// channels go item-by-item so the overflow policy applies exactly as
    /// it would for singleton puts. Entries are independent — a failed
    /// entry never affects its neighbours, and duplicate timestamps within
    /// a batch fail with [`StmError::TsExists`] after the first.
    pub(crate) fn do_put_many(
        &self,
        conn: ConnId,
        entries: Vec<(Timestamp, Item)>,
        deadline: Deadline,
    ) -> Vec<StmResult<()>> {
        if self.attrs.capacity().is_some() {
            return entries
                .into_iter()
                .map(|(ts, item)| self.do_put(conn, ts, item, deadline))
                .collect();
        }
        let started = Instant::now();
        let n = entries.len();
        let hook_puts = self.put_hooked.load(Ordering::Relaxed).then(|| {
            entries
                .iter()
                .map(|(ts, item)| (*ts, item.tag(), item.payload_bytes()))
                .collect::<Vec<_>>()
        });
        // Assign trace contexts up front so spans and GC instants attribute
        // each item exactly as a singleton put would.
        let mut entries: Vec<(Timestamp, Option<Item>)> = entries
            .into_iter()
            .map(|(ts, mut item)| {
                if item.trace_context().is_none() {
                    item.set_trace_context(
                        trace::current().or_else(|| self.obs.tracer.begin_trace(ts.value())),
                    );
                }
                (ts, Some(item))
            })
            .collect();
        let mut results: Vec<StmResult<()>> = (0..n).map(|_| Ok(())).collect();
        let mut spans: Vec<(Timestamp, TraceContext, usize)> = Vec::new();
        let mut ok = 0usize;
        {
            let meta = self.meta.read();
            if !meta.out_conns.contains(&conn) {
                return (0..n).map(|_| Err(StmError::NoSuchConnection)).collect();
            }
            if meta.closed {
                return (0..n).map(|_| Err(StmError::Closed)).collect();
            }
            let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
            for (i, (ts, _)) in entries.iter().enumerate() {
                by_shard[self.shard_of(*ts)].push(i);
            }
            for (si, idxs) in by_shard.iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let mut shard = self.shards[si].lock();
                for &i in idxs {
                    let ts = entries[i].0;
                    if ts.value() <= self.floor.load(Ordering::SeqCst) {
                        results[i] = Err(StmError::TsTooOld);
                        continue;
                    }
                    if shard.contains_key(&ts) {
                        results[i] = Err(StmError::TsExists);
                        continue;
                    }
                    let item = entries[i].1.take().expect("each entry inserted once");
                    let pending: HashSet<ConnId> = meta
                        .in_conns
                        .iter()
                        .filter(|(_, c)| {
                            !matches!(c.filter, TagFilter::Any)
                                && c.done_through() < ts
                                && c.filter.matches(item.tag())
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    if let Some(ctx) = item.trace_context() {
                        spans.push((ts, ctx, item.len()));
                        self.traced_live.fetch_add(1, Ordering::SeqCst);
                    }
                    shard.insert(ts, Slot { item, pending });
                    self.shard_lows[si].fetch_min(ts.value(), Ordering::SeqCst);
                    ok += 1;
                }
            }
            if ok > 0 {
                self.live.fetch_add(ok, Ordering::SeqCst);
                self.stats.puts.fetch_add(ok as u64, Ordering::Relaxed);
                self.obs.occupancy.add(ok as i64);
            }
        }
        if ok > 0 {
            self.obs.record_put(started);
            self.notify_items();
            for (ts, ctx, len) in spans {
                self.obs.tracer.finish(
                    ctx,
                    SpanKind::Put,
                    self.span_resource(),
                    ts.value(),
                    Self::span_start(&self.obs.tracer, started),
                    &format!("bytes={len}"),
                );
            }
            if let Some(hook_puts) = hook_puts {
                let hooks = self.hooks.get();
                for (i, (ts, tag, payload)) in hook_puts.into_iter().enumerate() {
                    if results[i].is_ok() {
                        hooks.fire_put(PutEvent {
                            resource: ResourceId::Channel(self.id),
                            ts,
                            tag,
                            payload,
                        });
                    }
                }
            }
        }
        results
    }

    /// Resolves a batch of specs non-blockingly, one result per spec:
    /// absent items report [`StmError::Absent`] (or [`StmError::Closed`]
    /// once the channel closed) instead of waiting.
    pub(crate) fn do_get_many(
        &self,
        conn: ConnId,
        specs: &[GetSpec],
    ) -> Vec<StmResult<(Timestamp, Item)>> {
        let started = Instant::now();
        let meta = self.meta.read();
        specs
            .iter()
            .map(|&spec| match self.resolve(&meta, conn, spec) {
                Err(e) => Err(e),
                Ok(Some(found)) => Ok(self.finish_get(found, started)),
                Ok(None) => Err(if meta.closed {
                    StmError::Closed
                } else {
                    StmError::Absent
                }),
            })
            .collect()
    }

    /// Removes `conn` from the pending sets of every item in
    /// `(from ..= upto)`. Items at or below the connection's previous
    /// `until` can never hold its claim, so the sweep is bounded.
    fn sweep(
        &self,
        conn: ConnId,
        from: Timestamp,
        upto: Timestamp,
        traced: &mut Vec<(i64, TraceContext)>,
    ) {
        if from > upto {
            return;
        }
        // Timestamps partition across shards by residue, so a span
        // shorter than the shard count can only touch the shards its
        // residues land on — a one-step consume locks one shard, not all.
        let nshards = self.shards.len() as i64;
        let span = upto.value().saturating_sub(from.value()).saturating_add(1);
        if span < nshards {
            for step in 0..span {
                let ts = Timestamp::new(from.value() + step);
                let mut shard = self.shards[self.shard_of(ts)].lock();
                if let Some(slot) = shard.get_mut(&ts) {
                    if slot.pending.remove(&conn) {
                        if let Some(ctx) = slot.item.trace_context() {
                            traced.push((ts.value(), ctx));
                        }
                    }
                }
            }
            return;
        }
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            for (ts, slot) in shard.range_mut(from..=upto) {
                if slot.pending.remove(&conn) {
                    if let Some(ctx) = slot.item.trace_context() {
                        traced.push((ts.value(), ctx));
                    }
                }
            }
        }
    }

    /// Releases `conn`'s claims over `(from ..= upto)`. Filtered
    /// connections hold per-slot pending membership and must sweep it
    /// out; unfiltered connections claim by cursor alone, so the only
    /// remaining per-item work is emitting Consume trace events — and
    /// when no live item carries a context, even that walk is skipped,
    /// leaving the unfiltered consume hot path free of shard locks.
    fn release_claims(
        &self,
        conn: ConnId,
        filter: &TagFilter,
        from: Timestamp,
        upto: Timestamp,
        traced: &mut Vec<(i64, TraceContext)>,
    ) {
        if !matches!(filter, TagFilter::Any) {
            self.sweep(conn, from, upto, traced);
            return;
        }
        if self.traced_live.load(Ordering::SeqCst) == 0 || from > upto {
            return;
        }
        let nshards = self.shards.len() as i64;
        let span = upto.value().saturating_sub(from.value()).saturating_add(1);
        if span < nshards {
            for step in 0..span {
                let ts = Timestamp::new(from.value() + step);
                let shard = self.shards[self.shard_of(ts)].lock();
                if let Some(slot) = shard.get(&ts) {
                    if let Some(ctx) = slot.item.trace_context() {
                        traced.push((ts.value(), ctx));
                    }
                }
            }
            return;
        }
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for (ts, slot) in shard.range(from..=upto) {
                if let Some(ctx) = slot.item.trace_context() {
                    traced.push((ts.value(), ctx));
                }
            }
        }
    }

    pub(crate) fn do_consume_until(&self, conn: ConnId, upto: Timestamp) -> StmResult<()> {
        let started = Instant::now();
        let reclaimed;
        let mut traced: Vec<(i64, TraceContext)> = Vec::new();
        {
            let meta = self.meta.read();
            let c = meta.in_conns.get(&conn).ok_or(StmError::NoSuchConnection)?;
            let old = c.until.fetch_max(upto.value(), Ordering::SeqCst);
            if old >= upto.value() {
                return Ok(()); // idempotent: already consumed through here
            }
            self.release_claims(
                conn,
                &c.filter,
                Timestamp::new(old).next(),
                upto,
                &mut traced,
            );
            self.stats.consumes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_consume(started);
            reclaimed = self.collect(&meta);
        }
        for (ts, ctx) in traced {
            self.obs
                .tracer
                .instant(ctx, SpanKind::Consume, self.span_resource(), ts, "");
        }
        self.finish_reclaim(reclaimed);
        Ok(())
    }

    pub(crate) fn do_set_vt(&self, conn: ConnId, vt: VirtualTime) -> StmResult<()> {
        let started = Instant::now();
        let reclaimed;
        let mut traced: Vec<(i64, TraceContext)> = Vec::new();
        {
            let meta = self.meta.read();
            let c = meta.in_conns.get(&conn).ok_or(StmError::NoSuchConnection)?;
            let new_floor = vt.floor().value();
            let old = c.vt_floor.fetch_max(new_floor, Ordering::SeqCst);
            if old >= new_floor {
                return Ok(()); // virtual time never moves backwards
            }
            // A virtual-time promise also implies consumption under REF.
            let done = vt.floor().prev();
            let old_until = c.until.fetch_max(done.value(), Ordering::SeqCst);
            if done.value() > old_until {
                self.release_claims(
                    conn,
                    &c.filter,
                    Timestamp::new(old_until).next(),
                    done,
                    &mut traced,
                );
            }
            self.stats.consumes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_consume(started);
            reclaimed = self.collect(&meta);
        }
        for (ts, ctx) in traced {
            self.obs
                .tracer
                .instant(ctx, SpanKind::Consume, self.span_resource(), ts, "");
        }
        self.finish_reclaim(reclaimed);
        Ok(())
    }

    pub(crate) fn do_disconnect_input(&self, conn: ConnId) {
        let reclaimed;
        {
            let mut meta = self.meta.write();
            let Some(gone) = meta.in_conns.remove(&conn) else {
                return;
            };
            // Unfiltered connections never enter pending sets; their
            // cursor constraint vanished with the in_conns entry above.
            if !matches!(gone.filter, TagFilter::Any) {
                for shard in self.shards.iter() {
                    let mut shard = shard.lock();
                    for slot in shard.values_mut() {
                        slot.pending.remove(&conn);
                    }
                }
            }
            // The departing connection's claims are released, but if it was
            // the *last* input connection, unconsumed items are retained for
            // future joiners — a crashed consumer must not take data with it
            // (failure-handling extension; see module docs).
            reclaimed = self.collect(&meta);
        }
        // Wake blocked getters on this connection so they observe
        // NoSuchConnection instead of sleeping until the next put.
        self.notify_items();
        self.finish_reclaim(reclaimed);
    }

    pub(crate) fn do_disconnect_output(&self, conn: ConnId) {
        self.meta.write().out_conns.remove(&conn);
    }

    /// Collects dead items via a cheap merge across shards. Requires at
    /// least one input connection so that pre-consumer streams are
    /// retained.
    ///
    /// REF: pass 1 finds the globally first still-claimed item — the dead
    /// horizon is just below it (or the global max when nothing is
    /// claimed). TGC: the horizon is just below the minimum virtual-time
    /// floor, read from the per-connection atomics. Pass 2 then drains
    /// each shard's prefix at or below the horizon.
    fn collect(&self, meta: &ChanMeta) -> Vec<(Timestamp, Slot)> {
        if meta.in_conns.is_empty() {
            return Vec::new();
        }
        let transparent = matches!(self.attrs.gc(), GcPolicy::Transparent);
        let dead_through: Timestamp = if transparent {
            let min_floor = meta
                .in_conns
                .values()
                .map(|c| Timestamp::new(c.vt_floor.load(Ordering::SeqCst)))
                .min()
                .unwrap_or(Timestamp::MIN);
            min_floor.prev()
        } else if meta
            .in_conns
            .values()
            .all(|c| matches!(c.filter, TagFilter::Any))
        {
            // Unfiltered REF fast path: with every connection attending
            // every tag, an item's pending set is exactly the connections
            // whose done-through cursor sits below it, so the first
            // still-claimed item is just past the minimum cursor — no
            // shard lock needed to find the horizon.
            meta.in_conns
                .values()
                .map(InConn::done_through)
                .min()
                .unwrap_or(Timestamp::MIN)
        } else {
            // Reclamation is prefix-based: collect everything before the
            // first item somebody still claims. Filtered claims live in
            // pending sets and are found by scanning each shard's prefix;
            // unfiltered claims are cursor-implied, so their bound is the
            // minimum done-through among unfiltered connections. With
            // filters a dead item can sit behind a live one and is
            // reclaimed when the prefix reaches it (safety unaffected,
            // liveness slightly lazy — see TagFilter docs).
            let mut first_blocked: Option<Timestamp> = None;
            let mut max_present: Option<Timestamp> = None;
            for shard in self.shards.iter() {
                let shard = shard.lock();
                if let Some(&hi) = shard.keys().next_back() {
                    if max_present.is_none_or(|m| hi > m) {
                        max_present = Some(hi);
                    }
                }
                for (&t, slot) in shard.iter() {
                    if first_blocked.is_some_and(|fb| t >= fb) {
                        break; // nothing older than the known horizon here
                    }
                    if !slot.pending.is_empty() {
                        first_blocked = Some(t);
                        break;
                    }
                }
            }
            let filtered_bound = match (first_blocked, max_present) {
                (Some(fb), _) => fb.prev(),
                (None, Some(hi)) => hi,
                (None, None) => return Vec::new(),
            };
            meta.in_conns
                .values()
                .filter(|c| matches!(c.filter, TagFilter::Any))
                .map(InConn::done_through)
                .min()
                .map_or(filtered_bound, |unfiltered| filtered_bound.min(unfiltered))
        };
        if dead_through.value() <= self.floor.load(Ordering::SeqCst) {
            return Vec::new(); // horizon has not moved past prior reclamation
        }
        let mut reclaimed: Vec<(Timestamp, Slot)> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            if self.shard_lows[si].load(Ordering::SeqCst) > dead_through.value() {
                continue; // nothing at or below the horizon in this shard
            }
            let mut shard = shard.lock();
            // A racing fresh put below the horizon may carry claims under
            // REF; skip it — it is collected on a later pass. Under TGC
            // every connection has promised past the horizon, so pending
            // sets are irrelevant.
            let dead: Vec<Timestamp> = shard
                .range(..=dead_through)
                .filter(|(_, s)| transparent || s.pending.is_empty())
                .map(|(&t, _)| t)
                .collect();
            let mut removed = false;
            for t in dead {
                if let Some(slot) = shard.remove(&t) {
                    reclaimed.push((t, slot));
                    removed = true;
                }
            }
            if removed {
                self.shard_lows[si].store(
                    shard.keys().next().map_or(i64::MAX, |t| t.value()),
                    Ordering::SeqCst,
                );
            }
        }
        if !reclaimed.is_empty() {
            reclaimed.sort_by_key(|(t, _)| *t);
            let max_ts = reclaimed.last().expect("non-empty").0;
            self.floor.fetch_max(max_ts.value(), Ordering::SeqCst);
            self.live.fetch_sub(reclaimed.len(), Ordering::SeqCst);
        }
        reclaimed
    }

    /// Fires hooks and wakes blocked putters, outside the state lock.
    fn finish_reclaim(&self, reclaimed: Vec<(Timestamp, Slot)>) {
        if reclaimed.is_empty() {
            return;
        }
        let traced = reclaimed
            .iter()
            .filter(|(_, s)| s.item.trace_context().is_some())
            .count();
        if traced > 0 {
            self.traced_live.fetch_sub(traced, Ordering::SeqCst);
        }
        self.notify_space();
        self.obs
            .occupancy
            .add(-i64::try_from(reclaimed.len()).unwrap_or(i64::MAX));
        let hooks = self.hooks.get();
        let mut bytes = 0u64;
        for (ts, slot) in &reclaimed {
            self.stats.reclaimed_items.fetch_add(1, Ordering::Relaxed);
            self.stats
                .reclaimed_bytes
                .fetch_add(slot.item.len() as u64, Ordering::Relaxed);
            bytes += slot.item.len() as u64;
            if let Some(ctx) = slot.item.trace_context() {
                self.obs.tracer.instant(
                    ctx,
                    SpanKind::GcReclaim,
                    self.span_resource(),
                    ts.value(),
                    &format!("bytes={}", slot.item.len()),
                );
            }
            hooks.fire_garbage(&GarbageEvent {
                resource: ResourceId::Channel(self.id),
                ts: *ts,
                tag: slot.item.tag(),
                len: slot.item.len() as u32,
            });
        }
        self.obs.record_reclaim(reclaimed.len() as u64, bytes);
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let meta = self.meta.read();
        f.debug_struct("Channel")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("live_items", &self.live.load(Ordering::SeqCst))
            .field("shards", &self.shards.len())
            .field("in_conns", &meta.in_conns.len())
            .field("out_conns", &meta.out_conns.len())
            .field("closed", &meta.closed)
            .finish()
    }
}

/// Deadline discipline for blocking operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Deadline {
    /// Fail immediately instead of blocking.
    Now,
    /// Block indefinitely.
    Never,
    /// Block until the given instant.
    At(std::time::Instant),
}

impl Deadline {
    pub(crate) fn after(d: Duration) -> Self {
        Deadline::At(std::time::Instant::now() + d)
    }
}

/// An input connection to a [`Channel`]; disconnects on drop.
///
/// See the [`Channel`] example for typical use.
pub struct InputConn {
    chan: Arc<Channel>,
    id: ConnId,
}

impl InputConn {
    /// This connection's id (unique within the channel).
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The channel this connection is attached to.
    #[must_use]
    pub fn channel(&self) -> &Arc<Channel> {
        &self.chan
    }

    /// Blocking get.
    ///
    /// # Errors
    ///
    /// [`StmError::Dropped`] if the requested item was consumed or
    /// collected, [`StmError::Closed`] if the channel closes while waiting,
    /// [`StmError::NoSuchConnection`] if the connection was torn down.
    pub fn get(&self, spec: GetSpec) -> StmResult<(Timestamp, Item)> {
        self.chan.do_get(self.id, spec, Deadline::Never)
    }

    /// Non-blocking get.
    ///
    /// # Errors
    ///
    /// As [`InputConn::get`], plus [`StmError::Absent`] when no qualifying
    /// item is present right now.
    pub fn try_get(&self, spec: GetSpec) -> StmResult<(Timestamp, Item)> {
        self.chan.do_get(self.id, spec, Deadline::Now)
    }

    /// Get with a timeout.
    ///
    /// # Errors
    ///
    /// As [`InputConn::get`], plus [`StmError::Timeout`].
    pub fn get_timeout(&self, spec: GetSpec, timeout: Duration) -> StmResult<(Timestamp, Item)> {
        self.chan.do_get(self.id, spec, Deadline::after(timeout))
    }

    /// Typed blocking get via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`InputConn::get`], plus decoding errors from `T`.
    pub fn get_typed<T: StreamItem>(&self, spec: GetSpec) -> StmResult<(Timestamp, T)> {
        let (ts, item) = self.get(spec)?;
        Ok((ts, item.decode::<T>()?))
    }

    /// Resolves a batch of specs in one pass, non-blockingly: one
    /// connection-table read lock for the whole batch, one result per
    /// spec (in order). Absent items report [`StmError::Absent`].
    #[must_use]
    pub fn get_many(&self, specs: &[GetSpec]) -> Vec<StmResult<(Timestamp, Item)>> {
        self.chan.do_get_many(self.id, specs)
    }

    /// Declares every item at or below `upto` garbage as far as this
    /// connection is concerned. Idempotent; never un-consumes.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchConnection`] if the connection was torn down.
    pub fn consume_until(&self, upto: Timestamp) -> StmResult<()> {
        self.chan.do_consume_until(self.id, upto)
    }

    /// Advances this connection's virtual-time promise: it will never again
    /// request items below `vt`'s floor. Drives reclamation under
    /// [`GcPolicy::Transparent`]; implies consumption under [`GcPolicy::Ref`].
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchConnection`] if the connection was torn down.
    pub fn set_vt(&self, vt: VirtualTime) -> StmResult<()> {
        self.chan.do_set_vt(self.id, vt)
    }

    /// Parks a reactor task until the next item arrival on this channel.
    /// Register first, then retry [`InputConn::try_get`]; spurious wakes
    /// are expected and benign.
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.chan.register_items_waker(waker);
    }

    /// Tears the connection down now rather than waiting for drop: the
    /// connection's claims are released (its virtual time no longer
    /// constrains reclamation) and any getter blocked on it wakes with
    /// [`StmError::NoSuchConnection`]. Idempotent; the eventual drop
    /// becomes a no-op. Used by failure recovery to orphan connections
    /// still referenced by blocked workers.
    pub fn disconnect(&self) {
        self.chan.do_disconnect_input(self.id);
    }
}

impl fmt::Debug for InputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InputConn")
            .field("chan", &self.chan.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for InputConn {
    fn drop(&mut self) {
        self.chan.do_disconnect_input(self.id);
    }
}

/// An output connection to a [`Channel`]; disconnects on drop.
pub struct OutputConn {
    chan: Arc<Channel>,
    id: ConnId,
}

impl OutputConn {
    /// This connection's id (unique within the channel).
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The channel this connection is attached to.
    #[must_use]
    pub fn channel(&self) -> &Arc<Channel> {
        &self.chan
    }

    /// Blocking put (blocks only when the channel is bounded with
    /// [`OverflowPolicy::Block`] and full).
    ///
    /// # Errors
    ///
    /// [`StmError::TsExists`] for duplicate timestamps,
    /// [`StmError::TsTooOld`] for timestamps below the reclamation floor,
    /// [`StmError::Full`] under [`OverflowPolicy::Reject`],
    /// [`StmError::Closed`] after close.
    pub fn put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.chan.do_put(self.id, ts, item, Deadline::Never)
    }

    /// Non-blocking put.
    ///
    /// # Errors
    ///
    /// As [`OutputConn::put`], with [`StmError::Full`] instead of blocking.
    pub fn try_put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.chan.do_put(self.id, ts, item, Deadline::Now)
    }

    /// Parks a reactor task until channel space frees up (bounded channels
    /// under [`OverflowPolicy::Block`]). Register first, then retry
    /// [`OutputConn::try_put`]; spurious wakes are expected and benign.
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.chan.register_space_waker(waker);
    }

    /// Put with a timeout on the capacity wait.
    ///
    /// # Errors
    ///
    /// As [`OutputConn::put`], plus [`StmError::Timeout`].
    pub fn put_timeout(&self, ts: Timestamp, item: Item, timeout: Duration) -> StmResult<()> {
        self.chan
            .do_put(self.id, ts, item, Deadline::after(timeout))
    }

    /// Typed put via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`OutputConn::put`].
    pub fn put_typed<T: StreamItem>(&self, ts: Timestamp, value: &T) -> StmResult<()> {
        self.put(ts, value.to_item())
    }

    /// Puts a batch of items in one pass, returning one result per entry
    /// (in order). Entries are independent: each succeeds or fails exactly
    /// as a singleton [`OutputConn::put`] would, and a failure never rolls
    /// back its neighbours. On an unbounded channel the whole batch costs
    /// one connection-table read lock, one lock acquisition per shard
    /// touched, and one wakeup; a bounded channel applies its overflow
    /// policy item by item (blocking per item under
    /// [`OverflowPolicy::Block`]).
    #[must_use]
    pub fn put_many(&self, entries: Vec<(Timestamp, Item)>) -> Vec<StmResult<()>> {
        self.chan.do_put_many(self.id, entries, Deadline::Never)
    }

    /// Non-blocking batch put: as [`OutputConn::put_many`] but a full
    /// bounded channel reports [`StmError::Full`] per entry instead of
    /// blocking.
    #[must_use]
    pub fn try_put_many(&self, entries: Vec<(Timestamp, Item)>) -> Vec<StmResult<()>> {
        self.chan.do_put_many(self.id, entries, Deadline::Now)
    }

    /// Tears the connection down now rather than waiting for drop.
    /// Idempotent; used by failure recovery.
    pub fn disconnect(&self) {
        self.chan.do_disconnect_output(self.id);
    }
}

impl fmt::Debug for OutputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OutputConn")
            .field("chan", &self.chan.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for OutputConn {
    fn drop(&mut self) {
        self.chan.do_disconnect_output(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn item(bytes: &[u8]) -> Item {
        Item::copy_from_slice(bytes)
    }

    fn ts(v: i64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn put_get_round_trip() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"hello")).unwrap();
        let (t, it) = inp.get(GetSpec::Exact(ts(1))).unwrap();
        assert_eq!(t, ts(1));
        assert_eq!(it.payload(), b"hello");
    }

    #[test]
    fn duplicate_put_rejected() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.put(ts(1), item(b"b")), Err(StmError::TsExists));
    }

    #[test]
    fn try_get_absent() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        assert_eq!(
            inp.try_get(GetSpec::Exact(ts(5))).unwrap_err(),
            StmError::Absent
        );
    }

    #[test]
    fn random_access_any_order() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in [5i64, 1, 3] {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        for v in [3i64, 5, 1] {
            let (_, it) = inp.get(GetSpec::Exact(ts(v))).unwrap();
            assert_eq!(it.payload(), &[v as u8]);
        }
    }

    #[test]
    fn latest_earliest_after() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in 1..=5 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        assert_eq!(inp.try_get(GetSpec::Latest).unwrap().0, ts(5));
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(1));
        assert_eq!(inp.try_get(GetSpec::After(ts(2))).unwrap().0, ts(3));
        assert_eq!(
            inp.try_get(GetSpec::After(ts(5))).unwrap_err(),
            StmError::Absent
        );
    }

    #[test]
    fn consume_hides_items_from_this_connection() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        a.consume_until(ts(2)).unwrap();
        assert_eq!(
            a.try_get(GetSpec::Exact(ts(2))).unwrap_err(),
            StmError::Dropped
        );
        assert_eq!(a.try_get(GetSpec::Earliest).unwrap().0, ts(3));
        // b is unaffected; items 1..=2 are still live because b has not consumed.
        assert_eq!(b.try_get(GetSpec::Exact(ts(1))).unwrap().0, ts(1));
        assert_eq!(ch.live_items(), 3);
    }

    #[test]
    fn reclaim_when_all_inputs_consume() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        a.consume_until(ts(2)).unwrap();
        assert_eq!(ch.live_items(), 3);
        b.consume_until(ts(1)).unwrap();
        assert_eq!(ch.live_items(), 2); // ts 1 reclaimed
        assert_eq!(ch.gc_floor(), ts(1));
        b.consume_until(ts(3)).unwrap();
        assert_eq!(ch.live_items(), 1); // ts 2 reclaimed (a consumed through 2)
        a.consume_until(ts(3)).unwrap();
        assert_eq!(ch.live_items(), 0);
        assert_eq!(ch.gc_floor(), ts(3));
        let s = ch.stats();
        assert_eq!(s.reclaimed_items, 3);
        assert_eq!(s.reclaimed_bytes, 3);
    }

    #[test]
    fn put_below_floor_rejected() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        inp.consume_until(ts(1)).unwrap();
        assert_eq!(out.put(ts(1), item(b"y")), Err(StmError::TsTooOld));
        assert_eq!(out.put(ts(0), item(b"y")), Err(StmError::TsTooOld));
        out.put(ts(2), item(b"z")).unwrap();
    }

    #[test]
    fn no_reclaim_without_input_connections() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        assert_eq!(ch.live_items(), 3);
        // A late consumer still sees everything.
        let inp = ch.connect_input(Interest::default());
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(1));
    }

    #[test]
    fn from_latest_interest_skips_existing_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        out.put(ts(1), item(b"old")).unwrap();
        let inp = ch.connect_input(Interest::FromLatest);
        assert_eq!(
            inp.try_get(GetSpec::Exact(ts(1))).unwrap_err(),
            StmError::Dropped
        );
        out.put(ts(2), item(b"new")).unwrap();
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(2));
    }

    #[test]
    fn from_ts_interest() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        for v in 1..=4 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        let inp = ch.connect_input(Interest::FromTs(ts(3)));
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(3));
        // Consuming through 4 reclaims nothing below 3 on account of this
        // conn alone (it never held 1..2), and no other conn exists, so all
        // four items reclaim once it consumes: 1,2 had empty pending sets.
        inp.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn disconnect_releases_pending_claims() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        a.consume_until(ts(1)).unwrap();
        assert_eq!(ch.live_items(), 1); // b still pending
        drop(b);
        assert_eq!(ch.live_items(), 0); // b's claim released
    }

    #[test]
    fn blocking_get_wakes_on_put() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let out = ch2.connect_output();
            out.put(ts(7), item(b"late")).unwrap();
        });
        let (t, it) = inp.get(GetSpec::Exact(ts(7))).unwrap();
        assert_eq!(t, ts(7));
        assert_eq!(it.payload(), b"late");
        h.join().unwrap();
    }

    #[test]
    fn get_timeout_expires() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let err = inp
            .get_timeout(GetSpec::Exact(ts(1)), Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, StmError::Timeout);
    }

    #[test]
    fn bounded_block_policy_paces_producer() {
        let attrs = ChannelAttrs::builder().capacity(2).build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        assert_eq!(out.try_put(ts(3), item(b"c")), Err(StmError::Full));
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            // Consume ts 1 to free a slot.
            inp.consume_until(ts(1)).unwrap();
            inp // keep conn alive until producer finished
        });
        out.put(ts(3), item(b"c")).unwrap(); // blocks until consume
        assert_eq!(ch2.live_items(), 3 - 1);
        drop(h.join().unwrap());
    }

    #[test]
    fn bounded_reject_policy() {
        let attrs = ChannelAttrs::builder()
            .capacity(1)
            .overflow(OverflowPolicy::Reject)
            .build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.put(ts(2), item(b"b")), Err(StmError::Full));
    }

    #[test]
    fn bounded_drop_oldest_policy_fires_hook() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&dropped);
        let attrs = ChannelAttrs::builder()
            .capacity(2)
            .overflow(OverflowPolicy::DropOldest)
            .build();
        let ch = Channel::standalone(attrs);
        ch.set_garbage_hook(move |e| {
            assert_eq!(e.ts, ts(1));
            d2.fetch_add(1, Ordering::SeqCst);
        });
        let out = ch.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        out.put(ts(3), item(b"c")).unwrap(); // evicts ts 1
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
        assert_eq!(ch.live_items(), 2);
        assert_eq!(ch.gc_floor(), ts(1));
    }

    #[test]
    fn close_wakes_blocked_getter() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            ch2.close();
        });
        assert_eq!(
            inp.get(GetSpec::Exact(ts(1))).unwrap_err(),
            StmError::Closed
        );
        h.join().unwrap();
    }

    #[test]
    fn close_allows_draining_present_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        ch.close();
        assert!(ch.is_closed());
        assert_eq!(out.put(ts(2), item(b"y")), Err(StmError::Closed));
        assert_eq!(inp.get(GetSpec::Exact(ts(1))).unwrap().0, ts(1));
    }

    #[test]
    fn transparent_gc_reclaims_by_virtual_time() {
        let attrs = ChannelAttrs::builder().gc(GcPolicy::Transparent).build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        let b = ch.connect_input(Interest::default());
        for v in 1..=5 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        a.set_vt(VirtualTime::at(ts(4))).unwrap();
        assert_eq!(ch.live_items(), 5); // b still at START
        b.set_vt(VirtualTime::at(ts(3))).unwrap();
        // min floor = 3 => ts 1,2 dead
        assert_eq!(ch.live_items(), 3);
        assert_eq!(ch.gc_floor(), ts(2));
    }

    #[test]
    fn virtual_time_never_regresses() {
        let attrs = ChannelAttrs::builder().gc(GcPolicy::Transparent).build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let a = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        a.set_vt(VirtualTime::at(ts(5))).unwrap();
        a.set_vt(VirtualTime::at(ts(2))).unwrap(); // ignored
        assert_eq!(ch.live_items(), 0);
        assert_eq!(
            a.try_get(GetSpec::Exact(ts(3))).unwrap_err(),
            StmError::Dropped
        );
    }

    #[test]
    fn typed_put_get() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put_typed(ts(1), &"frame-1".to_owned()).unwrap();
        let (_, s) = inp.get_typed::<String>(GetSpec::Exact(ts(1))).unwrap();
        assert_eq!(s, "frame-1");
    }

    #[test]
    fn stats_track_operations() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"abc")).unwrap();
        let _ = inp.get(GetSpec::Exact(ts(1))).unwrap();
        let _ = inp.get(GetSpec::Exact(ts(1))).unwrap();
        inp.consume_until(ts(1)).unwrap();
        let s = ch.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.consumes, 1);
        assert_eq!(s.reclaimed_items, 1);
        assert_eq!(s.reclaimed_bytes, 3);
    }

    #[test]
    fn consume_is_idempotent() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        inp.consume_until(ts(1)).unwrap();
        inp.consume_until(ts(1)).unwrap();
        inp.consume_until(ts(0)).unwrap(); // lower: no-op
        assert_eq!(ch.stats().consumes, 1);
    }

    #[test]
    fn garbage_hook_runs_for_normal_reclaim() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&events);
        let ch = Channel::standalone(ChannelAttrs::default());
        ch.set_garbage_hook(move |e| e2.lock().push((e.ts, e.len)));
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"abcd")).unwrap();
        inp.consume_until(ts(1)).unwrap();
        assert_eq!(events.lock().as_slice(), &[(ts(1), 4)]);
    }

    #[test]
    fn many_producers_many_consumers() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let mut handles = Vec::new();
        for p in 0..4 {
            let ch = Arc::clone(&ch);
            handles.push(thread::spawn(move || {
                let out = ch.connect_output();
                for i in 0..50 {
                    out.put(ts(p * 1000 + i), item(&[p as u8])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let inp = ch.connect_input(Interest::default());
        let mut count = 0;
        let mut last = Timestamp::MIN;
        while let Ok((t, _)) = inp.try_get(GetSpec::After(last)) {
            assert!(t > last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 200);
    }

    #[test]
    fn get_after_steps_in_order() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in [10i64, 20, 30] {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        let mut seen = Vec::new();
        let mut last = Timestamp::MIN;
        while let Ok((t, _)) = inp.try_get(GetSpec::After(last)) {
            seen.push(t.value());
            last = t;
        }
        assert_eq!(seen, vec![10, 20, 30]);
    }

    #[test]
    fn debug_impl_is_informative() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let s = format!("{ch:?}");
        assert!(s.contains("Channel"));
        assert!(s.contains("live_items"));
    }

    #[test]
    fn tag_filter_matching() {
        assert!(TagFilter::Any.matches(7));
        let only = TagFilter::Only(vec![1, 3]);
        assert!(only.matches(1));
        assert!(only.matches(3));
        assert!(!only.matches(2));
        let stripe = TagFilter::Stripe {
            modulus: 3,
            remainder: 1,
        };
        assert!(stripe.matches(1));
        assert!(stripe.matches(4));
        assert!(!stripe.matches(3));
        assert!(!TagFilter::Stripe {
            modulus: 0,
            remainder: 0
        }
        .matches(0));
    }

    #[test]
    fn filtered_connection_sees_only_matching_tags() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input_filtered(Interest::default(), TagFilter::Only(vec![1]));
        out.put(ts(1), item(b"a").with_tag(0)).unwrap();
        out.put(ts(2), item(b"b").with_tag(1)).unwrap();
        out.put(ts(3), item(b"c").with_tag(0)).unwrap();
        out.put(ts(4), item(b"d").with_tag(1)).unwrap();
        // Earliest/Latest/After skip non-matching tags.
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(2));
        assert_eq!(inp.try_get(GetSpec::Latest).unwrap().0, ts(4));
        assert_eq!(inp.try_get(GetSpec::After(ts(2))).unwrap().0, ts(4));
        // Exact of a filtered-out item reads as dropped (declared
        // disinterest).
        assert_eq!(
            inp.try_get(GetSpec::Exact(ts(1))).unwrap_err(),
            StmError::Dropped
        );
    }

    #[test]
    fn filtered_connections_do_not_pin_unwanted_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let even = ch.connect_input_filtered(
            Interest::default(),
            TagFilter::Stripe {
                modulus: 2,
                remainder: 0,
            },
        );
        let odd = ch.connect_input_filtered(
            Interest::default(),
            TagFilter::Stripe {
                modulus: 2,
                remainder: 1,
            },
        );
        for v in 1..=4 {
            out.put(ts(v), item(&[v as u8]).with_tag(v as u32)).unwrap();
        }
        // Each consumes only what it attends to. Reclamation is
        // prefix-ordered: after `even` consumes, the even-tagged items are
        // dead but sit behind ts 1 (still claimed by `odd`), so nothing
        // reclaims yet.
        even.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 4);
        // Once `odd` consumes too, the whole prefix is dead.
        odd.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn items_nobody_attends_to_are_garbage() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input_filtered(Interest::default(), TagFilter::Only(vec![5]));
        out.put(ts(1), item(b"junk").with_tag(9)).unwrap();
        out.put(ts(2), item(b"want").with_tag(5)).unwrap();
        // Consuming through ts 2 collects both: the tag-9 item was never
        // claimed by anyone.
        let (t, _) = inp.get(GetSpec::Earliest).unwrap();
        assert_eq!(t, ts(2));
        inp.consume_until(t).unwrap();
        assert_eq!(ch.live_items(), 0);
        assert_eq!(ch.stats().reclaimed_items, 2);
    }

    #[test]
    fn filter_applies_to_preexisting_items() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        out.put(ts(1), item(b"x").with_tag(0)).unwrap();
        out.put(ts(2), item(b"y").with_tag(1)).unwrap();
        let inp = ch.connect_input_filtered(Interest::FromEarliest, TagFilter::Only(vec![1]));
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(2));
        inp.consume_until(ts(2)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn explicit_disconnect_wakes_blocked_getter() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = Arc::new(ch.connect_input(Interest::default()));
        let waiter = Arc::clone(&inp);
        let h = thread::spawn(move || waiter.get(GetSpec::Earliest));
        thread::sleep(Duration::from_millis(50));
        inp.disconnect();
        assert_eq!(
            h.join().unwrap().unwrap_err(),
            StmError::NoSuchConnection,
            "a getter blocked on a disconnected connection must wake"
        );
        // Idempotent: a second disconnect (and the eventual drop) is a no-op.
        inp.disconnect();
    }

    #[test]
    fn disconnect_releases_claims_for_reclamation() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let slow = ch.connect_input(Interest::default());
        let fast = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        fast.consume_until(ts(2)).unwrap();
        // `slow` still claims everything, so nothing reclaims.
        assert_eq!(ch.live_items(), 2);
        // Orphaning `slow` (crashed peer) releases its claims; `fast`
        // remains connected so the dead prefix is reclaimed.
        slow.disconnect();
        assert_eq!(ch.live_items(), 0);
        assert_eq!(ch.stats().reclaimed_items, 2);
    }

    // ---- sharding & batching ------------------------------------------

    #[test]
    fn shard_count_follows_attrs() {
        let ch = Channel::standalone(ChannelAttrs::default());
        assert_eq!(ch.shard_count(), DEFAULT_STM_SHARDS as usize);
        let ch = Channel::standalone(ChannelAttrs::builder().shards(3).build());
        assert_eq!(ch.shard_count(), 3);
        // shards(0) clamps to one shard rather than panicking.
        let ch = Channel::standalone(ChannelAttrs::builder().shards(0).build());
        assert_eq!(ch.shard_count(), 1);
    }

    #[test]
    fn single_shard_config_behaves_identically() {
        let ch = Channel::standalone(ChannelAttrs::builder().shards(1).build());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in 1..=5 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        assert_eq!(inp.try_get(GetSpec::Latest).unwrap().0, ts(5));
        inp.consume_until(ts(3)).unwrap();
        assert_eq!(ch.live_items(), 2);
        assert_eq!(ch.gc_floor(), ts(3));
    }

    #[test]
    fn negative_timestamps_shard_safely() {
        let ch = Channel::standalone(ChannelAttrs::builder().shards(7).build());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        for v in [-9i64, -3, 0, 4] {
            out.put(ts(v), item(&[1])).unwrap();
        }
        assert_eq!(inp.try_get(GetSpec::Earliest).unwrap().0, ts(-9));
        assert_eq!(inp.try_get(GetSpec::Latest).unwrap().0, ts(4));
        inp.consume_until(ts(4)).unwrap();
        assert_eq!(ch.live_items(), 0);
    }

    #[test]
    fn put_many_get_many_round_trip() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        let entries: Vec<_> = (1..=32).map(|v| (ts(v), item(&[v as u8]))).collect();
        let results = out.put_many(entries);
        assert_eq!(results.len(), 32);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(ch.live_items(), 32);
        assert_eq!(ch.stats().puts, 32);
        let specs: Vec<_> = (1..=32).map(|v| GetSpec::Exact(ts(v))).collect();
        let got = inp.get_many(&specs);
        for (v, r) in (1..=32).zip(&got) {
            let (t, it) = r.as_ref().unwrap();
            assert_eq!(*t, ts(v));
            assert_eq!(it.payload(), &[v as u8]);
        }
        assert_eq!(ch.stats().gets, 32);
    }

    #[test]
    fn put_many_reports_per_item_errors() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(1), item(b"x")).unwrap();
        inp.consume_until(ts(1)).unwrap(); // floor = 1
        let results = out.put_many(vec![
            (ts(1), item(b"too-old")),
            (ts(5), item(b"ok")),
            (ts(5), item(b"dup-in-batch")),
            (ts(6), item(b"ok")),
        ]);
        assert_eq!(results[0], Err(StmError::TsTooOld));
        assert_eq!(results[1], Ok(()));
        assert_eq!(results[2], Err(StmError::TsExists));
        assert_eq!(results[3], Ok(()));
        assert_eq!(ch.live_items(), 2);
    }

    #[test]
    fn put_many_on_bounded_channel_applies_overflow_policy() {
        let attrs = ChannelAttrs::builder()
            .capacity(2)
            .overflow(OverflowPolicy::Reject)
            .build();
        let ch = Channel::standalone(attrs);
        let out = ch.connect_output();
        let results = out.put_many(vec![
            (ts(1), item(b"a")),
            (ts(2), item(b"b")),
            (ts(3), item(b"c")),
        ]);
        assert_eq!(results[0], Ok(()));
        assert_eq!(results[1], Ok(()));
        assert_eq!(results[2], Err(StmError::Full));
        assert_eq!(ch.live_items(), 2);
    }

    #[test]
    fn put_many_wakes_blocked_getter() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let inp = ch.connect_input(Interest::default());
        let ch2 = Arc::clone(&ch);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let out = ch2.connect_output();
            let rs = out.put_many((1..=4).map(|v| (ts(v), item(&[v as u8]))).collect());
            assert!(rs.iter().all(Result::is_ok));
        });
        let (t, _) = inp.get(GetSpec::Exact(ts(3))).unwrap();
        assert_eq!(t, ts(3));
        h.join().unwrap();
    }

    #[test]
    fn get_many_mixed_results() {
        let ch = Channel::standalone(ChannelAttrs::default());
        let out = ch.connect_output();
        let inp = ch.connect_input(Interest::default());
        out.put(ts(2), item(b"b")).unwrap();
        let got = inp.get_many(&[
            GetSpec::Exact(ts(2)),
            GetSpec::Exact(ts(9)),
            GetSpec::Earliest,
        ]);
        assert_eq!(got[0].as_ref().unwrap().0, ts(2));
        assert_eq!(got[1], Err(StmError::Absent));
        assert_eq!(got[2].as_ref().unwrap().0, ts(2));
    }

    #[test]
    fn concurrent_consume_and_put_do_not_lose_claims() {
        // A put racing a consume on the same connection must either land
        // pre-consumed or have its claim swept; either way a follow-up
        // consume_until reclaims everything.
        for _ in 0..50 {
            let ch = Channel::standalone(ChannelAttrs::builder().shards(4).build());
            let out = ch.connect_output();
            let inp = ch.connect_input(Interest::default());
            let ch2 = Arc::clone(&ch);
            let producer = thread::spawn(move || {
                let out2 = ch2.connect_output();
                for v in 0..64 {
                    out2.put(ts(2 * v + 1), item(b"p")).unwrap();
                }
            });
            for v in 0..64 {
                out.put(ts(2 * v + 2), item(b"m")).unwrap();
            }
            producer.join().unwrap();
            inp.consume_until(ts(1_000)).unwrap();
            assert_eq!(ch.live_items(), 0, "all claims released and reclaimed");
        }
    }
}
