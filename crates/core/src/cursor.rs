//! Stream cursors: ordered iteration over a channel with automatic
//! consumption.
//!
//! Every consumer in the paper's applications walks a channel the same
//! way: remember the last timestamp seen, `get(After(last))`, use the
//! item, `consume_until(last)`. A [`StreamCursor`] packages that loop; it
//! is a convenience layered strictly on top of the public connection API
//! (runtime proxies and the client library provide the same shape over
//! RPC).

use std::fmt;
use std::time::Duration;

use crate::channel::{GetSpec, InputConn};
use crate::error::{StmError, StmResult};
use crate::item::Item;
use crate::time::Timestamp;

/// How a cursor treats items it has stepped past.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumeMode {
    /// Consume each item as soon as the cursor moves past it (default):
    /// the "selective attention" pattern — a cursor holds no history.
    #[default]
    Eager,
    /// Never consume; the caller manages consumption (e.g. several cursors
    /// share a connection's view for replay).
    Manual,
}

/// An ordered, optionally self-consuming cursor over a channel stream.
///
/// # Examples
///
/// ```
/// use dstampede_core::{Channel, ChannelAttrs, Interest, Item, Timestamp};
/// use dstampede_core::cursor::StreamCursor;
///
/// # fn main() -> Result<(), dstampede_core::StmError> {
/// let chan = Channel::standalone(ChannelAttrs::default());
/// let out = chan.connect_output();
/// for t in 0..3 {
///     out.put(Timestamp::new(t), Item::from_vec(vec![t as u8]))?;
/// }
///
/// let inp = chan.connect_input(Interest::FromEarliest);
/// let mut cursor = StreamCursor::new(inp);
/// while let Some((ts, item)) = cursor.try_next()? {
///     assert_eq!(item.payload(), &[ts.value() as u8]);
/// }
/// assert_eq!(chan.live_items(), 0); // eagerly consumed behind the cursor
/// # Ok(())
/// # }
/// ```
pub struct StreamCursor {
    conn: InputConn,
    last: Timestamp,
    mode: ConsumeMode,
}

impl StreamCursor {
    /// A cursor starting before the connection's earliest visible item,
    /// consuming eagerly.
    #[must_use]
    pub fn new(conn: InputConn) -> Self {
        StreamCursor {
            conn,
            last: Timestamp::MIN,
            mode: ConsumeMode::Eager,
        }
    }

    /// Sets the consumption mode, builder-style.
    #[must_use]
    pub fn with_mode(mut self, mode: ConsumeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Positions the cursor so the next item returned is strictly after
    /// `ts`.
    #[must_use]
    pub fn starting_after(mut self, ts: Timestamp) -> Self {
        self.last = ts;
        self
    }

    /// The timestamp of the last item returned (or the starting position).
    #[must_use]
    pub fn position(&self) -> Timestamp {
        self.last
    }

    /// The underlying connection (e.g. for `set_vt`).
    #[must_use]
    pub fn connection(&self) -> &InputConn {
        &self.conn
    }

    /// Consumes the cursor, returning the connection at its final
    /// position.
    #[must_use]
    pub fn into_connection(self) -> InputConn {
        self.conn
    }

    fn after_step(&mut self, ts: Timestamp) -> StmResult<()> {
        self.last = ts;
        if self.mode == ConsumeMode::Eager {
            self.conn.consume_until(ts)?;
        }
        Ok(())
    }

    /// Blocks for the next item in timestamp order.
    ///
    /// # Errors
    ///
    /// [`StmError::Closed`] when the channel closes with nothing further
    /// to return; other connection errors as
    /// [`InputConn::get`](crate::InputConn::get).
    pub fn next_blocking(&mut self) -> StmResult<(Timestamp, Item)> {
        let (ts, item) = self.conn.get(GetSpec::After(self.last))?;
        self.after_step(ts)?;
        Ok((ts, item))
    }

    /// Returns the next item if one is present now (`Ok(None)` otherwise).
    ///
    /// # Errors
    ///
    /// As [`StreamCursor::next_blocking`], except absence is `Ok(None)`.
    pub fn try_next(&mut self) -> StmResult<Option<(Timestamp, Item)>> {
        match self.conn.try_get(GetSpec::After(self.last)) {
            Ok((ts, item)) => {
                self.after_step(ts)?;
                Ok(Some((ts, item)))
            }
            Err(StmError::Absent) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Waits up to `timeout` for the next item (`Ok(None)` on expiry).
    ///
    /// # Errors
    ///
    /// As [`StreamCursor::next_blocking`], except a timeout is `Ok(None)`.
    pub fn next_timeout(&mut self, timeout: Duration) -> StmResult<Option<(Timestamp, Item)>> {
        match self.conn.get_timeout(GetSpec::After(self.last), timeout) {
            Ok((ts, item)) => {
                self.after_step(ts)?;
                Ok(Some((ts, item)))
            }
            Err(StmError::Timeout) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Skips directly past `ts` without reading the items in between
    /// (consuming them under [`ConsumeMode::Eager`]).
    ///
    /// # Errors
    ///
    /// Propagates consumption errors.
    pub fn skip_to(&mut self, ts: Timestamp) -> StmResult<()> {
        if ts > self.last {
            self.after_step(ts)?;
        }
        Ok(())
    }
}

impl fmt::Debug for StreamCursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamCursor")
            .field("position", &self.last)
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::ChannelAttrs;
    use crate::channel::{Channel, Interest};
    use std::sync::Arc;

    fn ts(v: i64) -> Timestamp {
        Timestamp::new(v)
    }

    fn filled_channel(n: i64) -> Arc<Channel> {
        let chan = Channel::standalone(ChannelAttrs::default());
        let out = chan.connect_output();
        for t in 0..n {
            out.put(ts(t), Item::from_vec(vec![t as u8])).unwrap();
        }
        chan
    }

    #[test]
    fn eager_cursor_walks_and_consumes() {
        let chan = filled_channel(5);
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        let mut seen = Vec::new();
        while let Some((t, _)) = cursor.try_next().unwrap() {
            seen.push(t.value());
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(cursor.position(), ts(4));
        assert_eq!(chan.live_items(), 0);
    }

    #[test]
    fn manual_cursor_leaves_items_live() {
        let chan = filled_channel(3);
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest))
            .with_mode(ConsumeMode::Manual);
        while cursor.try_next().unwrap().is_some() {}
        assert_eq!(chan.live_items(), 3);
        // The caller settles manually through the connection.
        cursor.connection().consume_until(ts(2)).unwrap();
        assert_eq!(chan.live_items(), 0);
    }

    #[test]
    fn starting_after_skips_prefix() {
        let chan = filled_channel(6);
        let mut cursor =
            StreamCursor::new(chan.connect_input(Interest::FromEarliest)).starting_after(ts(2));
        let (t, _) = cursor.try_next().unwrap().unwrap();
        assert_eq!(t, ts(3));
    }

    #[test]
    fn skip_to_fast_forwards_and_consumes() {
        let chan = filled_channel(10);
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        cursor.skip_to(ts(6)).unwrap();
        assert_eq!(chan.live_items(), 3); // 7..9 remain
        let (t, _) = cursor.try_next().unwrap().unwrap();
        assert_eq!(t, ts(7));
        // skip_to backwards is a no-op.
        cursor.skip_to(ts(1)).unwrap();
        assert_eq!(cursor.position(), ts(7));
    }

    #[test]
    fn blocking_next_wakes_on_put() {
        let chan = Channel::standalone(ChannelAttrs::default());
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        let chan2 = Arc::clone(&chan);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let out = chan2.connect_output();
            out.put(ts(5), Item::from_vec(vec![9])).unwrap();
        });
        let (t, item) = cursor.next_blocking().unwrap();
        assert_eq!(t, ts(5));
        assert_eq!(item.payload(), &[9]);
        h.join().unwrap();
    }

    #[test]
    fn next_timeout_expires_cleanly() {
        let chan = Channel::standalone(ChannelAttrs::default());
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        assert_eq!(
            cursor.next_timeout(Duration::from_millis(20)).unwrap(),
            None
        );
    }

    #[test]
    fn closed_channel_ends_blocking_iteration() {
        let chan = filled_channel(1);
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        let _ = cursor.next_blocking().unwrap();
        chan.close();
        assert_eq!(cursor.next_blocking().unwrap_err(), StmError::Closed);
    }

    #[test]
    fn into_connection_preserves_state() {
        let chan = filled_channel(4);
        let mut cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        let _ = cursor.try_next().unwrap();
        let conn = cursor.into_connection();
        // Items past the cursor position are still available on the conn.
        assert!(conn.try_get(GetSpec::Exact(ts(2))).is_ok());
    }

    #[test]
    fn debug_is_informative() {
        let chan = filled_channel(1);
        let cursor = StreamCursor::new(chan.connect_input(Interest::FromEarliest));
        assert!(format!("{cursor:?}").contains("StreamCursor"));
    }
}
