//! Error types for space-time memory operations.
//!
//! Every fallible public operation in this crate returns [`StmError`]. The
//! variants mirror the error conditions of the original D-Stampede API
//! (item absent, item garbage-collected, channel full, ...) so that the wire
//! protocol can transport them losslessly between address spaces.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the space-time memory crates.
pub type StmResult<T> = Result<T, StmError>;

/// Errors produced by space-time memory operations.
///
/// The numeric code of each variant (see [`StmError::code`]) is stable and is
/// used verbatim on the wire between clients and the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StmError {
    /// An item with the same timestamp is already present in the channel.
    TsExists,
    /// The timestamp lies at or below the channel's reclamation floor: the
    /// item either never existed or has already been garbage collected.
    TsTooOld,
    /// No item with the requested timestamp is currently present
    /// (non-blocking get only; a blocking get would have waited).
    Absent,
    /// The item existed but has been garbage collected.
    Dropped,
    /// The container is at capacity and the overflow policy rejects the put.
    Full,
    /// The container has been closed; no further I/O is possible.
    Closed,
    /// A blocking operation timed out.
    Timeout,
    /// The referenced channel or queue does not exist.
    NoSuchResource,
    /// The referenced connection does not exist (it may have been closed).
    NoSuchConnection,
    /// The operation is not permitted in the connection's mode
    /// (e.g. `put` on an input connection).
    BadMode,
    /// A name-server registration collided with an existing name.
    NameExists,
    /// A name-server lookup failed (non-blocking only).
    NameAbsent,
    /// The peer (client session or address space) went away mid-operation.
    Disconnected,
    /// A malformed or unexpected message was received.
    Protocol(String),
}

impl StmError {
    /// Stable numeric code for wire transport.
    #[must_use]
    pub fn code(&self) -> u32 {
        match self {
            StmError::TsExists => 1,
            StmError::TsTooOld => 2,
            StmError::Absent => 3,
            StmError::Dropped => 4,
            StmError::Full => 5,
            StmError::Closed => 6,
            StmError::Timeout => 7,
            StmError::NoSuchResource => 8,
            StmError::NoSuchConnection => 9,
            StmError::BadMode => 10,
            StmError::NameExists => 11,
            StmError::NameAbsent => 12,
            StmError::Disconnected => 13,
            StmError::Protocol(_) => 14,
        }
    }

    /// Reconstructs an error from its wire code.
    ///
    /// Codes that do not correspond to a known variant decode to
    /// [`StmError::Protocol`], preserving forward compatibility.
    #[must_use]
    pub fn from_code(code: u32, detail: &str) -> Self {
        match code {
            1 => StmError::TsExists,
            2 => StmError::TsTooOld,
            3 => StmError::Absent,
            4 => StmError::Dropped,
            5 => StmError::Full,
            6 => StmError::Closed,
            7 => StmError::Timeout,
            8 => StmError::NoSuchResource,
            9 => StmError::NoSuchConnection,
            10 => StmError::BadMode,
            11 => StmError::NameExists,
            12 => StmError::NameAbsent,
            13 => StmError::Disconnected,
            _ => StmError::Protocol(detail.to_owned()),
        }
    }

    /// Human-readable detail string (empty for most variants).
    #[must_use]
    pub fn detail(&self) -> &str {
        match self {
            StmError::Protocol(s) => s,
            _ => "",
        }
    }
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::TsExists => write!(f, "an item with this timestamp already exists"),
            StmError::TsTooOld => write!(f, "timestamp is below the reclamation floor"),
            StmError::Absent => write!(f, "no item with this timestamp is present"),
            StmError::Dropped => write!(f, "item was garbage collected"),
            StmError::Full => write!(f, "container is full"),
            StmError::Closed => write!(f, "container is closed"),
            StmError::Timeout => write!(f, "operation timed out"),
            StmError::NoSuchResource => write!(f, "no such channel or queue"),
            StmError::NoSuchConnection => write!(f, "no such connection"),
            StmError::BadMode => write!(f, "operation not permitted in this connection mode"),
            StmError::NameExists => write!(f, "name is already registered"),
            StmError::NameAbsent => write!(f, "name is not registered"),
            StmError::Disconnected => write!(f, "peer disconnected"),
            StmError::Protocol(s) => write!(f, "protocol error: {s}"),
        }
    }
}

impl Error for StmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        let all = [
            StmError::TsExists,
            StmError::TsTooOld,
            StmError::Absent,
            StmError::Dropped,
            StmError::Full,
            StmError::Closed,
            StmError::Timeout,
            StmError::NoSuchResource,
            StmError::NoSuchConnection,
            StmError::BadMode,
            StmError::NameExists,
            StmError::NameAbsent,
            StmError::Disconnected,
        ];
        for e in all {
            assert_eq!(StmError::from_code(e.code(), ""), e);
        }
    }

    #[test]
    fn protocol_round_trips_detail() {
        let e = StmError::Protocol("bad tag".into());
        let back = StmError::from_code(e.code(), e.detail());
        assert_eq!(back, e);
    }

    #[test]
    fn unknown_code_maps_to_protocol() {
        assert!(matches!(
            StmError::from_code(9999, "mystery"),
            StmError::Protocol(_)
        ));
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = StmError::Full;
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StmError>();
    }
}
