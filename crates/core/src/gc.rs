//! Garbage collection of timestamps.
//!
//! Space-time memory containers grow as producers put items; the system is
//! only usable for continuous applications because the runtime reclaims
//! items *no thread can ever need again* (paper §3.1, reference \[16\]). Two algorithms
//! are implemented, selected per-container via
//! [`GcPolicy`](crate::GcPolicy):
//!
//! # REF — reference counting on explicit consumes
//!
//! Each live channel item tracks the set of input connections that have not
//! yet called `consume_until` past it. When the set empties the item is
//! dead. Precise and immediate, but requires the application to consume
//! diligently.
//!
//! # TGC — transparent collection by virtual time
//!
//! Each input connection carries a monotone [`VirtualTime`] promise: "I
//! will never request a timestamp below v". The minimum promise across all
//! input connections of a channel bounds the *dead set*: every timestamp
//! below it is unreachable. No explicit consumes needed; reclamation lags
//! by how conservatively threads advance their promises.
//!
//! The collection logic itself lives inside [`crate::Channel`] (it must run
//! under the container lock); this module provides the pieces shared with
//! the *distributed* layer: a [`MinFloorAggregator`] that combines the
//! per-address-space minima the GC epoch protocol gathers, and cluster-wide
//! [`GcSummary`] accounting.

use std::collections::HashMap;
use std::fmt;

use crate::ids::AsId;
use crate::time::{Timestamp, VirtualTime};

/// Aggregates per-address-space virtual-time floors into a global minimum.
///
/// The distributed GC epoch protocol has every address space report the
/// minimum virtual time of its local threads/connections; the aggregator
/// combines reports and exposes the cluster-wide floor, below which
/// timestamps are globally dead.
///
/// Reports are keyed by address space so a re-report *replaces* the
/// previous value (virtual time moves forward between epochs).
///
/// # Examples
///
/// ```
/// use dstampede_core::gc::MinFloorAggregator;
/// use dstampede_core::{AsId, Timestamp, VirtualTime};
///
/// let mut agg = MinFloorAggregator::new();
/// agg.report(AsId(1), VirtualTime::at(Timestamp::new(10)));
/// agg.report(AsId(2), VirtualTime::at(Timestamp::new(4)));
/// assert_eq!(agg.global_floor(), VirtualTime::at(Timestamp::new(4)));
/// agg.report(AsId(2), VirtualTime::at(Timestamp::new(20)));
/// assert_eq!(agg.global_floor(), VirtualTime::at(Timestamp::new(10)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MinFloorAggregator {
    reports: HashMap<AsId, VirtualTime>,
}

impl MinFloorAggregator {
    /// An aggregator with no reports.
    #[must_use]
    pub fn new() -> Self {
        MinFloorAggregator::default()
    }

    /// Records (or replaces) an address space's reported minimum.
    pub fn report(&mut self, from: AsId, vt: VirtualTime) {
        self.reports.insert(from, vt);
    }

    /// Forgets an address space (it left the computation). Its old report
    /// no longer constrains the global floor.
    pub fn retire(&mut self, from: AsId) {
        self.reports.remove(&from);
    }

    /// Number of address spaces currently reporting.
    #[must_use]
    pub fn reporters(&self) -> usize {
        self.reports.len()
    }

    /// The cluster-wide virtual-time floor: the minimum across all reports,
    /// or [`VirtualTime::END`] when nothing is reported (nothing constrains
    /// collection).
    #[must_use]
    pub fn global_floor(&self) -> VirtualTime {
        self.reports
            .values()
            .copied()
            .min()
            .unwrap_or(VirtualTime::END)
    }

    /// The highest timestamp that is globally dead, or `None` when no
    /// report constrains the answer yet.
    #[must_use]
    pub fn dead_through(&self) -> Option<Timestamp> {
        if self.reports.is_empty() {
            None
        } else {
            Some(self.global_floor().floor().prev())
        }
    }
}

/// Cluster-wide garbage collection accounting, aggregated across
/// containers and address spaces for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcSummary {
    /// Items reclaimed.
    pub items: u64,
    /// Payload bytes reclaimed.
    pub bytes: u64,
    /// GC epochs completed (distributed runtime only).
    pub epochs: u64,
}

impl GcSummary {
    /// Sums two summaries.
    #[must_use]
    pub fn merge(self, other: GcSummary) -> GcSummary {
        GcSummary {
            items: self.items + other.items,
            bytes: self.bytes + other.bytes,
            epochs: self.epochs.max(other.epochs),
        }
    }
}

impl fmt::Display for GcSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc: {} items, {} bytes, {} epochs",
            self.items, self.bytes, self.epochs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(v: i64) -> VirtualTime {
        VirtualTime::at(Timestamp::new(v))
    }

    #[test]
    fn empty_aggregator_is_unconstrained() {
        let agg = MinFloorAggregator::new();
        assert_eq!(agg.global_floor(), VirtualTime::END);
        assert_eq!(agg.dead_through(), None);
        assert_eq!(agg.reporters(), 0);
    }

    #[test]
    fn min_across_reports() {
        let mut agg = MinFloorAggregator::new();
        agg.report(AsId(1), vt(10));
        agg.report(AsId(2), vt(3));
        agg.report(AsId(3), vt(7));
        assert_eq!(agg.global_floor(), vt(3));
        assert_eq!(agg.dead_through(), Some(Timestamp::new(2)));
        assert_eq!(agg.reporters(), 3);
    }

    #[test]
    fn rereport_replaces() {
        let mut agg = MinFloorAggregator::new();
        agg.report(AsId(1), vt(3));
        agg.report(AsId(1), vt(9));
        assert_eq!(agg.global_floor(), vt(9));
    }

    #[test]
    fn retire_unconstrains() {
        let mut agg = MinFloorAggregator::new();
        agg.report(AsId(1), vt(3));
        agg.report(AsId(2), vt(8));
        agg.retire(AsId(1));
        assert_eq!(agg.global_floor(), vt(8));
        agg.retire(AsId(2));
        assert_eq!(agg.dead_through(), None);
    }

    #[test]
    fn summary_merge() {
        let a = GcSummary {
            items: 3,
            bytes: 100,
            epochs: 2,
        };
        let b = GcSummary {
            items: 4,
            bytes: 50,
            epochs: 5,
        };
        let m = a.merge(b);
        assert_eq!(m.items, 7);
        assert_eq!(m.bytes, 150);
        assert_eq!(m.epochs, 5);
        assert!(m.to_string().contains("7 items"));
    }
}
