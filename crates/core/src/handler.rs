//! Handler functions: user-defined hooks invoked by the runtime.
//!
//! The paper (§3.1) lets applications attach *handler functions* to channels
//! and queues. Two are modelled here:
//!
//! * **garbage hooks** — invoked when the runtime determines an item is
//!   garbage, so the application can release user-space resources tied to it
//!   (§3.2.4). On the cluster the hook runs synchronously during collection;
//!   for end devices the runtime queues a [`GarbageEvent`] and the client
//!   library delivers it on the next API call.
//! * **serialization handlers** — modelled as the
//!   [`StreamItem`](crate::StreamItem) trait on typed items.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::ids::ResourceId;
use crate::time::Timestamp;

/// Notification that an item became garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GarbageEvent {
    /// The container the item lived in.
    pub resource: ResourceId,
    /// The item's timestamp.
    pub ts: Timestamp,
    /// The item's user tag.
    pub tag: u32,
    /// Payload size in bytes (for accounting; the payload itself is gone).
    pub len: u32,
}

impl fmt::Display for GarbageEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "garbage {} {} ({} bytes)",
            self.resource, self.ts, self.len
        )
    }
}

/// A garbage hook: shared, callable from any runtime thread.
///
/// Hooks must be fast and must not call back into the container that fired
/// them (the container lock is *not* held during invocation, but re-entrant
/// puts from a hook can deadlock application logic).
pub type GarbageHook = Arc<dyn Fn(&GarbageEvent) + Send + Sync>;

/// Notification that an item was accepted by a container.
///
/// The payload is the item's backing [`Bytes`] — cloning it is a refcount
/// bump, so observers (e.g. the runtime's replicator) see the accepted
/// bytes without copying them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutEvent {
    /// The container the item landed in.
    pub resource: ResourceId,
    /// The item's timestamp.
    pub ts: Timestamp,
    /// The item's user tag.
    pub tag: u32,
    /// The accepted payload (shared, not copied).
    pub payload: Bytes,
}

impl fmt::Display for PutEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "put {} {} ({} bytes)",
            self.resource,
            self.ts,
            self.payload.len()
        )
    }
}

/// A put hook: fired after an item is accepted, outside container locks.
///
/// Same discipline as [`GarbageHook`]: fast, no re-entrant container calls.
pub type PutHook = Arc<dyn Fn(PutEvent) + Send + Sync>;

/// Dispatch table for a container's hooks.
///
/// Several parties (the owning application, surrogates acting for end
/// devices) may each install a garbage hook on the same container; all of
/// them fire for every reclaimed item. Cloning is cheap (shared hooks).
#[derive(Clone, Default)]
pub struct Hooks {
    garbage: Vec<GarbageHook>,
    put: Vec<PutHook>,
}

impl Hooks {
    /// No hooks installed.
    #[must_use]
    pub fn new() -> Self {
        Hooks::default()
    }

    /// Installs an additional garbage hook.
    pub fn add_garbage<F>(&mut self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.garbage.push(Arc::new(hook));
    }

    /// Installs a garbage hook, replacing all existing ones.
    pub fn set_garbage<F>(&mut self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.garbage.clear();
        self.garbage.push(Arc::new(hook));
    }

    /// Removes every garbage hook.
    pub fn clear_garbage(&mut self) {
        self.garbage.clear();
    }

    /// Whether any garbage hook is installed.
    #[must_use]
    pub fn has_garbage(&self) -> bool {
        !self.garbage.is_empty()
    }

    /// Invokes every garbage hook in installation order.
    pub fn fire_garbage(&self, event: &GarbageEvent) {
        for hook in &self.garbage {
            hook(event);
        }
    }

    /// Installs an additional put hook.
    pub fn add_put<F>(&mut self, hook: F)
    where
        F: Fn(PutEvent) + Send + Sync + 'static,
    {
        self.put.push(Arc::new(hook));
    }

    /// Removes every put hook.
    pub fn clear_put(&mut self) {
        self.put.clear();
    }

    /// Whether any put hook is installed.
    #[must_use]
    pub fn has_put(&self) -> bool {
        !self.put.is_empty()
    }

    /// Invokes every put hook in installation order. The event moves
    /// into the last hook — with a single hook installed (the common
    /// case: the runtime's replicator) no clone happens at all, so the
    /// payload handle the put path created is the one the hook keeps.
    pub fn fire_put(&self, event: PutEvent) {
        let Some((last, rest)) = self.put.split_last() else {
            return;
        };
        for hook in rest {
            hook(event.clone());
        }
        last(event);
    }
}

/// Copy-on-write holder for a container's [`Hooks`].
///
/// The put hook rides the accepted-put hot path, so readers must not
/// pay a lock or a refcount round trip per item. Installs publish a
/// freshly built table through an atomic pointer; every table ever
/// published stays allocated until the slot drops (installs happen at
/// container setup and are bounded — a handful of tiny tables), so a
/// reader's borrow can never dangle, even mid-fire during an install.
#[derive(Debug)]
pub struct HookSlot {
    current: std::sync::atomic::AtomicPtr<Hooks>,
    /// Every table ever published, including `current`. Freed on drop.
    /// Also serializes writers, so installs never lose each other.
    retired: parking_lot::Mutex<Vec<*mut Hooks>>,
}

// SAFETY: the raw pointers are only ever created from `Box<Hooks>`,
// shared read-only after publication, and `Hooks` itself is
// `Send + Sync` (its hooks are `Arc<dyn Fn + Send + Sync>`).
unsafe impl Send for HookSlot {}
unsafe impl Sync for HookSlot {}

impl HookSlot {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Self {
        let first = Box::into_raw(Box::new(Hooks::new()));
        HookSlot {
            current: std::sync::atomic::AtomicPtr::new(first),
            retired: parking_lot::Mutex::new(vec![first]),
        }
    }

    /// Rebuilds the hook table through `f` (copy-on-write) and
    /// publishes it. The superseded table is retired, not freed:
    /// readers obtained before the swap may still be iterating it.
    pub fn update(&self, f: impl FnOnce(&mut Hooks)) {
        let mut retired = self.retired.lock();
        let mut next = self.get().clone();
        f(&mut next);
        let ptr = Box::into_raw(Box::new(next));
        retired.push(ptr);
        self.current
            .store(ptr, std::sync::atomic::Ordering::Release);
    }

    /// The current hook table — one atomic load, no lock.
    #[must_use]
    pub fn get(&self) -> &Hooks {
        // SAFETY: every pointer ever stored in `current` came from
        // `Box::into_raw`, is recorded in `retired`, and is freed only
        // in `Drop` — which cannot run concurrently with this `&self`
        // borrow. Published tables are never mutated.
        unsafe { &*self.current.load(std::sync::atomic::Ordering::Acquire) }
    }
}

impl Default for HookSlot {
    fn default() -> Self {
        HookSlot::new()
    }
}

impl Drop for HookSlot {
    fn drop(&mut self) {
        for ptr in self.retired.get_mut().drain(..) {
            // SAFETY: each retired pointer came from `Box::into_raw`,
            // is freed exactly once here, and no reader can outlive
            // `&mut self`.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

impl fmt::Debug for Hooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hooks")
            .field("garbage_hooks", &self.garbage.len())
            .field("put_hooks", &self.put.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AsId, ChanId};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn event() -> GarbageEvent {
        GarbageEvent {
            resource: ResourceId::Channel(ChanId {
                owner: AsId(0),
                index: 1,
            }),
            ts: Timestamp::new(5),
            tag: 2,
            len: 100,
        }
    }

    #[test]
    fn empty_hooks_do_nothing() {
        let hooks = Hooks::new();
        assert!(!hooks.has_garbage());
        hooks.fire_garbage(&event()); // must not panic
    }

    #[test]
    fn garbage_hook_fires_with_event() {
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let mut hooks = Hooks::new();
        hooks.set_garbage(move |e| {
            assert_eq!(e.ts, Timestamp::new(5));
            assert_eq!(e.len, 100);
            c2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(hooks.has_garbage());
        hooks.fire_garbage(&event());
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn clear_garbage_uninstalls() {
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let mut hooks = Hooks::new();
        hooks.set_garbage(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        hooks.clear_garbage();
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn multiple_hooks_all_fire() {
        let count = Arc::new(AtomicU32::new(0));
        let mut hooks = Hooks::new();
        for _ in 0..3 {
            let c = Arc::clone(&count);
            hooks.add_garbage(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(hooks.has_garbage());
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn set_garbage_replaces_all() {
        let count = Arc::new(AtomicU32::new(0));
        let mut hooks = Hooks::new();
        let c1 = Arc::clone(&count);
        hooks.add_garbage(move |_| {
            c1.fetch_add(100, Ordering::SeqCst);
        });
        let c2 = Arc::clone(&count);
        hooks.set_garbage(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hooks_clone_shares_hook() {
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let mut hooks = Hooks::new();
        hooks.set_garbage(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let clone = hooks.clone();
        clone.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Hooks::new()).is_empty());
        assert!(!format!("{}", event()).is_empty());
    }

    #[test]
    fn put_hooks_fire_independently_of_garbage() {
        let count = Arc::new(AtomicU32::new(0));
        let mut hooks = Hooks::new();
        assert!(!hooks.has_put());
        let c = Arc::clone(&count);
        hooks.add_put(move |e| {
            assert_eq!(e.ts, Timestamp::new(9));
            assert_eq!(e.payload.as_ref(), b"abc");
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(hooks.has_put());
        assert!(!hooks.has_garbage());
        let put = PutEvent {
            resource: ResourceId::Channel(ChanId {
                owner: AsId(1),
                index: 2,
            }),
            ts: Timestamp::new(9),
            tag: 0,
            payload: Bytes::from_static(b"abc"),
        };
        hooks.fire_put(put.clone());
        hooks.fire_garbage(&event()); // no garbage hooks; must not panic
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert!(!format!("{put}").is_empty());
        hooks.clear_put();
        assert!(!hooks.has_put());
    }
}
