//! Handler functions: user-defined hooks invoked by the runtime.
//!
//! The paper (§3.1) lets applications attach *handler functions* to channels
//! and queues. Two are modelled here:
//!
//! * **garbage hooks** — invoked when the runtime determines an item is
//!   garbage, so the application can release user-space resources tied to it
//!   (§3.2.4). On the cluster the hook runs synchronously during collection;
//!   for end devices the runtime queues a [`GarbageEvent`] and the client
//!   library delivers it on the next API call.
//! * **serialization handlers** — modelled as the
//!   [`StreamItem`](crate::StreamItem) trait on typed items.

use std::fmt;
use std::sync::Arc;

use crate::ids::ResourceId;
use crate::time::Timestamp;

/// Notification that an item became garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GarbageEvent {
    /// The container the item lived in.
    pub resource: ResourceId,
    /// The item's timestamp.
    pub ts: Timestamp,
    /// The item's user tag.
    pub tag: u32,
    /// Payload size in bytes (for accounting; the payload itself is gone).
    pub len: u32,
}

impl fmt::Display for GarbageEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "garbage {} {} ({} bytes)",
            self.resource, self.ts, self.len
        )
    }
}

/// A garbage hook: shared, callable from any runtime thread.
///
/// Hooks must be fast and must not call back into the container that fired
/// them (the container lock is *not* held during invocation, but re-entrant
/// puts from a hook can deadlock application logic).
pub type GarbageHook = Arc<dyn Fn(&GarbageEvent) + Send + Sync>;

/// Dispatch table for a container's hooks.
///
/// Several parties (the owning application, surrogates acting for end
/// devices) may each install a garbage hook on the same container; all of
/// them fire for every reclaimed item. Cloning is cheap (shared hooks).
#[derive(Clone, Default)]
pub struct Hooks {
    garbage: Vec<GarbageHook>,
}

impl Hooks {
    /// No hooks installed.
    #[must_use]
    pub fn new() -> Self {
        Hooks::default()
    }

    /// Installs an additional garbage hook.
    pub fn add_garbage<F>(&mut self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.garbage.push(Arc::new(hook));
    }

    /// Installs a garbage hook, replacing all existing ones.
    pub fn set_garbage<F>(&mut self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.garbage.clear();
        self.garbage.push(Arc::new(hook));
    }

    /// Removes every garbage hook.
    pub fn clear_garbage(&mut self) {
        self.garbage.clear();
    }

    /// Whether any garbage hook is installed.
    #[must_use]
    pub fn has_garbage(&self) -> bool {
        !self.garbage.is_empty()
    }

    /// Invokes every garbage hook in installation order.
    pub fn fire_garbage(&self, event: &GarbageEvent) {
        for hook in &self.garbage {
            hook(event);
        }
    }
}

impl fmt::Debug for Hooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hooks")
            .field("garbage_hooks", &self.garbage.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AsId, ChanId};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn event() -> GarbageEvent {
        GarbageEvent {
            resource: ResourceId::Channel(ChanId {
                owner: AsId(0),
                index: 1,
            }),
            ts: Timestamp::new(5),
            tag: 2,
            len: 100,
        }
    }

    #[test]
    fn empty_hooks_do_nothing() {
        let hooks = Hooks::new();
        assert!(!hooks.has_garbage());
        hooks.fire_garbage(&event()); // must not panic
    }

    #[test]
    fn garbage_hook_fires_with_event() {
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let mut hooks = Hooks::new();
        hooks.set_garbage(move |e| {
            assert_eq!(e.ts, Timestamp::new(5));
            assert_eq!(e.len, 100);
            c2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(hooks.has_garbage());
        hooks.fire_garbage(&event());
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn clear_garbage_uninstalls() {
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let mut hooks = Hooks::new();
        hooks.set_garbage(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        hooks.clear_garbage();
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn multiple_hooks_all_fire() {
        let count = Arc::new(AtomicU32::new(0));
        let mut hooks = Hooks::new();
        for _ in 0..3 {
            let c = Arc::clone(&count);
            hooks.add_garbage(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(hooks.has_garbage());
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn set_garbage_replaces_all() {
        let count = Arc::new(AtomicU32::new(0));
        let mut hooks = Hooks::new();
        let c1 = Arc::clone(&count);
        hooks.add_garbage(move |_| {
            c1.fetch_add(100, Ordering::SeqCst);
        });
        let c2 = Arc::clone(&count);
        hooks.set_garbage(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        hooks.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hooks_clone_shares_hook() {
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let mut hooks = Hooks::new();
        hooks.set_garbage(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let clone = hooks.clone();
        clone.fire_garbage(&event());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Hooks::new()).is_empty());
        assert!(!format!("{}", event()).is_empty());
    }
}
