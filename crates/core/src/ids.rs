//! System-wide unique identifiers.
//!
//! Channels and queues are "system-wide unique names" (paper §3.1): an id
//! embeds the address space that *owns* the resource plus a local index, so
//! any thread anywhere in the Octopus can route an operation to the owner.

use std::fmt;

/// Identifier of an address space (a node of the Octopus: one cluster
/// address space, or implicitly the home of an end device's surrogate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AsId(pub u16);

impl AsId {
    /// The address space that conventionally hosts the name server.
    pub const NAMESERVER: AsId = AsId(0);
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as{}", self.0)
    }
}

/// System-wide unique identifier of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId {
    /// Owning address space.
    pub owner: AsId,
    /// Index within the owner's registry.
    pub index: u32,
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan:{}.{}", self.owner.0, self.index)
    }
}

/// System-wide unique identifier of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId {
    /// Owning address space.
    pub owner: AsId,
    /// Index within the owner's registry.
    pub index: u32,
}

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue:{}.{}", self.owner.0, self.index)
    }
}

/// Either kind of space-time memory container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// A timestamp-indexed channel.
    Channel(ChanId),
    /// A FIFO queue.
    Queue(QueueId),
}

impl ResourceId {
    /// The address space owning the resource.
    #[must_use]
    pub fn owner(&self) -> AsId {
        match self {
            ResourceId::Channel(c) => c.owner,
            ResourceId::Queue(q) => q.owner,
        }
    }

    /// The local index within the owner's registry.
    #[must_use]
    pub fn index(&self) -> u32 {
        match self {
            ResourceId::Channel(c) => c.index,
            ResourceId::Queue(q) => q.index,
        }
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Channel(c) => c.fmt(f),
            ResourceId::Queue(q) => q.fmt(f),
        }
    }
}

impl From<ChanId> for ResourceId {
    fn from(c: ChanId) -> Self {
        ResourceId::Channel(c)
    }
}

impl From<QueueId> for ResourceId {
    fn from(q: QueueId) -> Self {
        ResourceId::Queue(q)
    }
}

/// Identifier of a thread-to-container connection.
///
/// Connection ids are allocated by the container's owning address space and
/// are unique within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn:{}", self.0)
    }
}

/// Identifier of a registered D-Stampede thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thr:{}", self.0)
    }
}

/// Whether a connection is for reading or writing items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnMode {
    /// The thread gets items from the container.
    Input,
    /// The thread puts items into the container.
    Output,
}

impl fmt::Display for ConnMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnMode::Input => write!(f, "input"),
            ConnMode::Output => write!(f, "output"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_owner_and_index() {
        let c = ChanId {
            owner: AsId(3),
            index: 7,
        };
        let r: ResourceId = c.into();
        assert_eq!(r.owner(), AsId(3));
        assert_eq!(r.index(), 7);

        let q = QueueId {
            owner: AsId(1),
            index: 2,
        };
        let r: ResourceId = q.into();
        assert_eq!(r.owner(), AsId(1));
        assert_eq!(r.index(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AsId(4).to_string(), "as4");
        assert_eq!(
            ChanId {
                owner: AsId(1),
                index: 2
            }
            .to_string(),
            "chan:1.2"
        );
        assert_eq!(
            QueueId {
                owner: AsId(1),
                index: 2
            }
            .to_string(),
            "queue:1.2"
        );
        assert_eq!(ConnId(9).to_string(), "conn:9");
        assert_eq!(ThreadId(5).to_string(), "thr:5");
        assert_eq!(ConnMode::Input.to_string(), "input");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ConnId(1));
        set.insert(ConnId(1));
        assert_eq!(set.len(), 1);
        assert!(ConnId(1) < ConnId(2));
    }

    #[test]
    fn nameserver_lives_in_as_zero() {
        assert_eq!(AsId::NAMESERVER, AsId(0));
    }
}
