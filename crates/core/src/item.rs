//! Items: the application-defined chunks of streaming data stored in
//! channels and queues.
//!
//! An [`Item`] is an opaque byte payload (a video frame, an audio buffer, a
//! tracker result, ...) plus a small user tag. The system never interprets
//! the payload; typed access is layered on top via the [`StreamItem`] trait,
//! which plays the role of the paper's user-defined serialization *handler
//! functions* (§3.1).

use bytes::Bytes;

use dstampede_obs::TraceContext;

use crate::error::{StmError, StmResult};

/// An opaque, timestamped unit of stream data.
///
/// Payload bytes are reference-counted ([`Bytes`]), so cloning an item —
/// e.g. when several input connections get the same timestamp — never copies
/// the payload.
///
/// # Examples
///
/// ```
/// use dstampede_core::Item;
///
/// let frame = Item::from_vec(vec![0u8; 16]).with_tag(3);
/// assert_eq!(frame.len(), 16);
/// assert_eq!(frame.tag(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Item {
    payload: Bytes,
    tag: u32,
    /// Causal trace context attached by the (sampled) producer; rides
    /// along through channels, the wire, and GC. Not part of item
    /// identity: equality ignores it.
    trace: Option<TraceContext>,
}

/// Trace context is observability metadata, not data: two items with
/// equal payload and tag are equal regardless of tracing.
impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.payload == other.payload && self.tag == other.tag
    }
}

impl Eq for Item {}

impl Item {
    /// Creates an item from shared bytes without copying.
    #[must_use]
    pub fn new(payload: Bytes) -> Self {
        Item {
            payload,
            tag: 0,
            trace: None,
        }
    }

    /// Creates an item by taking ownership of a byte vector.
    #[must_use]
    pub fn from_vec(payload: Vec<u8>) -> Self {
        Item::new(Bytes::from(payload))
    }

    /// Creates an item by copying a byte slice.
    #[must_use]
    pub fn copy_from_slice(payload: &[u8]) -> Self {
        Item::new(Bytes::copy_from_slice(payload))
    }

    /// Sets the user tag (e.g. a fragment index for data-parallel splits) and
    /// returns the item, builder-style.
    #[must_use]
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }

    /// Attaches (or clears) the causal trace context, builder-style.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<TraceContext>) -> Self {
        self.trace = trace;
        self
    }

    /// The causal trace context the item carries, if sampled.
    #[must_use]
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.trace
    }

    /// Replaces the trace context in place (propagation sites).
    pub fn set_trace_context(&mut self, trace: Option<TraceContext>) {
        self.trace = trace;
    }

    /// The user tag. Zero unless set by the producer.
    #[must_use]
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Borrow of the payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The shared payload handle (cheap clone).
    #[must_use]
    pub fn payload_bytes(&self) -> Bytes {
        self.payload.clone()
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Consumes the item and returns its payload.
    #[must_use]
    pub fn into_payload(self) -> Bytes {
        self.payload
    }

    /// Decodes the payload into a typed value via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// Returns whatever error `T::from_item_bytes` produces for a malformed
    /// payload.
    pub fn decode<T: StreamItem>(&self) -> StmResult<T> {
        T::from_item_bytes(&self.payload)
    }
}

impl From<Vec<u8>> for Item {
    fn from(v: Vec<u8>) -> Self {
        Item::from_vec(v)
    }
}

impl From<Bytes> for Item {
    fn from(b: Bytes) -> Self {
        Item::new(b)
    }
}

impl AsRef<[u8]> for Item {
    fn as_ref(&self) -> &[u8] {
        self.payload()
    }
}

/// User-defined serialization for typed stream items.
///
/// This is the Rust rendering of the paper's *serialization and
/// de-serialization handlers*: a type that knows how to cross address-space
/// boundaries. Implement it for your frame/sample/result types and use the
/// typed `put`/`get` helpers on connections.
///
/// # Examples
///
/// ```
/// use dstampede_core::{Item, StreamItem, StmResult, StmError};
///
/// #[derive(Debug, PartialEq)]
/// struct Sample(u32);
///
/// impl StreamItem for Sample {
///     fn to_item_bytes(&self) -> Vec<u8> {
///         self.0.to_be_bytes().to_vec()
///     }
///     fn from_item_bytes(bytes: &[u8]) -> StmResult<Self> {
///         let arr: [u8; 4] = bytes
///             .try_into()
///             .map_err(|_| StmError::Protocol("bad sample length".into()))?;
///         Ok(Sample(u32::from_be_bytes(arr)))
///     }
/// }
///
/// let item = Item::from_vec(Sample(7).to_item_bytes());
/// assert_eq!(item.decode::<Sample>().unwrap(), Sample(7));
/// ```
pub trait StreamItem: Sized {
    /// Serializes the value to payload bytes.
    fn to_item_bytes(&self) -> Vec<u8>;

    /// Deserializes a value from payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StmError::Protocol`] (or another variant) if the bytes do
    /// not encode a valid value.
    fn from_item_bytes(bytes: &[u8]) -> StmResult<Self>;

    /// Serializes the value to payload bytes, consuming it.
    ///
    /// The default delegates to [`StreamItem::to_item_bytes`]; byte-shaped
    /// types ([`Vec<u8>`], [`String`], [`Bytes`]) override it to move their
    /// allocation into the payload instead of copying, which is what lets a
    /// typed `put` ride the zero-copy data plane all the way to the socket.
    fn into_item_bytes(self) -> Bytes {
        Bytes::from(self.to_item_bytes())
    }

    /// Convenience: wraps the serialized bytes into an [`Item`].
    fn to_item(&self) -> Item {
        Item::from_vec(self.to_item_bytes())
    }

    /// Convenience: consumes the value into an [`Item`] without copying
    /// when the type supports it.
    fn into_item(self) -> Item {
        Item::new(self.into_item_bytes())
    }
}

impl StreamItem for Vec<u8> {
    fn to_item_bytes(&self) -> Vec<u8> {
        self.clone()
    }

    fn from_item_bytes(bytes: &[u8]) -> StmResult<Self> {
        Ok(bytes.to_vec())
    }

    /// Moves the vector's allocation into the payload — no copy.
    fn into_item_bytes(self) -> Bytes {
        Bytes::from(self)
    }
}

impl StreamItem for String {
    fn to_item_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    fn from_item_bytes(bytes: &[u8]) -> StmResult<Self> {
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StmError::Protocol("payload is not valid utf-8".into()))
    }

    /// Moves the string's allocation into the payload — no copy.
    fn into_item_bytes(self) -> Bytes {
        Bytes::from(self.into_bytes())
    }
}

impl StreamItem for Bytes {
    fn to_item_bytes(&self) -> Vec<u8> {
        self.to_vec()
    }

    fn from_item_bytes(bytes: &[u8]) -> StmResult<Self> {
        Ok(Bytes::copy_from_slice(bytes))
    }

    /// The handle is already shared bytes — passes straight through.
    fn into_item_bytes(self) -> Bytes {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_constructors_agree() {
        let a = Item::from_vec(vec![1, 2, 3]);
        let b = Item::copy_from_slice(&[1, 2, 3]);
        let c = Item::new(Bytes::from_static(&[1, 2, 3]));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn tag_defaults_to_zero_and_is_settable() {
        let i = Item::from_vec(vec![9]);
        assert_eq!(i.tag(), 0);
        assert_eq!(i.with_tag(7).tag(), 7);
    }

    #[test]
    fn clone_shares_payload() {
        let a = Item::from_vec(vec![0u8; 1024]);
        let b = a.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(a.payload().as_ptr(), b.payload().as_ptr());
    }

    #[test]
    fn into_payload_returns_bytes() {
        let i = Item::from_vec(vec![5, 6]);
        assert_eq!(&i.into_payload()[..], &[5, 6]);
    }

    #[test]
    fn vec_stream_item_round_trips() {
        let v = vec![1u8, 2, 3];
        let item = v.to_item();
        assert_eq!(item.decode::<Vec<u8>>().unwrap(), v);
    }

    #[test]
    fn string_stream_item_round_trips() {
        let s = "hello avatar".to_owned();
        let item = s.to_item();
        assert_eq!(item.decode::<String>().unwrap(), s);
    }

    #[test]
    fn string_stream_item_rejects_bad_utf8() {
        let item = Item::from_vec(vec![0xff, 0xfe]);
        assert!(matches!(
            item.decode::<String>(),
            Err(StmError::Protocol(_))
        ));
    }

    #[test]
    fn into_item_bytes_moves_byte_shaped_types() {
        let v = vec![7u8; 512];
        let ptr = v.as_ptr();
        let payload = v.into_item_bytes();
        // Vec and String specializations move the allocation, not copy it.
        assert_eq!(payload.as_ptr(), ptr);

        let s = String::from("a long enough string to be heap-allocated");
        let ptr = s.as_ptr();
        assert_eq!(s.into_item_bytes().as_ptr(), ptr);

        let b = Bytes::from(vec![1u8; 64]);
        let ptr = b.as_ptr();
        let item = b.into_item();
        assert_eq!(item.payload().as_ptr(), ptr);
        assert_eq!(item.decode::<Vec<u8>>().unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn bytes_stream_item_round_trips() {
        let b = Bytes::from_static(b"payload");
        let item = b.to_item();
        assert_eq!(item.decode::<Bytes>().unwrap(), b);
    }

    #[test]
    fn empty_default_item() {
        let i = Item::default();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
