//! # dstampede-core — Space-Time Memory
//!
//! This crate implements the core computational abstractions of
//! **D-Stampede** (*D-Stampede: Distributed Programming System for
//! Ubiquitous Computing*, ICDCS 2002): threads, **channels**, and
//! **queues** holding *time-sequenced* data items — collectively called
//! *space-time memory*.
//!
//! * A [`Channel`] stores items indexed by an application-defined
//!   [`Timestamp`] and supports random access by timestamp — the substrate
//!   for temporally correlating streams (e.g. matching the video frame and
//!   audio sample of the same instant).
//! * A [`Queue`] is FIFO and hands each item to exactly one getter — the
//!   substrate for data parallelism (splitting a frame into fragments
//!   analysed by a pool of trackers).
//! * Input connections signal disinterest via `consume_until`/`set_vt`, and
//!   the containers automatically reclaim items no connection can ever need
//!   (see [`gc`]).
//! * [`rtsync`] provides loose temporal synchrony for pacing threads
//!   against real time.
//!
//! Everything here is single-address-space; the `dstampede-runtime` crate
//! distributes these abstractions across address spaces and end devices.
//!
//! ## Example
//!
//! A producer/consumer pair sharing a channel, the shape of the paper's §3.1
//! pseudocode:
//!
//! ```
//! use dstampede_core::{Channel, ChannelAttrs, GetSpec, Interest, Item, Timestamp};
//!
//! # fn main() -> Result<(), dstampede_core::StmError> {
//! let chan = Channel::standalone(ChannelAttrs::default());
//!
//! // Producer thread.
//! let out = chan.connect_output();
//! for ts in 0..4 {
//!     out.put(Timestamp::new(ts), Item::from_vec(vec![ts as u8]))?;
//! }
//!
//! // Consumer thread.
//! let inp = chan.connect_input(Interest::FromEarliest);
//! for ts in 0..4 {
//!     let (t, item) = inp.get(GetSpec::Exact(Timestamp::new(ts)))?;
//!     assert_eq!(item.payload(), &[ts as u8]);
//!     inp.consume_until(t)?; // signal garbage
//! }
//! assert_eq!(chan.live_items(), 0); // all reclaimed
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attr;
pub mod channel;
pub mod cursor;
pub mod error;
pub mod gc;
pub mod handler;
pub mod ids;
pub mod item;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod rtsync;
pub mod thread;
pub mod time;
pub mod waiter;

pub use attr::{
    ChannelAttrs, ChannelAttrsBuilder, GcPolicy, OverflowPolicy, QueueAttrs, QueueAttrsBuilder,
};
pub use channel::{
    Channel, ChannelStats, GetSpec, InputConn, Interest, OutputConn, TagFilter, DEFAULT_STM_SHARDS,
};
pub use cursor::{ConsumeMode, StreamCursor};
pub use error::{StmError, StmResult};
pub use handler::{GarbageEvent, GarbageHook, Hooks, PutEvent, PutHook};
pub use ids::{AsId, ChanId, ConnId, ConnMode, QueueId, ResourceId, ThreadId};
pub use item::{Item, StreamItem};
pub use metrics::StmMetrics;
pub use queue::{QTicket, Queue, QueueInputConn, QueueOutputConn, QueueStats};
pub use registry::StmRegistry;
pub use rtsync::{Clock, RealClock, Recovery, RtSync, SyncStatus, VirtualClock};
pub use time::{Timestamp, TsRange, VirtualTime};
pub use waiter::WakerSet;
