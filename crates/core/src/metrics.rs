//! Registry-backed telemetry handles for space-time memory containers.
//!
//! Every [`crate::Channel`] and [`crate::Queue`] carries an
//! [`StmMetrics`]: a bundle of `Arc` handles into a
//! [`MetricsRegistry`], resolved once at container creation so hot
//! paths pay only relaxed atomic updates. Containers created through
//! an address-space [`crate::StmRegistry`] bind to that space's
//! registry; standalone containers bind to the process-global one.
//!
//! Metric names follow the workspace convention (see `dstampede-obs`):
//! the `stm` subsystem owns operation counts, latencies, and occupancy;
//! the `gc` subsystem owns reclamation totals. Channel and queue series
//! are distinguished by a `resource` label.

use std::sync::Arc;
use std::time::Instant;

use dstampede_obs::{Counter, Gauge, Histogram, MetricsRegistry, Tracer};

/// Telemetry handles shared by one container.
///
/// Cheap to clone conceptually (all fields are `Arc`s), but containers
/// each call [`StmMetrics::channel`] / [`StmMetrics::queue`] so that
/// same-kind containers in one space share the same series.
#[derive(Debug)]
pub struct StmMetrics {
    pub(crate) puts: Arc<Counter>,
    pub(crate) gets: Arc<Counter>,
    pub(crate) consumes: Arc<Counter>,
    pub(crate) put_latency: Arc<Histogram>,
    pub(crate) get_latency: Arc<Histogram>,
    pub(crate) consume_latency: Arc<Histogram>,
    /// Live (channel) or queued (queue) item occupancy for this kind.
    pub(crate) occupancy: Arc<Gauge>,
    pub(crate) reclaimed_items: Arc<Counter>,
    pub(crate) reclaimed_bytes: Arc<Counter>,
    /// The owning registry's causal tracer, for lifecycle spans.
    pub(crate) tracer: Arc<Tracer>,
}

impl StmMetrics {
    /// Handles for a channel, bound to `registry`.
    #[must_use]
    pub fn channel(registry: &MetricsRegistry) -> StmMetrics {
        StmMetrics::bind(registry, "channel", "channel_items")
    }

    /// Handles for a queue, bound to `registry`.
    #[must_use]
    pub fn queue(registry: &MetricsRegistry) -> StmMetrics {
        StmMetrics::bind(registry, "queue", "queue_items")
    }

    fn bind(registry: &MetricsRegistry, kind: &str, occupancy: &str) -> StmMetrics {
        let labels = [("resource", kind)];
        StmMetrics {
            puts: registry.counter_labeled("stm", "puts", &labels),
            gets: registry.counter_labeled("stm", "gets", &labels),
            consumes: registry.counter_labeled("stm", "consumes", &labels),
            put_latency: registry.histogram_labeled("stm", "put_latency_us", &labels),
            get_latency: registry.histogram_labeled("stm", "get_latency_us", &labels),
            consume_latency: registry.histogram_labeled("stm", "consume_latency_us", &labels),
            occupancy: registry.gauge("stm", occupancy),
            reclaimed_items: registry.counter_labeled("gc", "reclaimed_items", &labels),
            reclaimed_bytes: registry.counter_labeled("gc", "reclaimed_bytes", &labels),
            tracer: Arc::clone(registry.tracer()),
        }
    }

    pub(crate) fn record_put(&self, started: Instant) {
        self.puts.inc();
        self.put_latency.record_duration(started.elapsed());
    }

    pub(crate) fn record_get(&self, started: Instant) {
        self.gets.inc();
        self.get_latency.record_duration(started.elapsed());
    }

    pub(crate) fn record_consume(&self, started: Instant) {
        self.consumes.inc();
        self.consume_latency.record_duration(started.elapsed());
    }

    pub(crate) fn record_reclaim(&self, items: u64, bytes: u64) {
        self.reclaimed_items.add(items);
        self.reclaimed_bytes.add(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_and_queue_are_distinct_series() {
        let reg = MetricsRegistry::new("test");
        let ch = StmMetrics::channel(&reg);
        let qu = StmMetrics::queue(&reg);
        ch.puts.inc();
        assert_eq!(ch.puts.get(), 1);
        assert_eq!(qu.puts.get(), 0);
        // Two bindings of the same kind share one series.
        let ch2 = StmMetrics::channel(&reg);
        ch2.puts.inc();
        assert_eq!(ch.puts.get(), 2);
    }

    #[test]
    fn recorders_update_counters_and_latencies() {
        let reg = MetricsRegistry::new("test");
        let m = StmMetrics::channel(&reg);
        let t = Instant::now();
        m.record_put(t);
        m.record_get(t);
        m.record_consume(t);
        m.record_reclaim(2, 64);
        assert_eq!(m.puts.get(), 1);
        assert_eq!(m.gets.get(), 1);
        assert_eq!(m.consumes.get(), 1);
        assert_eq!(m.put_latency.count(), 1);
        assert_eq!(m.get_latency.count(), 1);
        assert_eq!(m.consume_latency.count(), 1);
        assert_eq!(m.reclaimed_items.get(), 2);
        assert_eq!(m.reclaimed_bytes.get(), 64);
    }
}
