//! FIFO queues: the work-sharing space-time memory container.
//!
//! Unlike a [`crate::Channel`], a queue hands each item to **exactly one**
//! getter, in FIFO order. The paper (§3.1, Figure 3) uses queues to exploit
//! data parallelism: a splitter thread partitions a frame into fragments
//! (all bearing the *same* timestamp, distinguished by tag), worker threads
//! each pull a fragment, and a joiner stitches results back together.
//! Duplicate timestamps are therefore explicitly allowed here.
//!
//! # Tickets
//!
//! `get` returns the item together with a [`QTicket`]. The getter calls
//! `consume(ticket)` once it is done (firing the queue's garbage hook) or
//! `requeue(ticket)` to put the item back at the head. If an input
//! connection disconnects with tickets outstanding — e.g. a worker crashes —
//! its in-flight items are automatically requeued, an extension supporting
//! the failure handling the paper lists as future work (§3.3).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_obs::{trace, MetricsRegistry, SpanKind};
use parking_lot::{Condvar, Mutex};

use crate::attr::{OverflowPolicy, QueueAttrs};
use crate::channel::Deadline;
use crate::error::{StmError, StmResult};
use crate::handler::{GarbageEvent, Hooks};
use crate::ids::{ConnId, QueueId, ResourceId};
use crate::item::{Item, StreamItem};
use crate::metrics::StmMetrics;
use crate::time::Timestamp;

/// Receipt for an in-flight queue item; settle with `consume` or `requeue`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QTicket(pub u64);

impl fmt::Display for QTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ticket:{}", self.0)
    }
}

/// Monotonic counters describing a queue's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Successful puts.
    pub puts: u64,
    /// Successful gets.
    pub gets: u64,
    /// Tickets consumed.
    pub consumes: u64,
    /// Tickets requeued (explicitly or by disconnect recovery).
    pub requeues: u64,
    /// Items reclaimed (consumed or evicted).
    pub reclaimed_items: u64,
    /// Payload bytes reclaimed.
    pub reclaimed_bytes: u64,
}

#[derive(Default)]
struct AtomicStats {
    puts: AtomicU64,
    gets: AtomicU64,
    consumes: AtomicU64,
    requeues: AtomicU64,
    reclaimed_items: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> QueueStats {
        QueueStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            consumes: self.consumes.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            reclaimed_items: self.reclaimed_items.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
        }
    }
}

struct QEntry {
    ts: Timestamp,
    item: Item,
}

struct Inflight {
    ts: Timestamp,
    item: Item,
    conn: ConnId,
}

struct QState {
    items: VecDeque<QEntry>,
    inflight: HashMap<QTicket, Inflight>,
    in_conns: HashSet<ConnId>,
    out_conns: HashSet<ConnId>,
    next_conn: u64,
    next_ticket: u64,
    closed: bool,
}

/// A FIFO work-sharing queue.
///
/// # Examples
///
/// ```
/// use dstampede_core::{Queue, QueueAttrs, Item, Timestamp};
///
/// # fn main() -> Result<(), dstampede_core::StmError> {
/// let q = Queue::standalone(QueueAttrs::default());
/// let out = q.connect_output();
/// let inp = q.connect_input();
///
/// out.put(Timestamp::new(0), Item::from_vec(vec![1]).with_tag(0))?;
/// out.put(Timestamp::new(0), Item::from_vec(vec![2]).with_tag(1))?;
///
/// let (ts, frag, ticket) = inp.get()?;
/// assert_eq!(ts, Timestamp::new(0));
/// inp.consume(ticket)?;
/// # Ok(())
/// # }
/// ```
pub struct Queue {
    id: QueueId,
    name: Option<String>,
    attrs: QueueAttrs,
    state: Mutex<QState>,
    items_cv: Condvar,
    space_cv: Condvar,
    hooks: Mutex<Hooks>,
    stats: AtomicStats,
    obs: StmMetrics,
    /// Precomputed `queue:OWNER/INDEX` span label — span recording on
    /// sampled items must not pay a format per edge.
    span_resource: String,
}

impl Queue {
    /// Creates a queue with an explicit system-wide id, reporting
    /// telemetry to the process-global metrics registry (registries call
    /// this; use [`Queue::standalone`] for local experimentation).
    #[must_use]
    pub fn new(id: QueueId, name: Option<String>, attrs: QueueAttrs) -> Arc<Self> {
        Queue::new_in(id, name, attrs, dstampede_obs::global())
    }

    /// Creates a queue reporting telemetry to `metrics` (used by
    /// address-space registries so each space's activity is attributed
    /// separately in cluster-wide snapshots).
    #[must_use]
    pub fn new_in(
        id: QueueId,
        name: Option<String>,
        attrs: QueueAttrs,
        metrics: &MetricsRegistry,
    ) -> Arc<Self> {
        Arc::new(Queue {
            id,
            name,
            attrs,
            state: Mutex::new(QState {
                items: VecDeque::new(),
                inflight: HashMap::new(),
                in_conns: HashSet::new(),
                out_conns: HashSet::new(),
                next_conn: 1,
                next_ticket: 1,
                closed: false,
            }),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            hooks: Mutex::new(Hooks::new()),
            stats: AtomicStats::default(),
            obs: StmMetrics::queue(metrics),
            span_resource: format!("queue:{}/{}", id.owner.0, id.index),
        })
    }

    /// Creates an unregistered queue for single-address-space use.
    #[must_use]
    pub fn standalone(attrs: QueueAttrs) -> Arc<Self> {
        Queue::new(
            QueueId {
                owner: crate::ids::AsId(0),
                index: 0,
            },
            None,
            attrs,
        )
    }

    /// The queue's system-wide id.
    #[must_use]
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// The queue's registered name, if any.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The creation-time attributes.
    #[must_use]
    pub fn attrs(&self) -> &QueueAttrs {
        &self.attrs
    }

    /// A snapshot of activity counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.stats.snapshot()
    }

    /// Number of queued (not in-flight) items.
    #[must_use]
    pub fn queued_items(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Number of items handed out but not yet settled.
    #[must_use]
    pub fn inflight_items(&self) -> usize {
        self.state.lock().inflight.len()
    }

    /// Installs a garbage hook fired when items are consumed or evicted.
    pub fn set_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.lock().set_garbage(hook);
    }

    /// Installs an additional garbage hook alongside any existing ones.
    pub fn add_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.lock().add_garbage(hook);
    }

    /// Opens an input (getter) connection; disconnecting requeues any
    /// outstanding tickets.
    #[must_use]
    pub fn connect_input(self: &Arc<Self>) -> QueueInputConn {
        let mut st = self.state.lock();
        let id = ConnId(st.next_conn);
        st.next_conn += 1;
        st.in_conns.insert(id);
        drop(st);
        QueueInputConn {
            queue: Arc::clone(self),
            id,
        }
    }

    /// Opens an output (putter) connection.
    #[must_use]
    pub fn connect_output(self: &Arc<Self>) -> QueueOutputConn {
        let mut st = self.state.lock();
        let id = ConnId(st.next_conn);
        st.next_conn += 1;
        st.out_conns.insert(id);
        drop(st);
        QueueOutputConn {
            queue: Arc::clone(self),
            id,
        }
    }

    /// Closes the queue: blocked operations wake with [`StmError::Closed`],
    /// puts fail, gets keep draining queued items.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Whether [`Queue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    // ---- internal operations ----

    pub(crate) fn do_put(
        &self,
        conn: ConnId,
        ts: Timestamp,
        item: Item,
        deadline: Deadline,
    ) -> StmResult<()> {
        let started = Instant::now();
        // As for channels: a sampled item without a context starts its
        // trace here; an ambient context (a surrogate running a remote
        // put) takes precedence.
        let mut item = item;
        if item.trace_context().is_none() {
            item.set_trace_context(
                trace::current().or_else(|| self.obs.tracer.begin_trace(ts.value())),
            );
        }
        let ctx = item.trace_context();
        let len = item.len();
        let mut evicted: Option<QEntry> = None;
        {
            let mut st = self.state.lock();
            if !st.out_conns.contains(&conn) {
                return Err(StmError::NoSuchConnection);
            }
            loop {
                if st.closed {
                    return Err(StmError::Closed);
                }
                let cap = self.attrs.capacity().map(|c| c as usize);
                let full = cap.is_some_and(|c| st.items.len() >= c);
                if !full {
                    break;
                }
                match self.attrs.overflow() {
                    OverflowPolicy::Reject => return Err(StmError::Full),
                    OverflowPolicy::DropOldest => {
                        evicted = st.items.pop_front();
                        break;
                    }
                    OverflowPolicy::Block => match deadline {
                        Deadline::Now => return Err(StmError::Full),
                        Deadline::Never => {
                            self.space_cv.wait(&mut st);
                        }
                        Deadline::At(instant) => {
                            if self.space_cv.wait_until(&mut st, instant).timed_out() {
                                return Err(StmError::Timeout);
                            }
                        }
                    },
                }
            }
            st.items.push_back(QEntry { ts, item });
            self.stats.puts.fetch_add(1, Ordering::Relaxed);
            self.obs.occupancy.inc();
            self.obs.record_put(started);
        }
        self.items_cv.notify_one();
        if let Some(ctx) = ctx {
            self.obs.tracer.finish(
                ctx,
                SpanKind::Put,
                &self.span_resource,
                ts.value(),
                self.obs.tracer.now_us().saturating_sub(
                    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                ),
                &format!("bytes={len}"),
            );
        }
        if let Some(e) = evicted {
            self.obs.occupancy.dec();
            self.reclaim_one(e.ts, &e.item);
        }
        Ok(())
    }

    pub(crate) fn do_get(
        &self,
        conn: ConnId,
        deadline: Deadline,
    ) -> StmResult<(Timestamp, Item, QTicket)> {
        let started = Instant::now();
        let mut st = self.state.lock();
        loop {
            if !st.in_conns.contains(&conn) {
                return Err(StmError::NoSuchConnection);
            }
            if let Some(entry) = st.items.pop_front() {
                let ticket = QTicket(st.next_ticket);
                st.next_ticket += 1;
                st.inflight.insert(
                    ticket,
                    Inflight {
                        ts: entry.ts,
                        item: entry.item.clone(),
                        conn,
                    },
                );
                self.stats.gets.fetch_add(1, Ordering::Relaxed);
                self.obs.occupancy.dec();
                self.obs.record_get(started);
                drop(st);
                self.space_cv.notify_one();
                if let Some(ctx) = entry.item.trace_context() {
                    self.obs.tracer.instant(
                        ctx,
                        SpanKind::Get,
                        &self.span_resource,
                        entry.ts.value(),
                        "",
                    );
                }
                return Ok((entry.ts, entry.item, ticket));
            }
            if st.closed {
                return Err(StmError::Closed);
            }
            match deadline {
                Deadline::Now => return Err(StmError::Absent),
                Deadline::Never => {
                    self.items_cv.wait(&mut st);
                }
                Deadline::At(instant) => {
                    if self.items_cv.wait_until(&mut st, instant).timed_out() {
                        return Err(StmError::Timeout);
                    }
                }
            }
        }
    }

    pub(crate) fn do_consume(&self, conn: ConnId, ticket: QTicket) -> StmResult<()> {
        let started = Instant::now();
        let entry;
        {
            let mut st = self.state.lock();
            match st.inflight.get(&ticket) {
                Some(inf) if inf.conn == conn => {}
                Some(_) => return Err(StmError::BadMode),
                None => return Err(StmError::Absent),
            }
            entry = st.inflight.remove(&ticket).expect("checked above");
            self.stats.consumes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_consume(started);
        }
        if let Some(ctx) = entry.item.trace_context() {
            self.obs.tracer.instant(
                ctx,
                SpanKind::Consume,
                &self.span_resource,
                entry.ts.value(),
                "",
            );
        }
        self.reclaim_one(entry.ts, &entry.item);
        Ok(())
    }

    pub(crate) fn do_requeue(&self, conn: ConnId, ticket: QTicket) -> StmResult<()> {
        {
            let mut st = self.state.lock();
            match st.inflight.get(&ticket) {
                Some(inf) if inf.conn == conn => {}
                Some(_) => return Err(StmError::BadMode),
                None => return Err(StmError::Absent),
            }
            let inf = st.inflight.remove(&ticket).expect("checked above");
            st.items.push_front(QEntry {
                ts: inf.ts,
                item: inf.item,
            });
            self.stats.requeues.fetch_add(1, Ordering::Relaxed);
            self.obs.occupancy.inc();
        }
        self.items_cv.notify_one();
        Ok(())
    }

    pub(crate) fn do_disconnect_input(&self, conn: ConnId) {
        let mut recovered = 0u64;
        {
            let mut st = self.state.lock();
            if !st.in_conns.remove(&conn) {
                return;
            }
            let orphaned: Vec<QTicket> = st
                .inflight
                .iter()
                .filter(|(_, inf)| inf.conn == conn)
                .map(|(&t, _)| t)
                .collect();
            for t in orphaned {
                let inf = st.inflight.remove(&t).expect("just listed");
                st.items.push_front(QEntry {
                    ts: inf.ts,
                    item: inf.item,
                });
                recovered += 1;
            }
            self.stats.requeues.fetch_add(recovered, Ordering::Relaxed);
            self.obs
                .occupancy
                .add(i64::try_from(recovered).unwrap_or(i64::MAX));
        }
        // Always wake blocked getters: those waiting on the departed
        // connection must observe NoSuchConnection, and if tickets were
        // requeued other getters can now claim them.
        self.items_cv.notify_all();
    }

    pub(crate) fn do_disconnect_output(&self, conn: ConnId) {
        let mut st = self.state.lock();
        st.out_conns.remove(&conn);
    }

    fn reclaim_one(&self, ts: Timestamp, item: &Item) {
        self.stats.reclaimed_items.fetch_add(1, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(item.len() as u64, Ordering::Relaxed);
        self.obs.record_reclaim(1, item.len() as u64);
        self.space_cv.notify_one();
        let hooks = self.hooks.lock().clone();
        hooks.fire_garbage(&GarbageEvent {
            resource: ResourceId::Queue(self.id),
            ts,
            tag: item.tag(),
            len: item.len() as u32,
        });
    }
}

impl fmt::Debug for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Queue")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("queued", &st.items.len())
            .field("inflight", &st.inflight.len())
            .field("closed", &st.closed)
            .finish()
    }
}

/// An input (getter) connection to a [`Queue`]; disconnects on drop,
/// requeueing any unsettled tickets.
pub struct QueueInputConn {
    queue: Arc<Queue>,
    id: ConnId,
}

impl QueueInputConn {
    /// This connection's id.
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The queue this connection is attached to.
    #[must_use]
    pub fn queue(&self) -> &Arc<Queue> {
        &self.queue
    }

    /// Blocking get of the next item.
    ///
    /// # Errors
    ///
    /// [`StmError::Closed`] once the queue is closed and drained.
    pub fn get(&self) -> StmResult<(Timestamp, Item, QTicket)> {
        self.queue.do_get(self.id, Deadline::Never)
    }

    /// Non-blocking get.
    ///
    /// # Errors
    ///
    /// [`StmError::Absent`] when the queue is empty.
    pub fn try_get(&self) -> StmResult<(Timestamp, Item, QTicket)> {
        self.queue.do_get(self.id, Deadline::Now)
    }

    /// Get with a timeout.
    ///
    /// # Errors
    ///
    /// [`StmError::Timeout`] if nothing arrives in time.
    pub fn get_timeout(&self, timeout: Duration) -> StmResult<(Timestamp, Item, QTicket)> {
        self.queue.do_get(self.id, Deadline::after(timeout))
    }

    /// Typed blocking get via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`QueueInputConn::get`], plus decoding errors from `T`.
    pub fn get_typed<T: StreamItem>(&self) -> StmResult<(Timestamp, T, QTicket)> {
        let (ts, item, ticket) = self.get()?;
        Ok((ts, item.decode::<T>()?, ticket))
    }

    /// Settles a ticket: the item is done and becomes garbage.
    ///
    /// # Errors
    ///
    /// [`StmError::Absent`] for unknown/settled tickets,
    /// [`StmError::BadMode`] for a ticket belonging to another connection.
    pub fn consume(&self, ticket: QTicket) -> StmResult<()> {
        self.queue.do_consume(self.id, ticket)
    }

    /// Puts an unfinished item back at the head of the queue.
    ///
    /// # Errors
    ///
    /// As [`QueueInputConn::consume`].
    pub fn requeue(&self, ticket: QTicket) -> StmResult<()> {
        self.queue.do_requeue(self.id, ticket)
    }

    /// Tears the connection down now rather than waiting for drop: its
    /// in-flight tickets are pushed back to the head of the queue and
    /// any getter blocked on it wakes with
    /// [`StmError::NoSuchConnection`]. Idempotent; the eventual drop
    /// becomes a no-op. Used by failure recovery to orphan connections
    /// still referenced by blocked workers.
    pub fn disconnect(&self) {
        self.queue.do_disconnect_input(self.id);
    }
}

impl fmt::Debug for QueueInputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueInputConn")
            .field("queue", &self.queue.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for QueueInputConn {
    fn drop(&mut self) {
        self.queue.do_disconnect_input(self.id);
    }
}

/// An output (putter) connection to a [`Queue`]; disconnects on drop.
pub struct QueueOutputConn {
    queue: Arc<Queue>,
    id: ConnId,
}

impl QueueOutputConn {
    /// This connection's id.
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The queue this connection is attached to.
    #[must_use]
    pub fn queue(&self) -> &Arc<Queue> {
        &self.queue
    }

    /// Blocking put (blocks only when bounded with
    /// [`OverflowPolicy::Block`] and full).
    ///
    /// # Errors
    ///
    /// [`StmError::Full`] under [`OverflowPolicy::Reject`],
    /// [`StmError::Closed`] after close.
    pub fn put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.queue.do_put(self.id, ts, item, Deadline::Never)
    }

    /// Non-blocking put.
    ///
    /// # Errors
    ///
    /// As [`QueueOutputConn::put`], with [`StmError::Full`] instead of
    /// blocking.
    pub fn try_put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.queue.do_put(self.id, ts, item, Deadline::Now)
    }

    /// Put with a timeout on the capacity wait.
    ///
    /// # Errors
    ///
    /// As [`QueueOutputConn::put`], plus [`StmError::Timeout`].
    pub fn put_timeout(&self, ts: Timestamp, item: Item, timeout: Duration) -> StmResult<()> {
        self.queue
            .do_put(self.id, ts, item, Deadline::after(timeout))
    }

    /// Typed put via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`QueueOutputConn::put`].
    pub fn put_typed<T: StreamItem>(&self, ts: Timestamp, value: &T) -> StmResult<()> {
        self.put(ts, value.to_item())
    }

    /// Tears the connection down now rather than waiting for drop.
    /// Idempotent; used by failure recovery.
    pub fn disconnect(&self) {
        self.queue.do_disconnect_output(self.id);
    }
}

impl fmt::Debug for QueueOutputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueOutputConn")
            .field("queue", &self.queue.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for QueueOutputConn {
    fn drop(&mut self) {
        self.queue.do_disconnect_output(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn ts(v: i64) -> Timestamp {
        Timestamp::new(v)
    }

    fn item(bytes: &[u8]) -> Item {
        Item::copy_from_slice(bytes)
    }

    #[test]
    fn fifo_order() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        for v in 1..=3u8 {
            let (_, it, t) = inp.get().unwrap();
            assert_eq!(it.payload(), &[v]);
            inp.consume(t).unwrap();
        }
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(7), item(b"frag0").with_tag(0)).unwrap();
        out.put(ts(7), item(b"frag1").with_tag(1)).unwrap();
        let (t0, i0, k0) = inp.get().unwrap();
        let (t1, i1, k1) = inp.get().unwrap();
        assert_eq!((t0, t1), (ts(7), ts(7)));
        assert_eq!(i0.tag(), 0);
        assert_eq!(i1.tag(), 1);
        inp.consume(k0).unwrap();
        inp.consume(k1).unwrap();
    }

    #[test]
    fn each_item_delivered_exactly_once() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        for v in 0..100 {
            out.put(ts(v), item(&(v as u32).to_be_bytes())).unwrap();
        }
        q.close();
        let mut handles = Vec::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            handles.push(thread::spawn(move || {
                let inp = q.connect_input();
                loop {
                    match inp.get() {
                        Ok((_, it, ticket)) => {
                            let v = u32::from_be_bytes(it.payload().try_into().unwrap());
                            seen.lock().push(v);
                            inp.consume(ticket).unwrap();
                        }
                        Err(StmError::Closed) => break,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = seen.lock().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn requeue_puts_item_back_at_head() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        let (_, it, ticket) = inp.get().unwrap();
        assert_eq!(it.payload(), b"a");
        inp.requeue(ticket).unwrap();
        let (_, it2, t2) = inp.get().unwrap();
        assert_eq!(it2.payload(), b"a"); // back at the head
        inp.consume(t2).unwrap();
    }

    #[test]
    fn ticket_misuse_errors() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let a = q.connect_input();
        let b = q.connect_input();
        out.put(ts(1), item(b"x")).unwrap();
        let (_, _, ticket) = a.get().unwrap();
        // Another connection cannot settle a's ticket.
        assert_eq!(b.consume(ticket), Err(StmError::BadMode));
        assert_eq!(b.requeue(ticket), Err(StmError::BadMode));
        a.consume(ticket).unwrap();
        // Double settle.
        assert_eq!(a.consume(ticket), Err(StmError::Absent));
        assert_eq!(a.requeue(ticket), Err(StmError::Absent));
    }

    #[test]
    fn disconnect_requeues_inflight_items() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        out.put(ts(1), item(b"work")).unwrap();
        let worker = q.connect_input();
        let (_, _, _ticket) = worker.get().unwrap();
        assert_eq!(q.inflight_items(), 1);
        drop(worker); // crash: ticket never settled
        assert_eq!(q.inflight_items(), 0);
        assert_eq!(q.queued_items(), 1);
        let rescuer = q.connect_input();
        let (_, it, t) = rescuer.try_get().unwrap();
        assert_eq!(it.payload(), b"work");
        rescuer.consume(t).unwrap();
        assert_eq!(q.stats().requeues, 1);
    }

    #[test]
    fn blocking_get_wakes_on_put() {
        let q = Queue::standalone(QueueAttrs::default());
        let inp = q.connect_input();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let out = q2.connect_output();
            out.put(ts(9), item(b"late")).unwrap();
        });
        let (t, it, k) = inp.get().unwrap();
        assert_eq!(t, ts(9));
        assert_eq!(it.payload(), b"late");
        inp.consume(k).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn get_timeout_expires() {
        let q = Queue::standalone(QueueAttrs::default());
        let inp = q.connect_input();
        assert_eq!(
            inp.get_timeout(Duration::from_millis(20)).unwrap_err(),
            StmError::Timeout
        );
    }

    #[test]
    fn bounded_block_paces_producer() {
        let q = Queue::standalone(QueueAttrs::builder().capacity(1).build());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.try_put(ts(2), item(b"b")), Err(StmError::Full));
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let (_, _, k) = inp.get().unwrap();
            inp.consume(k).unwrap();
            inp
        });
        out.put(ts(2), item(b"b")).unwrap(); // unblocks when getter drains
        drop(h.join().unwrap());
    }

    #[test]
    fn bounded_reject() {
        let q = Queue::standalone(
            QueueAttrs::builder()
                .capacity(1)
                .overflow(OverflowPolicy::Reject)
                .build(),
        );
        let out = q.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.put(ts(2), item(b"b")), Err(StmError::Full));
    }

    #[test]
    fn bounded_drop_oldest_fires_hook() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&dropped);
        let q = Queue::standalone(
            QueueAttrs::builder()
                .capacity(1)
                .overflow(OverflowPolicy::DropOldest)
                .build(),
        );
        q.set_garbage_hook(move |e| {
            assert_eq!(e.ts, ts(1));
            d2.fetch_add(1, Ordering::SeqCst);
        });
        let out = q.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap(); // evicts ts 1
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
        assert_eq!(q.queued_items(), 1);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"x")).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(out.put(ts(2), item(b"y")), Err(StmError::Closed));
        let (_, _, k) = inp.get().unwrap(); // drains the remaining item
        inp.consume(k).unwrap();
        assert_eq!(inp.get().unwrap_err(), StmError::Closed);
    }

    #[test]
    fn garbage_hook_fires_on_consume() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&events);
        let q = Queue::standalone(QueueAttrs::default());
        q.set_garbage_hook(move |e| e2.lock().push((e.ts, e.tag, e.len)));
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(4), item(b"abc").with_tag(9)).unwrap();
        let (_, _, k) = inp.get().unwrap();
        inp.consume(k).unwrap();
        assert_eq!(events.lock().as_slice(), &[(ts(4), 9, 3)]);
    }

    #[test]
    fn typed_round_trip() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put_typed(ts(1), &"payload".to_owned()).unwrap();
        let (_, s, k) = inp.get_typed::<String>().unwrap();
        assert_eq!(s, "payload");
        inp.consume(k).unwrap();
    }

    #[test]
    fn stats_track_everything() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"ab")).unwrap();
        let (_, _, k) = inp.get().unwrap();
        inp.requeue(k).unwrap();
        let (_, _, k) = inp.get().unwrap();
        inp.consume(k).unwrap();
        let s = q.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.requeues, 1);
        assert_eq!(s.consumes, 1);
        assert_eq!(s.reclaimed_items, 1);
        assert_eq!(s.reclaimed_bytes, 2);
    }

    #[test]
    fn debug_impl_is_informative() {
        let q = Queue::standalone(QueueAttrs::default());
        let s = format!("{q:?}");
        assert!(s.contains("Queue"));
        assert!(s.contains("queued"));
    }

    #[test]
    fn explicit_disconnect_wakes_blocked_getter_and_requeues() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let crashed = Arc::new(q.connect_input());
        out.put(ts(1), item(b"work")).unwrap();
        let (_, _, _ticket) = crashed.get().unwrap();
        // A second getter on the same (crashed) connection blocks on the
        // now-empty queue.
        let waiter = Arc::clone(&crashed);
        let h = thread::spawn(move || waiter.get());
        thread::sleep(Duration::from_millis(50));
        crashed.disconnect();
        assert_eq!(h.join().unwrap().unwrap_err(), StmError::NoSuchConnection);
        // The checked-out ticket went back to the head for survivors.
        let survivor = q.connect_input();
        let (_, recovered, k) = survivor.get().unwrap();
        assert_eq!(recovered.payload(), b"work");
        survivor.consume(k).unwrap();
    }
}
