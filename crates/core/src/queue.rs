//! FIFO queues: the work-sharing space-time memory container.
//!
//! Unlike a [`crate::Channel`], a queue hands each item to **exactly one**
//! getter, in FIFO order. The paper (§3.1, Figure 3) uses queues to exploit
//! data parallelism: a splitter thread partitions a frame into fragments
//! (all bearing the *same* timestamp, distinguished by tag), worker threads
//! each pull a fragment, and a joiner stitches results back together.
//! Duplicate timestamps are therefore explicitly allowed here.
//!
//! # Tickets
//!
//! `get` returns the item together with a [`QTicket`]. The getter calls
//! `consume(ticket)` once it is done (firing the queue's garbage hook) or
//! `requeue(ticket)` to put the item back at the head. If an input
//! connection disconnects with tickets outstanding — e.g. a worker crashes —
//! its in-flight items are automatically requeued, an extension supporting
//! the failure handling the paper lists as future work (§3.3).
//!
//! # Sharded in-flight tracking
//!
//! FIFO hand-off is inherently serial — every `get` must agree on the head —
//! but settling tickets is not. The in-flight table is partitioned into N
//! ticket-indexed shards (`ticket % N`), each behind its own lock, so a pool
//! of workers `consume`-ing finished fragments never serializes against the
//! spine lock that orders `put`/`get`. Lock order is spine → shard; the
//! consume path takes only its shard. Shard count comes from
//! [`QueueAttrs::shards`], defaulting to
//! [`crate::channel::DEFAULT_STM_SHARDS`].
//!
//! # Batching
//!
//! `put_many` enqueues a batch under one spine lock (unbounded queues) and
//! `dequeue_many` drains up to `max` items with one lock acquisition,
//! returning a ticket per item. Batches are per-item independent: there is
//! no transactional atomicity, but FIFO order is preserved — a batch
//! enqueues contiguously and dequeues in queue order.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_obs::{trace, MetricsRegistry, SpanKind};
use parking_lot::{Condvar, Mutex};

use crate::attr::{OverflowPolicy, QueueAttrs};
use crate::channel::{Deadline, DEFAULT_STM_SHARDS};
use crate::error::{StmError, StmResult};
use crate::handler::{GarbageEvent, HookSlot, PutEvent};
use crate::ids::{ConnId, QueueId, ResourceId};
use crate::item::{Item, StreamItem};
use crate::metrics::StmMetrics;
use crate::time::Timestamp;
use crate::waiter::WakerSet;

/// Receipt for an in-flight queue item; settle with `consume` or `requeue`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QTicket(pub u64);

impl fmt::Display for QTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ticket:{}", self.0)
    }
}

/// Monotonic counters describing a queue's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Successful puts.
    pub puts: u64,
    /// Successful gets.
    pub gets: u64,
    /// Tickets consumed.
    pub consumes: u64,
    /// Tickets requeued (explicitly or by disconnect recovery).
    pub requeues: u64,
    /// Items reclaimed (consumed or evicted).
    pub reclaimed_items: u64,
    /// Payload bytes reclaimed.
    pub reclaimed_bytes: u64,
}

#[derive(Default)]
struct AtomicStats {
    puts: AtomicU64,
    gets: AtomicU64,
    consumes: AtomicU64,
    requeues: AtomicU64,
    reclaimed_items: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> QueueStats {
        QueueStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            consumes: self.consumes.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            reclaimed_items: self.reclaimed_items.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
        }
    }
}

struct QEntry {
    ts: Timestamp,
    item: Item,
}

struct Inflight {
    ts: Timestamp,
    item: Item,
    conn: ConnId,
}

/// The serial heart of the queue: FIFO ordering and connection membership.
/// In-flight tickets live outside, in the sharded tables, so settling them
/// does not contend here.
struct QSpine {
    items: VecDeque<QEntry>,
    in_conns: HashSet<ConnId>,
    out_conns: HashSet<ConnId>,
    next_conn: u64,
    closed: bool,
}

/// A FIFO work-sharing queue.
///
/// # Examples
///
/// ```
/// use dstampede_core::{Queue, QueueAttrs, Item, Timestamp};
///
/// # fn main() -> Result<(), dstampede_core::StmError> {
/// let q = Queue::standalone(QueueAttrs::default());
/// let out = q.connect_output();
/// let inp = q.connect_input();
///
/// out.put(Timestamp::new(0), Item::from_vec(vec![1]).with_tag(0))?;
/// out.put(Timestamp::new(0), Item::from_vec(vec![2]).with_tag(1))?;
///
/// let (ts, frag, ticket) = inp.get()?;
/// assert_eq!(ts, Timestamp::new(0));
/// inp.consume(ticket)?;
/// # Ok(())
/// # }
/// ```
pub struct Queue {
    id: QueueId,
    name: Option<String>,
    attrs: QueueAttrs,
    spine: Mutex<QSpine>,
    /// Ticket-partitioned in-flight tables; shard = `ticket.0 % len`.
    /// Lock order: spine → shard. The consume fast path takes only the
    /// shard, so worker pools settling tickets never touch the spine.
    inflight: Box<[Mutex<HashMap<QTicket, Inflight>>]>,
    next_ticket: AtomicU64,
    items_cv: Condvar,
    space_cv: Condvar,
    /// Reactor-task counterparts of the condvars: parked wakers, woken at
    /// exactly the same sites the condvars notify.
    items_wakers: WakerSet,
    space_wakers: WakerSet,
    hooks: HookSlot,
    /// Fast-path flag: put paths clone the payload handle for put hooks
    /// only when one is installed, so unhooked queues pay nothing.
    put_hooked: AtomicBool,
    stats: AtomicStats,
    obs: StmMetrics,
    /// Precomputed `queue:OWNER/INDEX` span label — span recording on
    /// sampled items must not pay a format per edge.
    span_resource: String,
}

impl Queue {
    /// Creates a queue with an explicit system-wide id, reporting
    /// telemetry to the process-global metrics registry (registries call
    /// this; use [`Queue::standalone`] for local experimentation).
    #[must_use]
    pub fn new(id: QueueId, name: Option<String>, attrs: QueueAttrs) -> Arc<Self> {
        Queue::new_in(id, name, attrs, dstampede_obs::global())
    }

    /// Creates a queue reporting telemetry to `metrics` (used by
    /// address-space registries so each space's activity is attributed
    /// separately in cluster-wide snapshots).
    #[must_use]
    pub fn new_in(
        id: QueueId,
        name: Option<String>,
        attrs: QueueAttrs,
        metrics: &MetricsRegistry,
    ) -> Arc<Self> {
        let nshards = attrs.shards().unwrap_or(DEFAULT_STM_SHARDS).max(1) as usize;
        Arc::new(Queue {
            id,
            name,
            attrs,
            spine: Mutex::new(QSpine {
                items: VecDeque::new(),
                in_conns: HashSet::new(),
                out_conns: HashSet::new(),
                next_conn: 1,
                closed: false,
            }),
            inflight: (0..nshards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next_ticket: AtomicU64::new(1),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            items_wakers: WakerSet::new(),
            space_wakers: WakerSet::new(),
            hooks: HookSlot::new(),
            put_hooked: AtomicBool::new(false),
            stats: AtomicStats::default(),
            obs: StmMetrics::queue(metrics),
            span_resource: format!("queue:{}/{}", id.owner.0, id.index),
        })
    }

    /// Creates an unregistered queue for single-address-space use.
    #[must_use]
    pub fn standalone(attrs: QueueAttrs) -> Arc<Self> {
        Queue::new(
            QueueId {
                owner: crate::ids::AsId(0),
                index: 0,
            },
            None,
            attrs,
        )
    }

    /// The queue's system-wide id.
    #[must_use]
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// The queue's registered name, if any.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The creation-time attributes.
    #[must_use]
    pub fn attrs(&self) -> &QueueAttrs {
        &self.attrs
    }

    /// Number of in-flight ticket shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inflight.len()
    }

    /// A snapshot of activity counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.stats.snapshot()
    }

    /// Number of queued (not in-flight) items.
    #[must_use]
    pub fn queued_items(&self) -> usize {
        self.spine.lock().items.len()
    }

    /// Number of items handed out but not yet settled.
    #[must_use]
    pub fn inflight_items(&self) -> usize {
        self.inflight.iter().map(|s| s.lock().len()).sum()
    }

    /// Installs a garbage hook fired when items are consumed or evicted.
    pub fn set_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.update(|h| h.set_garbage(hook));
    }

    /// Installs an additional garbage hook alongside any existing ones.
    pub fn add_garbage_hook<F>(&self, hook: F)
    where
        F: Fn(&GarbageEvent) + Send + Sync + 'static,
    {
        self.hooks.update(|h| h.add_garbage(hook));
    }

    /// Installs a put hook fired for every accepted item, outside the
    /// spine lock (the runtime's replicator tails accepted puts this
    /// way). Same discipline as garbage hooks: fast, no re-entrant calls.
    pub fn add_put_hook<F>(&self, hook: F)
    where
        F: Fn(PutEvent) + Send + Sync + 'static,
    {
        self.hooks.update(|h| h.add_put(hook));
        self.put_hooked.store(true, Ordering::SeqCst);
    }

    /// Parks a reactor task until the next item arrival (or close).
    /// Register first, then retry a non-blocking get; spurious wakes are
    /// expected and benign.
    pub fn register_items_waker(&self, waker: &std::task::Waker) {
        self.items_wakers.register(waker);
    }

    /// Parks a reactor task until queue space frees up (or close).
    /// Register first, then retry a non-blocking put.
    pub fn register_space_waker(&self, waker: &std::task::Waker) {
        self.space_wakers.register(waker);
    }

    /// Opens an input (getter) connection; disconnecting requeues any
    /// outstanding tickets.
    #[must_use]
    pub fn connect_input(self: &Arc<Self>) -> QueueInputConn {
        let mut st = self.spine.lock();
        let id = ConnId(st.next_conn);
        st.next_conn += 1;
        st.in_conns.insert(id);
        drop(st);
        QueueInputConn {
            queue: Arc::clone(self),
            id,
        }
    }

    /// Opens an output (putter) connection.
    #[must_use]
    pub fn connect_output(self: &Arc<Self>) -> QueueOutputConn {
        let mut st = self.spine.lock();
        let id = ConnId(st.next_conn);
        st.next_conn += 1;
        st.out_conns.insert(id);
        drop(st);
        QueueOutputConn {
            queue: Arc::clone(self),
            id,
        }
    }

    /// Closes the queue: blocked operations wake with [`StmError::Closed`],
    /// puts fail, gets keep draining queued items.
    pub fn close(&self) {
        let mut st = self.spine.lock();
        st.closed = true;
        drop(st);
        self.items_cv.notify_all();
        self.items_wakers.wake_all();
        self.space_cv.notify_all();
        self.space_wakers.wake_all();
    }

    /// Whether [`Queue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.spine.lock().closed
    }

    fn shard_of(&self, ticket: QTicket) -> usize {
        (ticket.0 % self.inflight.len() as u64) as usize
    }

    // ---- internal operations ----

    pub(crate) fn do_put(
        &self,
        conn: ConnId,
        ts: Timestamp,
        item: Item,
        deadline: Deadline,
    ) -> StmResult<()> {
        let started = Instant::now();
        // As for channels: a sampled item without a context starts its
        // trace here; an ambient context (a surrogate running a remote
        // put) takes precedence.
        let mut item = item;
        if item.trace_context().is_none() {
            item.set_trace_context(
                trace::current().or_else(|| self.obs.tracer.begin_trace(ts.value())),
            );
        }
        let ctx = item.trace_context();
        let len = item.len();
        let hook_put = self
            .put_hooked
            .load(Ordering::Relaxed)
            .then(|| (item.tag(), item.payload_bytes()));
        let mut evicted: Option<QEntry> = None;
        {
            let mut st = self.spine.lock();
            if !st.out_conns.contains(&conn) {
                return Err(StmError::NoSuchConnection);
            }
            loop {
                if st.closed {
                    return Err(StmError::Closed);
                }
                let cap = self.attrs.capacity().map(|c| c as usize);
                let full = cap.is_some_and(|c| st.items.len() >= c);
                if !full {
                    break;
                }
                match self.attrs.overflow() {
                    OverflowPolicy::Reject => return Err(StmError::Full),
                    OverflowPolicy::DropOldest => {
                        evicted = st.items.pop_front();
                        break;
                    }
                    OverflowPolicy::Block => match deadline {
                        Deadline::Now => return Err(StmError::Full),
                        Deadline::Never => {
                            self.space_cv.wait(&mut st);
                        }
                        Deadline::At(instant) => {
                            if self.space_cv.wait_until(&mut st, instant).timed_out() {
                                return Err(StmError::Timeout);
                            }
                        }
                    },
                }
            }
            st.items.push_back(QEntry { ts, item });
            self.stats.puts.fetch_add(1, Ordering::Relaxed);
            self.obs.occupancy.inc();
            self.obs.record_put(started);
        }
        self.items_cv.notify_one();
        self.items_wakers.wake_all();
        if let Some((tag, payload)) = hook_put {
            let hooks = self.hooks.get();
            hooks.fire_put(PutEvent {
                resource: ResourceId::Queue(self.id),
                ts,
                tag,
                payload,
            });
        }
        if let Some(ctx) = ctx {
            self.obs.tracer.finish(
                ctx,
                SpanKind::Put,
                &self.span_resource,
                ts.value(),
                self.obs.tracer.now_us().saturating_sub(
                    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                ),
                &format!("bytes={len}"),
            );
        }
        if let Some(e) = evicted {
            self.obs.occupancy.dec();
            self.reclaim_one(e.ts, &e.item);
        }
        Ok(())
    }

    /// Enqueues a batch, reporting a result per entry (order preserved).
    ///
    /// Bounded queues fall back to per-item puts so each entry sees the
    /// overflow policy individually; the unbounded fast path takes the
    /// spine lock once for the whole batch.
    pub(crate) fn do_put_many(
        &self,
        conn: ConnId,
        entries: Vec<(Timestamp, Item)>,
        deadline: Deadline,
    ) -> Vec<StmResult<()>> {
        if self.attrs.capacity().is_some() {
            return entries
                .into_iter()
                .map(|(ts, item)| self.do_put(conn, ts, item, deadline))
                .collect();
        }
        let started = Instant::now();
        let mut entries = entries;
        for (ts, item) in &mut entries {
            if item.trace_context().is_none() {
                item.set_trace_context(
                    trace::current().or_else(|| self.obs.tracer.begin_trace(ts.value())),
                );
            }
        }
        let spans: Vec<_> = entries
            .iter()
            .map(|(ts, item)| (*ts, item.trace_context(), item.len()))
            .collect();
        let hook_puts = self.put_hooked.load(Ordering::Relaxed).then(|| {
            entries
                .iter()
                .map(|(ts, item)| (*ts, item.tag(), item.payload_bytes()))
                .collect::<Vec<_>>()
        });
        let n = entries.len();
        {
            let mut st = self.spine.lock();
            if !st.out_conns.contains(&conn) {
                return vec![Err(StmError::NoSuchConnection); n];
            }
            if st.closed {
                return vec![Err(StmError::Closed); n];
            }
            for (ts, item) in entries {
                st.items.push_back(QEntry { ts, item });
            }
            self.stats.puts.fetch_add(n as u64, Ordering::Relaxed);
            self.obs.occupancy.add(i64::try_from(n).unwrap_or(i64::MAX));
        }
        if n > 0 {
            self.obs.record_put(started);
            // A batch can satisfy several blocked getters at once.
            self.items_cv.notify_all();
            self.items_wakers.wake_all();
            if let Some(hook_puts) = hook_puts {
                let hooks = self.hooks.get();
                for (ts, tag, payload) in hook_puts {
                    hooks.fire_put(PutEvent {
                        resource: ResourceId::Queue(self.id),
                        ts,
                        tag,
                        payload,
                    });
                }
            }
        }
        for (ts, ctx, len) in spans {
            if let Some(ctx) = ctx {
                self.obs.tracer.finish(
                    ctx,
                    SpanKind::Put,
                    &self.span_resource,
                    ts.value(),
                    self.obs.tracer.now_us().saturating_sub(
                        u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                    ),
                    &format!("bytes={len}"),
                );
            }
        }
        vec![Ok(()); n]
    }

    /// Pops one entry and checks it out to `conn`, inserting the in-flight
    /// record while the spine is still held so a concurrent disconnect's
    /// orphan scan cannot miss it.
    fn checkout(&self, st: &mut QSpine, conn: ConnId) -> Option<(Timestamp, Item, QTicket)> {
        let entry = st.items.pop_front()?;
        let ticket = QTicket(self.next_ticket.fetch_add(1, Ordering::Relaxed));
        self.inflight[self.shard_of(ticket)].lock().insert(
            ticket,
            Inflight {
                ts: entry.ts,
                item: entry.item.clone(),
                conn,
            },
        );
        Some((entry.ts, entry.item, ticket))
    }

    pub(crate) fn do_get(
        &self,
        conn: ConnId,
        deadline: Deadline,
    ) -> StmResult<(Timestamp, Item, QTicket)> {
        let started = Instant::now();
        let mut st = self.spine.lock();
        loop {
            if !st.in_conns.contains(&conn) {
                return Err(StmError::NoSuchConnection);
            }
            if let Some((ts, item, ticket)) = self.checkout(&mut st, conn) {
                self.stats.gets.fetch_add(1, Ordering::Relaxed);
                self.obs.occupancy.dec();
                self.obs.record_get(started);
                drop(st);
                self.space_cv.notify_one();
                self.space_wakers.wake_all();
                if let Some(ctx) = item.trace_context() {
                    self.obs.tracer.instant(
                        ctx,
                        SpanKind::Get,
                        &self.span_resource,
                        ts.value(),
                        "",
                    );
                }
                return Ok((ts, item, ticket));
            }
            if st.closed {
                return Err(StmError::Closed);
            }
            match deadline {
                Deadline::Now => return Err(StmError::Absent),
                Deadline::Never => {
                    self.items_cv.wait(&mut st);
                }
                Deadline::At(instant) => {
                    if self.items_cv.wait_until(&mut st, instant).timed_out() {
                        return Err(StmError::Timeout);
                    }
                }
            }
        }
    }

    /// Drains up to `max` items with one spine acquisition, blocking per
    /// `deadline` until at least one item is available.
    pub(crate) fn do_dequeue_many(
        &self,
        conn: ConnId,
        max: usize,
        deadline: Deadline,
    ) -> StmResult<Vec<(Timestamp, Item, QTicket)>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let mut st = self.spine.lock();
        loop {
            if !st.in_conns.contains(&conn) {
                return Err(StmError::NoSuchConnection);
            }
            if !st.items.is_empty() {
                let mut got = Vec::with_capacity(max.min(st.items.len()));
                while got.len() < max {
                    match self.checkout(&mut st, conn) {
                        Some(entry) => got.push(entry),
                        None => break,
                    }
                }
                let k = got.len();
                self.stats.gets.fetch_add(k as u64, Ordering::Relaxed);
                self.obs
                    .occupancy
                    .add(-i64::try_from(k).unwrap_or(i64::MAX));
                self.obs.record_get(started);
                drop(st);
                // k slots freed: wake every blocked producer that can fit.
                self.space_cv.notify_all();
                self.space_wakers.wake_all();
                for (ts, item, _) in &got {
                    if let Some(ctx) = item.trace_context() {
                        self.obs.tracer.instant(
                            ctx,
                            SpanKind::Get,
                            &self.span_resource,
                            ts.value(),
                            "",
                        );
                    }
                }
                return Ok(got);
            }
            if st.closed {
                return Err(StmError::Closed);
            }
            match deadline {
                Deadline::Now => return Err(StmError::Absent),
                Deadline::Never => {
                    self.items_cv.wait(&mut st);
                }
                Deadline::At(instant) => {
                    if self.items_cv.wait_until(&mut st, instant).timed_out() {
                        return Err(StmError::Timeout);
                    }
                }
            }
        }
    }

    pub(crate) fn do_consume(&self, conn: ConnId, ticket: QTicket) -> StmResult<()> {
        let started = Instant::now();
        let entry;
        {
            // Shard only: consuming never contends with put/get on the
            // spine, which is what lets a worker pool settle fragments in
            // parallel with the splitter enqueueing the next frame.
            let mut shard = self.inflight[self.shard_of(ticket)].lock();
            match shard.get(&ticket) {
                Some(inf) if inf.conn == conn => {}
                Some(_) => return Err(StmError::BadMode),
                None => return Err(StmError::Absent),
            }
            entry = shard.remove(&ticket).expect("checked above");
            self.stats.consumes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_consume(started);
        }
        if let Some(ctx) = entry.item.trace_context() {
            self.obs.tracer.instant(
                ctx,
                SpanKind::Consume,
                &self.span_resource,
                entry.ts.value(),
                "",
            );
        }
        self.reclaim_one(entry.ts, &entry.item);
        Ok(())
    }

    pub(crate) fn do_requeue(&self, conn: ConnId, ticket: QTicket) -> StmResult<()> {
        {
            // Spine → shard: the item goes back to the head, so the spine
            // must be held; the ownership check lives in the shard.
            let mut st = self.spine.lock();
            let mut shard = self.inflight[self.shard_of(ticket)].lock();
            match shard.get(&ticket) {
                Some(inf) if inf.conn == conn => {}
                Some(_) => return Err(StmError::BadMode),
                None => return Err(StmError::Absent),
            }
            let inf = shard.remove(&ticket).expect("checked above");
            st.items.push_front(QEntry {
                ts: inf.ts,
                item: inf.item,
            });
            self.stats.requeues.fetch_add(1, Ordering::Relaxed);
            self.obs.occupancy.inc();
        }
        // notify_all, not notify_one: with several getters parked, the
        // single notified waiter may be on a since-disconnected connection
        // that exits with NoSuchConnection without re-signalling, leaving
        // the requeued item stranded until the next enqueue.
        self.items_cv.notify_all();
        self.items_wakers.wake_all();
        Ok(())
    }

    pub(crate) fn do_disconnect_input(&self, conn: ConnId) {
        let mut recovered = 0u64;
        {
            let mut st = self.spine.lock();
            if !st.in_conns.remove(&conn) {
                return;
            }
            // Spine → shard order; holding the spine across the scan makes
            // it atomic with respect to checkout, so a ticket is either
            // seen here or already requeued/settled, never lost.
            for shard in &self.inflight {
                let mut shard = shard.lock();
                let orphaned: Vec<QTicket> = shard
                    .iter()
                    .filter(|(_, inf)| inf.conn == conn)
                    .map(|(&t, _)| t)
                    .collect();
                for t in orphaned {
                    let inf = shard.remove(&t).expect("just listed");
                    st.items.push_front(QEntry {
                        ts: inf.ts,
                        item: inf.item,
                    });
                    recovered += 1;
                }
            }
            self.stats.requeues.fetch_add(recovered, Ordering::Relaxed);
            self.obs
                .occupancy
                .add(i64::try_from(recovered).unwrap_or(i64::MAX));
        }
        // Always wake blocked getters: those waiting on the departed
        // connection must observe NoSuchConnection, and if tickets were
        // requeued other getters can now claim them.
        self.items_cv.notify_all();
        self.items_wakers.wake_all();
    }

    pub(crate) fn do_disconnect_output(&self, conn: ConnId) {
        let mut st = self.spine.lock();
        st.out_conns.remove(&conn);
    }

    fn reclaim_one(&self, ts: Timestamp, item: &Item) {
        self.stats.reclaimed_items.fetch_add(1, Ordering::Relaxed);
        self.stats
            .reclaimed_bytes
            .fetch_add(item.len() as u64, Ordering::Relaxed);
        self.obs.record_reclaim(1, item.len() as u64);
        self.space_cv.notify_one();
        self.space_wakers.wake_all();
        let hooks = self.hooks.get();
        hooks.fire_garbage(&GarbageEvent {
            resource: ResourceId::Queue(self.id),
            ts,
            tag: item.tag(),
            len: item.len() as u32,
        });
    }
}

impl fmt::Debug for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (queued, closed) = {
            let st = self.spine.lock();
            (st.items.len(), st.closed)
        };
        f.debug_struct("Queue")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("queued", &queued)
            .field("inflight", &self.inflight_items())
            .field("shards", &self.inflight.len())
            .field("closed", &closed)
            .finish()
    }
}

/// An input (getter) connection to a [`Queue`]; disconnects on drop,
/// requeueing any unsettled tickets.
pub struct QueueInputConn {
    queue: Arc<Queue>,
    id: ConnId,
}

impl QueueInputConn {
    /// This connection's id.
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The queue this connection is attached to.
    #[must_use]
    pub fn queue(&self) -> &Arc<Queue> {
        &self.queue
    }

    /// Blocking get of the next item.
    ///
    /// # Errors
    ///
    /// [`StmError::Closed`] once the queue is closed and drained.
    pub fn get(&self) -> StmResult<(Timestamp, Item, QTicket)> {
        self.queue.do_get(self.id, Deadline::Never)
    }

    /// Non-blocking get.
    ///
    /// # Errors
    ///
    /// [`StmError::Absent`] when the queue is empty.
    pub fn try_get(&self) -> StmResult<(Timestamp, Item, QTicket)> {
        self.queue.do_get(self.id, Deadline::Now)
    }

    /// Parks a reactor task until the next item arrival on this queue.
    /// Register first, then retry [`QueueInputConn::try_get`].
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.queue.register_items_waker(waker);
    }

    /// Get with a timeout.
    ///
    /// # Errors
    ///
    /// [`StmError::Timeout`] if nothing arrives in time.
    pub fn get_timeout(&self, timeout: Duration) -> StmResult<(Timestamp, Item, QTicket)> {
        self.queue.do_get(self.id, Deadline::after(timeout))
    }

    /// Blocking batch get: waits for at least one item, then drains up to
    /// `max` in FIFO order, each with its own ticket.
    ///
    /// # Errors
    ///
    /// As [`QueueInputConn::get`].
    pub fn dequeue_many(&self, max: usize) -> StmResult<Vec<(Timestamp, Item, QTicket)>> {
        self.queue.do_dequeue_many(self.id, max, Deadline::Never)
    }

    /// Non-blocking batch get.
    ///
    /// # Errors
    ///
    /// [`StmError::Absent`] when the queue is empty.
    pub fn try_dequeue_many(&self, max: usize) -> StmResult<Vec<(Timestamp, Item, QTicket)>> {
        self.queue.do_dequeue_many(self.id, max, Deadline::Now)
    }

    /// Typed blocking get via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`QueueInputConn::get`], plus decoding errors from `T`.
    pub fn get_typed<T: StreamItem>(&self) -> StmResult<(Timestamp, T, QTicket)> {
        let (ts, item, ticket) = self.get()?;
        Ok((ts, item.decode::<T>()?, ticket))
    }

    /// Settles a ticket: the item is done and becomes garbage.
    ///
    /// # Errors
    ///
    /// [`StmError::Absent`] for unknown/settled tickets,
    /// [`StmError::BadMode`] for a ticket belonging to another connection.
    pub fn consume(&self, ticket: QTicket) -> StmResult<()> {
        self.queue.do_consume(self.id, ticket)
    }

    /// Puts an unfinished item back at the head of the queue.
    ///
    /// # Errors
    ///
    /// As [`QueueInputConn::consume`].
    pub fn requeue(&self, ticket: QTicket) -> StmResult<()> {
        self.queue.do_requeue(self.id, ticket)
    }

    /// Tears the connection down now rather than waiting for drop: its
    /// in-flight tickets are pushed back to the head of the queue and
    /// any getter blocked on it wakes with
    /// [`StmError::NoSuchConnection`]. Idempotent; the eventual drop
    /// becomes a no-op. Used by failure recovery to orphan connections
    /// still referenced by blocked workers.
    pub fn disconnect(&self) {
        self.queue.do_disconnect_input(self.id);
    }
}

impl fmt::Debug for QueueInputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueInputConn")
            .field("queue", &self.queue.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for QueueInputConn {
    fn drop(&mut self) {
        self.queue.do_disconnect_input(self.id);
    }
}

/// An output (putter) connection to a [`Queue`]; disconnects on drop.
pub struct QueueOutputConn {
    queue: Arc<Queue>,
    id: ConnId,
}

impl QueueOutputConn {
    /// This connection's id.
    #[must_use]
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// The queue this connection is attached to.
    #[must_use]
    pub fn queue(&self) -> &Arc<Queue> {
        &self.queue
    }

    /// Blocking put (blocks only when bounded with
    /// [`OverflowPolicy::Block`] and full).
    ///
    /// # Errors
    ///
    /// [`StmError::Full`] under [`OverflowPolicy::Reject`],
    /// [`StmError::Closed`] after close.
    pub fn put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.queue.do_put(self.id, ts, item, Deadline::Never)
    }

    /// Non-blocking put.
    ///
    /// # Errors
    ///
    /// As [`QueueOutputConn::put`], with [`StmError::Full`] instead of
    /// blocking.
    pub fn try_put(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.queue.do_put(self.id, ts, item, Deadline::Now)
    }

    /// Parks a reactor task until queue space frees up (bounded queues
    /// under [`OverflowPolicy::Block`]). Register first, then retry
    /// [`QueueOutputConn::try_put`].
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.queue.register_space_waker(waker);
    }

    /// Put with a timeout on the capacity wait.
    ///
    /// # Errors
    ///
    /// As [`QueueOutputConn::put`], plus [`StmError::Timeout`].
    pub fn put_timeout(&self, ts: Timestamp, item: Item, timeout: Duration) -> StmResult<()> {
        self.queue
            .do_put(self.id, ts, item, Deadline::after(timeout))
    }

    /// Enqueues a batch, returning one result per entry in order.
    ///
    /// The batch is not atomic: each entry succeeds or fails on its own,
    /// but successful entries land contiguously in FIFO order.
    #[must_use = "each entry reports its own success or failure"]
    pub fn put_many(&self, entries: Vec<(Timestamp, Item)>) -> Vec<StmResult<()>> {
        self.queue.do_put_many(self.id, entries, Deadline::Never)
    }

    /// Non-blocking batch put: entries that would block fail with
    /// [`StmError::Full`].
    #[must_use = "each entry reports its own success or failure"]
    pub fn try_put_many(&self, entries: Vec<(Timestamp, Item)>) -> Vec<StmResult<()>> {
        self.queue.do_put_many(self.id, entries, Deadline::Now)
    }

    /// Typed put via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`QueueOutputConn::put`].
    pub fn put_typed<T: StreamItem>(&self, ts: Timestamp, value: &T) -> StmResult<()> {
        self.put(ts, value.to_item())
    }

    /// Tears the connection down now rather than waiting for drop.
    /// Idempotent; used by failure recovery.
    pub fn disconnect(&self) {
        self.queue.do_disconnect_output(self.id);
    }
}

impl fmt::Debug for QueueOutputConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueOutputConn")
            .field("queue", &self.queue.id())
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for QueueOutputConn {
    fn drop(&mut self) {
        self.queue.do_disconnect_output(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn ts(v: i64) -> Timestamp {
        Timestamp::new(v)
    }

    fn item(bytes: &[u8]) -> Item {
        Item::copy_from_slice(bytes)
    }

    #[test]
    fn fifo_order() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        for v in 1..=3u8 {
            let (_, it, t) = inp.get().unwrap();
            assert_eq!(it.payload(), &[v]);
            inp.consume(t).unwrap();
        }
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(7), item(b"frag0").with_tag(0)).unwrap();
        out.put(ts(7), item(b"frag1").with_tag(1)).unwrap();
        let (t0, i0, k0) = inp.get().unwrap();
        let (t1, i1, k1) = inp.get().unwrap();
        assert_eq!((t0, t1), (ts(7), ts(7)));
        assert_eq!(i0.tag(), 0);
        assert_eq!(i1.tag(), 1);
        inp.consume(k0).unwrap();
        inp.consume(k1).unwrap();
    }

    #[test]
    fn each_item_delivered_exactly_once() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        for v in 0..100 {
            out.put(ts(v), item(&(v as u32).to_be_bytes())).unwrap();
        }
        q.close();
        let mut handles = Vec::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            handles.push(thread::spawn(move || {
                let inp = q.connect_input();
                loop {
                    match inp.get() {
                        Ok((_, it, ticket)) => {
                            let v = u32::from_be_bytes(it.payload().try_into().unwrap());
                            seen.lock().push(v);
                            inp.consume(ticket).unwrap();
                        }
                        Err(StmError::Closed) => break,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = seen.lock().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn requeue_puts_item_back_at_head() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap();
        let (_, it, ticket) = inp.get().unwrap();
        assert_eq!(it.payload(), b"a");
        inp.requeue(ticket).unwrap();
        let (_, it2, t2) = inp.get().unwrap();
        assert_eq!(it2.payload(), b"a"); // back at the head
        inp.consume(t2).unwrap();
    }

    #[test]
    fn ticket_misuse_errors() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let a = q.connect_input();
        let b = q.connect_input();
        out.put(ts(1), item(b"x")).unwrap();
        let (_, _, ticket) = a.get().unwrap();
        // Another connection cannot settle a's ticket.
        assert_eq!(b.consume(ticket), Err(StmError::BadMode));
        assert_eq!(b.requeue(ticket), Err(StmError::BadMode));
        a.consume(ticket).unwrap();
        // Double settle.
        assert_eq!(a.consume(ticket), Err(StmError::Absent));
        assert_eq!(a.requeue(ticket), Err(StmError::Absent));
    }

    #[test]
    fn disconnect_requeues_inflight_items() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        out.put(ts(1), item(b"work")).unwrap();
        let worker = q.connect_input();
        let (_, _, _ticket) = worker.get().unwrap();
        assert_eq!(q.inflight_items(), 1);
        drop(worker); // crash: ticket never settled
        assert_eq!(q.inflight_items(), 0);
        assert_eq!(q.queued_items(), 1);
        let rescuer = q.connect_input();
        let (_, it, t) = rescuer.try_get().unwrap();
        assert_eq!(it.payload(), b"work");
        rescuer.consume(t).unwrap();
        assert_eq!(q.stats().requeues, 1);
    }

    #[test]
    fn blocking_get_wakes_on_put() {
        let q = Queue::standalone(QueueAttrs::default());
        let inp = q.connect_input();
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let out = q2.connect_output();
            out.put(ts(9), item(b"late")).unwrap();
        });
        let (t, it, k) = inp.get().unwrap();
        assert_eq!(t, ts(9));
        assert_eq!(it.payload(), b"late");
        inp.consume(k).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn get_timeout_expires() {
        let q = Queue::standalone(QueueAttrs::default());
        let inp = q.connect_input();
        assert_eq!(
            inp.get_timeout(Duration::from_millis(20)).unwrap_err(),
            StmError::Timeout
        );
    }

    #[test]
    fn bounded_block_paces_producer() {
        let q = Queue::standalone(QueueAttrs::builder().capacity(1).build());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.try_put(ts(2), item(b"b")), Err(StmError::Full));
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let (_, _, k) = inp.get().unwrap();
            inp.consume(k).unwrap();
            inp
        });
        out.put(ts(2), item(b"b")).unwrap(); // unblocks when getter drains
        drop(h.join().unwrap());
    }

    #[test]
    fn bounded_reject() {
        let q = Queue::standalone(
            QueueAttrs::builder()
                .capacity(1)
                .overflow(OverflowPolicy::Reject)
                .build(),
        );
        let out = q.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        assert_eq!(out.put(ts(2), item(b"b")), Err(StmError::Full));
    }

    #[test]
    fn bounded_drop_oldest_fires_hook() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&dropped);
        let q = Queue::standalone(
            QueueAttrs::builder()
                .capacity(1)
                .overflow(OverflowPolicy::DropOldest)
                .build(),
        );
        q.set_garbage_hook(move |e| {
            assert_eq!(e.ts, ts(1));
            d2.fetch_add(1, Ordering::SeqCst);
        });
        let out = q.connect_output();
        out.put(ts(1), item(b"a")).unwrap();
        out.put(ts(2), item(b"b")).unwrap(); // evicts ts 1
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
        assert_eq!(q.queued_items(), 1);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"x")).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(out.put(ts(2), item(b"y")), Err(StmError::Closed));
        let (_, _, k) = inp.get().unwrap(); // drains the remaining item
        inp.consume(k).unwrap();
        assert_eq!(inp.get().unwrap_err(), StmError::Closed);
    }

    #[test]
    fn garbage_hook_fires_on_consume() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&events);
        let q = Queue::standalone(QueueAttrs::default());
        q.set_garbage_hook(move |e| e2.lock().push((e.ts, e.tag, e.len)));
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(4), item(b"abc").with_tag(9)).unwrap();
        let (_, _, k) = inp.get().unwrap();
        inp.consume(k).unwrap();
        assert_eq!(events.lock().as_slice(), &[(ts(4), 9, 3)]);
    }

    #[test]
    fn typed_round_trip() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put_typed(ts(1), &"payload".to_owned()).unwrap();
        let (_, s, k) = inp.get_typed::<String>().unwrap();
        assert_eq!(s, "payload");
        inp.consume(k).unwrap();
    }

    #[test]
    fn stats_track_everything() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        out.put(ts(1), item(b"ab")).unwrap();
        let (_, _, k) = inp.get().unwrap();
        inp.requeue(k).unwrap();
        let (_, _, k) = inp.get().unwrap();
        inp.consume(k).unwrap();
        let s = q.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.requeues, 1);
        assert_eq!(s.consumes, 1);
        assert_eq!(s.reclaimed_items, 1);
        assert_eq!(s.reclaimed_bytes, 2);
    }

    #[test]
    fn debug_impl_is_informative() {
        let q = Queue::standalone(QueueAttrs::default());
        let s = format!("{q:?}");
        assert!(s.contains("Queue"));
        assert!(s.contains("queued"));
    }

    #[test]
    fn explicit_disconnect_wakes_blocked_getter_and_requeues() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let crashed = Arc::new(q.connect_input());
        out.put(ts(1), item(b"work")).unwrap();
        let (_, _, _ticket) = crashed.get().unwrap();
        // A second getter on the same (crashed) connection blocks on the
        // now-empty queue.
        let waiter = Arc::clone(&crashed);
        let h = thread::spawn(move || waiter.get());
        thread::sleep(Duration::from_millis(50));
        crashed.disconnect();
        assert_eq!(h.join().unwrap().unwrap_err(), StmError::NoSuchConnection);
        // The checked-out ticket went back to the head for survivors.
        let survivor = q.connect_input();
        let (_, recovered, k) = survivor.get().unwrap();
        assert_eq!(recovered.payload(), b"work");
        survivor.consume(k).unwrap();
    }

    // ---- sharding & batching ------------------------------------------

    #[test]
    fn shard_count_follows_attrs() {
        let q = Queue::standalone(QueueAttrs::default());
        assert_eq!(q.shard_count(), DEFAULT_STM_SHARDS as usize);
        let q = Queue::standalone(QueueAttrs::builder().shards(3).build());
        assert_eq!(q.shard_count(), 3);
        let q = Queue::standalone(QueueAttrs::builder().shards(0).build());
        assert_eq!(q.shard_count(), 1);
    }

    #[test]
    fn single_shard_queue_behaves_identically() {
        let q = Queue::standalone(QueueAttrs::builder().shards(1).build());
        let out = q.connect_output();
        let inp = q.connect_input();
        for v in 1..=3 {
            out.put(ts(v), item(&[v as u8])).unwrap();
        }
        let (_, _, k) = inp.get().unwrap();
        inp.requeue(k).unwrap();
        for v in 1..=3u8 {
            let (_, it, k) = inp.get().unwrap();
            assert_eq!(it.payload(), &[v]);
            inp.consume(k).unwrap();
        }
        assert_eq!(q.stats().reclaimed_items, 3);
    }

    #[test]
    fn put_many_dequeue_many_round_trip() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        let inp = q.connect_input();
        let results = out.put_many((1..=32).map(|v| (ts(v), item(&[v as u8]))).collect());
        assert_eq!(results.len(), 32);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(q.queued_items(), 32);
        assert_eq!(q.stats().puts, 32);
        // Drain in two batches; FIFO order must hold across them.
        let first = inp.dequeue_many(20).unwrap();
        let second = inp.dequeue_many(20).unwrap();
        assert_eq!(first.len(), 20);
        assert_eq!(second.len(), 12);
        for (expected, (_, it, k)) in (1u8..).zip(first.into_iter().chain(second)) {
            assert_eq!(it.payload(), &[expected]);
            inp.consume(k).unwrap();
        }
        assert_eq!(q.stats().gets, 32);
        assert_eq!(q.stats().reclaimed_items, 32);
    }

    #[test]
    fn try_dequeue_many_on_empty_is_absent() {
        let q = Queue::standalone(QueueAttrs::default());
        let inp = q.connect_input();
        assert_eq!(inp.try_dequeue_many(4).unwrap_err(), StmError::Absent);
        assert!(inp.dequeue_many(0).unwrap().is_empty());
    }

    #[test]
    fn put_many_on_bounded_queue_applies_overflow_per_item() {
        let q = Queue::standalone(
            QueueAttrs::builder()
                .capacity(2)
                .overflow(OverflowPolicy::Reject)
                .build(),
        );
        let out = q.connect_output();
        let results = out.put_many(vec![
            (ts(1), item(b"a")),
            (ts(2), item(b"b")),
            (ts(3), item(b"c")),
        ]);
        assert_eq!(results[0], Ok(()));
        assert_eq!(results[1], Ok(()));
        assert_eq!(results[2], Err(StmError::Full));
        assert_eq!(q.queued_items(), 2);
    }

    #[test]
    fn put_many_wakes_all_blocked_getters() {
        let q = Queue::standalone(QueueAttrs::default());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                let inp = q.connect_input();
                let (_, _, k) = inp.get().unwrap();
                inp.consume(k).unwrap();
            }));
        }
        thread::sleep(Duration::from_millis(30));
        let out = q.connect_output();
        let rs = out.put_many((1..=3).map(|v| (ts(v), item(&[v as u8]))).collect());
        assert!(rs.iter().all(Result::is_ok));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.stats().consumes, 3);
    }

    #[test]
    fn dequeued_batch_tickets_settle_independently() {
        let q = Queue::standalone(QueueAttrs::builder().shards(2).build());
        let out = q.connect_output();
        let inp = q.connect_input();
        let rs = out.put_many((1..=4).map(|v| (ts(v), item(&[v as u8]))).collect());
        assert!(rs.iter().all(Result::is_ok));
        let got = inp.dequeue_many(4).unwrap();
        assert_eq!(q.inflight_items(), 4);
        // Requeue the middle two, consume the rest.
        inp.requeue(got[1].2).unwrap();
        inp.requeue(got[2].2).unwrap();
        inp.consume(got[0].2).unwrap();
        inp.consume(got[3].2).unwrap();
        assert_eq!(q.inflight_items(), 0);
        assert_eq!(q.queued_items(), 2);
        assert_eq!(q.stats().requeues, 2);
    }

    #[test]
    fn requeue_wakes_every_parked_getter() {
        // Regression: requeue used notify_one, and a notification can land
        // on a timed waiter whose deadline just expired — the token is
        // consumed but the waiter reports Timeout without claiming, so the
        // requeued item sat parked until the next enqueue. With notify_all
        // some live waiter always claims it.
        for i in 0..25u64 {
            let q = Queue::standalone(QueueAttrs::default());
            let out = q.connect_output();
            let holder = q.connect_input();
            out.put(ts(1), item(b"work")).unwrap();
            let (_, _, ticket) = holder.get().unwrap();

            let short = q.connect_input();
            let long = q.connect_input();
            let racer = thread::spawn(move || short.get_timeout(Duration::from_millis(20)));
            let backstop = thread::spawn(move || long.get_timeout(Duration::from_secs(5)));
            // Sweep the requeue across the short waiter's deadline so some
            // iterations land the notification in its expiry window.
            thread::sleep(Duration::from_millis(16 + i % 8));
            holder.requeue(ticket).unwrap();
            let a = racer.join().unwrap();
            let b = backstop.join().unwrap();
            assert!(
                a.is_ok() || b.is_ok(),
                "requeued item stranded: both parked getters timed out (iter {i})"
            );
        }
    }

    #[test]
    fn concurrent_consumes_across_shards() {
        let q = Queue::standalone(QueueAttrs::default());
        let out = q.connect_output();
        for v in 0..200 {
            out.put(ts(v), item(&(v as u32).to_be_bytes())).unwrap();
        }
        let inp = Arc::new(q.connect_input());
        let tickets: Vec<QTicket> = inp
            .dequeue_many(200)
            .unwrap()
            .into_iter()
            .map(|(_, _, k)| k)
            .collect();
        let mut handles = Vec::new();
        for chunk in tickets.chunks(50) {
            let inp = Arc::clone(&inp);
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                for k in chunk {
                    inp.consume(k).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.inflight_items(), 0);
        assert_eq!(q.stats().consumes, 200);
        assert_eq!(q.stats().reclaimed_items, 200);
    }
}
