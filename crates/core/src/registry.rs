//! Per-address-space registry of channels and queues.
//!
//! Every address space owns a registry that allocates system-wide unique
//! ids ([`ChanId`]/[`QueueId`] embed the owning [`AsId`]) and resolves ids
//! back to containers. The distributed runtime routes operations on remote
//! ids to the owner's registry.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dstampede_obs::MetricsRegistry;
use parking_lot::RwLock;

use crate::attr::{ChannelAttrs, QueueAttrs};
use crate::channel::Channel;
use crate::error::{StmError, StmResult};
use crate::ids::{AsId, ChanId, QueueId, ResourceId};
use crate::queue::Queue;

/// Registry of the containers owned by one address space.
///
/// # Examples
///
/// ```
/// use dstampede_core::{StmRegistry, ChannelAttrs, AsId};
///
/// # fn main() -> Result<(), dstampede_core::StmError> {
/// let reg = StmRegistry::new(AsId(1));
/// let chan = reg.create_channel(Some("video0".into()), ChannelAttrs::default());
/// assert_eq!(chan.id().owner, AsId(1));
/// assert_eq!(reg.channel(chan.id())?.id(), chan.id());
/// # Ok(())
/// # }
/// ```
pub struct StmRegistry {
    as_id: AsId,
    channels: RwLock<HashMap<u32, Arc<Channel>>>,
    queues: RwLock<HashMap<u32, Arc<Queue>>>,
    next_chan: AtomicU32,
    next_queue: AtomicU32,
    /// Shard count filled into attrs that leave it unset (0 = container
    /// defaults). Attrs arriving over the wire never carry a shard count,
    /// so this is how an address space tunes remote-created containers.
    default_shards: AtomicU32,
    metrics: Arc<MetricsRegistry>,
}

impl StmRegistry {
    /// Creates an empty registry for the given address space, reporting
    /// telemetry to the process-global metrics registry.
    #[must_use]
    pub fn new(as_id: AsId) -> Arc<Self> {
        StmRegistry::with_metrics(as_id, Arc::clone(dstampede_obs::global()))
    }

    /// Creates an empty registry whose containers report telemetry to
    /// `metrics` (the distributed runtime gives each address space its
    /// own so cluster snapshots attribute activity per space).
    #[must_use]
    pub fn with_metrics(as_id: AsId, metrics: Arc<MetricsRegistry>) -> Arc<Self> {
        Arc::new(StmRegistry {
            as_id,
            channels: RwLock::new(HashMap::new()),
            queues: RwLock::new(HashMap::new()),
            next_chan: AtomicU32::new(1),
            next_queue: AtomicU32::new(1),
            default_shards: AtomicU32::new(0),
            metrics,
        })
    }

    /// Sets the shard count applied to future containers whose attrs do
    /// not pin one (`0` restores the built-in default).
    pub fn set_default_shards(&self, n: u32) {
        self.default_shards.store(n, Ordering::Relaxed);
    }

    fn effective_shards(&self, requested: Option<u32>) -> Option<u32> {
        requested.or({
            match self.default_shards.load(Ordering::Relaxed) {
                0 => None,
                n => Some(n),
            }
        })
    }

    /// The owning address space.
    #[must_use]
    pub fn as_id(&self) -> AsId {
        self.as_id
    }

    /// The metrics registry this space's containers report to.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Creates and registers a channel owned by this address space.
    pub fn create_channel(&self, name: Option<String>, attrs: ChannelAttrs) -> Arc<Channel> {
        let index = self.next_chan.fetch_add(1, Ordering::Relaxed);
        let id = ChanId {
            owner: self.as_id,
            index,
        };
        let mut attrs = attrs;
        if let Some(n) = self.effective_shards(attrs.shards()) {
            attrs = attrs.with_shards(n);
        }
        let chan = Channel::new_in(id, name, attrs, &self.metrics);
        self.channels.write().insert(index, Arc::clone(&chan));
        chan
    }

    /// Creates and registers a queue owned by this address space.
    pub fn create_queue(&self, name: Option<String>, attrs: QueueAttrs) -> Arc<Queue> {
        let index = self.next_queue.fetch_add(1, Ordering::Relaxed);
        let id = QueueId {
            owner: self.as_id,
            index,
        };
        let mut attrs = attrs;
        if let Some(n) = self.effective_shards(attrs.shards()) {
            attrs = attrs.with_shards(n);
        }
        let queue = Queue::new_in(id, name, attrs, &self.metrics);
        self.queues.write().insert(index, Arc::clone(&queue));
        queue
    }

    /// Resolves a channel id owned by this address space.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] if the id belongs to a different address
    /// space or was never created here (or has been removed).
    pub fn channel(&self, id: ChanId) -> StmResult<Arc<Channel>> {
        if id.owner != self.as_id {
            return Err(StmError::NoSuchResource);
        }
        self.channels
            .read()
            .get(&id.index)
            .cloned()
            .ok_or(StmError::NoSuchResource)
    }

    /// Resolves a queue id owned by this address space.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] as for [`StmRegistry::channel`].
    pub fn queue(&self, id: QueueId) -> StmResult<Arc<Queue>> {
        if id.owner != self.as_id {
            return Err(StmError::NoSuchResource);
        }
        self.queues
            .read()
            .get(&id.index)
            .cloned()
            .ok_or(StmError::NoSuchResource)
    }

    /// Removes a channel from the registry, closing it.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] if not present.
    pub fn remove_channel(&self, id: ChanId) -> StmResult<()> {
        if id.owner != self.as_id {
            return Err(StmError::NoSuchResource);
        }
        let chan = self
            .channels
            .write()
            .remove(&id.index)
            .ok_or(StmError::NoSuchResource)?;
        chan.close();
        Ok(())
    }

    /// Removes a queue from the registry, closing it.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] if not present.
    pub fn remove_queue(&self, id: QueueId) -> StmResult<()> {
        if id.owner != self.as_id {
            return Err(StmError::NoSuchResource);
        }
        let queue = self
            .queues
            .write()
            .remove(&id.index)
            .ok_or(StmError::NoSuchResource)?;
        queue.close();
        Ok(())
    }

    /// Ids of every container currently registered.
    #[must_use]
    pub fn resources(&self) -> Vec<ResourceId> {
        let mut out: Vec<ResourceId> = self
            .channels
            .read()
            .values()
            .map(|c| ResourceId::Channel(c.id()))
            .collect();
        out.extend(
            self.queues
                .read()
                .values()
                .map(|q| ResourceId::Queue(q.id())),
        );
        out.sort();
        out
    }

    /// Closes every container (e.g. on address-space shutdown).
    pub fn close_all(&self) {
        for c in self.channels.read().values() {
            c.close();
        }
        for q in self.queues.read().values() {
            q.close();
        }
    }
}

impl fmt::Debug for StmRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StmRegistry")
            .field("as_id", &self.as_id)
            .field("channels", &self.channels.read().len())
            .field("queues", &self.queues.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_ids_with_owner() {
        let reg = StmRegistry::new(AsId(7));
        let a = reg.create_channel(None, ChannelAttrs::default());
        let b = reg.create_channel(None, ChannelAttrs::default());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id().owner, AsId(7));
        let q = reg.create_queue(None, QueueAttrs::default());
        assert_eq!(q.id().owner, AsId(7));
    }

    #[test]
    fn resolves_registered_containers() {
        let reg = StmRegistry::new(AsId(1));
        let c = reg.create_channel(Some("x".into()), ChannelAttrs::default());
        let q = reg.create_queue(Some("y".into()), QueueAttrs::default());
        assert_eq!(reg.channel(c.id()).unwrap().name(), Some("x"));
        assert_eq!(reg.queue(q.id()).unwrap().name(), Some("y"));
    }

    #[test]
    fn rejects_foreign_and_unknown_ids() {
        let reg = StmRegistry::new(AsId(1));
        let foreign = ChanId {
            owner: AsId(2),
            index: 1,
        };
        assert_eq!(reg.channel(foreign).unwrap_err(), StmError::NoSuchResource);
        let unknown = ChanId {
            owner: AsId(1),
            index: 99,
        };
        assert_eq!(reg.channel(unknown).unwrap_err(), StmError::NoSuchResource);
        let unknown_q = QueueId {
            owner: AsId(1),
            index: 99,
        };
        assert_eq!(reg.queue(unknown_q).unwrap_err(), StmError::NoSuchResource);
    }

    #[test]
    fn remove_closes_container() {
        let reg = StmRegistry::new(AsId(1));
        let c = reg.create_channel(None, ChannelAttrs::default());
        reg.remove_channel(c.id()).unwrap();
        assert!(c.is_closed());
        assert_eq!(reg.channel(c.id()).unwrap_err(), StmError::NoSuchResource);
        assert_eq!(
            reg.remove_channel(c.id()).unwrap_err(),
            StmError::NoSuchResource
        );

        let q = reg.create_queue(None, QueueAttrs::default());
        reg.remove_queue(q.id()).unwrap();
        assert!(q.is_closed());
    }

    #[test]
    fn resources_lists_everything_sorted() {
        let reg = StmRegistry::new(AsId(1));
        let c = reg.create_channel(None, ChannelAttrs::default());
        let q = reg.create_queue(None, QueueAttrs::default());
        let res = reg.resources();
        assert_eq!(res.len(), 2);
        assert!(res.contains(&ResourceId::Channel(c.id())));
        assert!(res.contains(&ResourceId::Queue(q.id())));
    }

    #[test]
    fn close_all_closes_everything() {
        let reg = StmRegistry::new(AsId(1));
        let c = reg.create_channel(None, ChannelAttrs::default());
        let q = reg.create_queue(None, QueueAttrs::default());
        reg.close_all();
        assert!(c.is_closed());
        assert!(q.is_closed());
    }

    #[test]
    fn debug_is_informative() {
        let reg = StmRegistry::new(AsId(1));
        assert!(format!("{reg:?}").contains("StmRegistry"));
    }

    #[test]
    fn default_shards_apply_to_unpinned_attrs() {
        let reg = StmRegistry::new(AsId(1));
        reg.set_default_shards(3);
        let c = reg.create_channel(None, ChannelAttrs::default());
        assert_eq!(c.shard_count(), 3);
        let q = reg.create_queue(None, QueueAttrs::default());
        assert_eq!(q.shard_count(), 3);
        // Explicit attrs win over the registry default.
        let pinned = reg.create_channel(None, ChannelAttrs::builder().shards(5).build());
        assert_eq!(pinned.shard_count(), 5);
        // 0 restores the built-in default.
        reg.set_default_shards(0);
        let c = reg.create_channel(None, ChannelAttrs::default());
        assert_eq!(c.shard_count(), crate::channel::DEFAULT_STM_SHARDS as usize);
    }
}
