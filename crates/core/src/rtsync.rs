//! Real-time synchrony: loose temporal pacing borrowed from Beehive.
//!
//! Timestamps in space-time memory are *indices*, not wall-clock times. To
//! pace a thread relative to real time — e.g. a camera grabbing frames at
//! 30 fps — the paper (§3.1) provides loose temporal synchrony: a thread
//! declares a tick period, a tolerance, and an exception handler. After each
//! unit of work it calls `synchronize()`:
//!
//! * **early** → the call blocks until the tick boundary;
//! * **late within tolerance** → the call returns immediately, in sync;
//! * **late beyond tolerance** → the registered handler runs and decides how
//!   to recover (carry on, or skip the missed ticks).
//!
//! The [`Clock`] abstraction makes the mechanism testable: [`RealClock`]
//! paces against the OS clock, [`VirtualClock`] is advanced manually by
//! tests and simulations.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_obs::{trace, Counter, Histogram, MetricsRegistry, SpanKind, Tracer};
use parking_lot::{Condvar, Mutex};

/// A monotonic clock that can block until a point in time.
///
/// Times are expressed as [`Duration`]s since the clock's origin.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Blocks until `now() >= deadline`.
    fn wait_until(&self, deadline: Duration);
}

/// Wall-clock [`Clock`] anchored at its creation instant.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn wait_until(&self, deadline: Duration) {
        let now = self.origin.elapsed();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
}

/// Manually-advanced [`Clock`] for tests and deterministic simulation.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use dstampede_core::rtsync::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), Duration::ZERO);
/// clock.advance(Duration::from_millis(5));
/// assert_eq!(clock.now(), Duration::from_millis(5));
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    state: Mutex<Duration>,
    cv: Condvar,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock, waking any waiter whose deadline passed.
    pub fn advance(&self, by: Duration) {
        let mut t = self.state.lock();
        *t += by;
        drop(t);
        self.cv.notify_all();
    }

    /// Sets the clock to an absolute time (never backwards).
    pub fn set(&self, to: Duration) {
        let mut t = self.state.lock();
        if to > *t {
            *t = to;
        }
        drop(t);
        self.cv.notify_all();
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *self.state.lock()
    }

    fn wait_until(&self, deadline: Duration) {
        let mut t = self.state.lock();
        while *t < deadline {
            self.cv.wait(&mut t);
        }
    }
}

/// Outcome of a [`RtSync::synchronize`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStatus {
    /// The thread was early and slept until the tick boundary.
    Early {
        /// How long it slept.
        waited: Duration,
    },
    /// The thread was late, but within tolerance; no action taken.
    InSync {
        /// How late it was.
        late_by: Duration,
    },
    /// The thread slipped beyond tolerance; the exception handler ran (if
    /// registered) and chose this recovery.
    Late {
        /// How late it was.
        late_by: Duration,
        /// How many tick slots were skipped to catch up (zero when the
        /// handler chose [`Recovery::Continue`]).
        skipped: u64,
    },
}

/// What a late thread's exception handler wants the pacer to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Recovery {
    /// Keep the original schedule: subsequent ticks stay anchored to the
    /// declared cadence and the thread must catch up on its own.
    #[default]
    Continue,
    /// Abandon the missed ticks: re-anchor on the next tick boundary after
    /// the current time. A camera would drop the frames it failed to grab.
    SkipMissed,
}

/// Exception handler invoked when a thread slips beyond tolerance.
pub type LateHandler = Box<dyn FnMut(Duration) -> Recovery + Send>;

/// Loose temporal synchrony pacer.
///
/// # Examples
///
/// Pacing a virtual camera at 30 fps against a test clock:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use dstampede_core::rtsync::{RtSync, SyncStatus, VirtualClock};
///
/// let clock = Arc::new(VirtualClock::new());
/// let mut pacer = RtSync::new(
///     Arc::clone(&clock) as Arc<dyn dstampede_core::rtsync::Clock>,
///     Duration::from_millis(33),
///     Duration::from_millis(5),
/// );
/// clock.advance(Duration::from_millis(40)); // work overran the tick
/// match pacer.synchronize() {
///     SyncStatus::InSync { .. } | SyncStatus::Late { .. } => {}
///     SyncStatus::Early { .. } => unreachable!("we were late"),
/// }
/// ```
pub struct RtSync {
    clock: Arc<dyn Clock>,
    period: Duration,
    tolerance: Duration,
    origin: Duration,
    ticks: u64,
    handler: Option<LateHandler>,
    obs: SyncObs,
}

/// Telemetry handles for one pacer, bound at creation.
struct SyncObs {
    /// How late each `synchronize()` arrival was (0 when early).
    lateness: Arc<Histogram>,
    /// How long early arrivals slept.
    waits: Arc<Histogram>,
    /// Exception-handler (beyond-tolerance) firings.
    late_fires: Arc<Counter>,
    ticks: Arc<Counter>,
    tracer: Arc<Tracer>,
}

impl SyncObs {
    fn bind(registry: &MetricsRegistry) -> SyncObs {
        SyncObs {
            lateness: registry.histogram("rtsync", "lateness_us"),
            waits: registry.histogram("rtsync", "wait_us"),
            late_fires: registry.counter("rtsync", "handler_fires"),
            ticks: registry.counter("rtsync", "ticks"),
            tracer: Arc::clone(registry.tracer()),
        }
    }
}

impl RtSync {
    /// Creates a pacer anchored at the clock's current time.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>, period: Duration, tolerance: Duration) -> Self {
        assert!(!period.is_zero(), "RtSync period must be non-zero");
        let origin = clock.now();
        RtSync {
            clock,
            period,
            tolerance,
            origin,
            ticks: 0,
            handler: None,
            obs: SyncObs::bind(dstampede_obs::global()),
        }
    }

    /// Rebinds telemetry to `registry` (e.g. an address space's) so
    /// synchrony shows up in that space's snapshots, builder-style.
    #[must_use]
    pub fn with_registry(mut self, registry: &MetricsRegistry) -> Self {
        self.obs = SyncObs::bind(registry);
        self
    }

    /// Registers the exception handler run when the thread slips beyond
    /// tolerance. Without one, the pacer behaves as if the handler returned
    /// [`Recovery::Continue`].
    #[must_use]
    pub fn with_late_handler<F>(mut self, handler: F) -> Self
    where
        F: FnMut(Duration) -> Recovery + Send + 'static,
    {
        self.handler = Some(Box::new(handler));
        self
    }

    /// The declared tick period.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// The declared tolerance.
    #[must_use]
    pub fn tolerance(&self) -> Duration {
        self.tolerance
    }

    /// Ticks completed so far (including skipped ones).
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Completes the current tick: waits if early, returns immediately if
    /// within tolerance, otherwise invokes the late handler.
    pub fn synchronize(&mut self) -> SyncStatus {
        self.ticks += 1;
        self.obs.ticks.inc();
        let tick = i64::try_from(self.ticks).unwrap_or(i64::MAX);
        let target = self.origin + self.period * u32::try_from(self.ticks).unwrap_or(u32::MAX);
        let now = self.clock.now();
        if now <= target {
            let span_start = self.obs.tracer.now_us();
            self.clock.wait_until(target);
            let waited = target - now;
            self.obs.lateness.record(0);
            self.obs.waits.record_duration(waited);
            if let Some(ctx) = trace::current().or_else(|| self.obs.tracer.begin_trace(tick)) {
                self.obs
                    .tracer
                    .finish(ctx, SpanKind::SyncWait, "rtsync", tick, span_start, "");
            }
            return SyncStatus::Early { waited };
        }
        let late_by = now - target;
        self.obs.lateness.record_duration(late_by);
        if late_by <= self.tolerance {
            return SyncStatus::InSync { late_by };
        }
        self.obs.late_fires.inc();
        if let Some(ctx) = trace::current().or_else(|| self.obs.tracer.begin_trace(tick)) {
            self.obs.tracer.instant(
                ctx,
                SpanKind::SyncLate,
                "rtsync",
                tick,
                &format!("late_by_us={}", late_by.as_micros()),
            );
        }
        let recovery = match &mut self.handler {
            Some(h) => h(late_by),
            None => Recovery::Continue,
        };
        let skipped = match recovery {
            Recovery::Continue => 0,
            Recovery::SkipMissed => {
                // Advance ticks so the next boundary is the first one after
                // the current time.
                let periods_elapsed = (now - self.origin).as_nanos() / self.period.as_nanos();
                let next = u64::try_from(periods_elapsed).unwrap_or(u64::MAX);
                let skipped = next.saturating_sub(self.ticks);
                self.ticks = next.max(self.ticks);
                skipped
            }
        };
        SyncStatus::Late { late_by, skipped }
    }
}

impl fmt::Debug for RtSync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtSync")
            .field("period", &self.period)
            .field("tolerance", &self.tolerance)
            .field("ticks", &self.ticks)
            .field("handler", &self.handler.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn real_clock_progresses() {
        let c = RealClock::new();
        let a = c.now();
        std::thread::sleep(ms(5));
        assert!(c.now() > a);
    }

    #[test]
    fn real_clock_wait_until_past_is_instant() {
        let c = RealClock::new();
        std::thread::sleep(ms(2));
        let before = Instant::now();
        c.wait_until(Duration::ZERO);
        assert!(before.elapsed() < ms(50));
    }

    #[test]
    fn virtual_clock_advances_and_wakes_waiters() {
        let c = Arc::new(VirtualClock::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            c2.wait_until(ms(10));
            c2.now()
        });
        std::thread::sleep(ms(10));
        c.advance(ms(10));
        assert_eq!(h.join().unwrap(), ms(10));
    }

    #[test]
    fn virtual_clock_set_never_regresses() {
        let c = VirtualClock::new();
        c.set(ms(10));
        c.set(ms(5));
        assert_eq!(c.now(), ms(10));
    }

    #[test]
    fn early_thread_waits_for_tick() {
        let clock = Arc::new(VirtualClock::new());
        let clock_dyn: Arc<dyn Clock> = Arc::clone(&clock) as _;
        let mut pacer = RtSync::new(clock_dyn, ms(10), ms(2));
        let c2 = Arc::clone(&clock);
        let h = std::thread::spawn(move || pacer.synchronize());
        std::thread::sleep(ms(20));
        c2.advance(ms(10));
        match h.join().unwrap() {
            SyncStatus::Early { waited } => assert_eq!(waited, ms(10)),
            other => panic!("expected Early, got {other:?}"),
        }
    }

    #[test]
    fn within_tolerance_is_in_sync() {
        let clock = Arc::new(VirtualClock::new());
        let mut pacer = RtSync::new(Arc::clone(&clock) as Arc<dyn Clock>, ms(10), ms(5));
        clock.advance(ms(12)); // 2ms late, tolerance 5ms
        match pacer.synchronize() {
            SyncStatus::InSync { late_by } => assert_eq!(late_by, ms(2)),
            other => panic!("expected InSync, got {other:?}"),
        }
    }

    #[test]
    fn beyond_tolerance_fires_handler() {
        let fired = Arc::new(AtomicU32::new(0));
        let f2 = Arc::clone(&fired);
        let clock = Arc::new(VirtualClock::new());
        let mut pacer = RtSync::new(Arc::clone(&clock) as Arc<dyn Clock>, ms(10), ms(2))
            .with_late_handler(move |late| {
                assert_eq!(late, ms(8));
                f2.fetch_add(1, Ordering::SeqCst);
                Recovery::Continue
            });
        clock.advance(ms(18)); // 8ms late
        match pacer.synchronize() {
            SyncStatus::Late { late_by, skipped } => {
                assert_eq!(late_by, ms(8));
                assert_eq!(skipped, 0);
            }
            other => panic!("expected Late, got {other:?}"),
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn skip_missed_reanchors_schedule() {
        let clock = Arc::new(VirtualClock::new());
        let mut pacer = RtSync::new(Arc::clone(&clock) as Arc<dyn Clock>, ms(10), ms(1))
            .with_late_handler(|_| Recovery::SkipMissed);
        clock.advance(ms(47)); // slots 1..4 missed entirely
        match pacer.synchronize() {
            SyncStatus::Late { skipped, .. } => assert_eq!(skipped, 3),
            other => panic!("expected Late, got {other:?}"),
        }
        assert_eq!(pacer.ticks(), 4);
        // Next tick boundary is 50ms; we are at 47ms so we are early.
        let c2 = Arc::clone(&clock);
        let h = std::thread::spawn(move || pacer.synchronize());
        std::thread::sleep(ms(10));
        c2.advance(ms(3));
        assert!(matches!(h.join().unwrap(), SyncStatus::Early { .. }));
    }

    #[test]
    fn no_handler_defaults_to_continue() {
        let clock = Arc::new(VirtualClock::new());
        let mut pacer = RtSync::new(Arc::clone(&clock) as Arc<dyn Clock>, ms(10), ms(1));
        clock.advance(ms(100));
        match pacer.synchronize() {
            SyncStatus::Late { skipped, .. } => assert_eq!(skipped, 0),
            other => panic!("expected Late, got {other:?}"),
        }
        assert_eq!(pacer.ticks(), 1);
    }

    #[test]
    fn steady_cadence_counts_ticks() {
        let clock = Arc::new(VirtualClock::new());
        let mut pacer = RtSync::new(Arc::clone(&clock) as Arc<dyn Clock>, ms(10), ms(1));
        for i in 1..=5u64 {
            clock.set(ms(10 * i)); // exactly on the boundary each time
            let s = pacer.synchronize();
            assert!(
                matches!(s, SyncStatus::Early { waited } if waited.is_zero()),
                "tick {i}: {s:?}"
            );
        }
        assert_eq!(pacer.ticks(), 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let _ = RtSync::new(clock, Duration::ZERO, ms(1));
    }

    #[test]
    fn synchrony_metrics_are_recorded() {
        let reg = MetricsRegistry::new("rt-test");
        let clock = Arc::new(VirtualClock::new());
        let mut pacer =
            RtSync::new(Arc::clone(&clock) as Arc<dyn Clock>, ms(10), ms(1)).with_registry(&reg);
        clock.advance(ms(100)); // far beyond tolerance
        assert!(matches!(pacer.synchronize(), SyncStatus::Late { .. }));
        clock.advance(ms(100)); // within a later slot: in sync or late again
        let _ = pacer.synchronize();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("rtsync", "ticks"), Some(2));
        assert!(snap.counter_value("rtsync", "handler_fires").unwrap_or(0) >= 1);
        let lateness = snap.histogram("rtsync", "lateness_us").unwrap();
        assert!(lateness.count >= 1, "lateness must be measured");
    }

    #[test]
    fn debug_is_informative() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let pacer = RtSync::new(clock, ms(10), ms(1));
        assert!(format!("{pacer:?}").contains("RtSync"));
    }
}
