//! D-Stampede thread bookkeeping.
//!
//! Stampede threads are "POSIX-like" (paper §3.1): we map them onto
//! [`std::thread`] but register each with its address space so the runtime
//! can enumerate them, name them, and track their virtual time. The virtual
//! time recorded here is advisory — garbage collection is driven by the
//! per-connection promises (see [`crate::channel::InputConn::set_vt`]) —
//! but gives the runtime a cluster-wide picture for the distributed GC
//! epoch report.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::ids::ThreadId;
use crate::time::{Timestamp, VirtualTime};

/// A registered D-Stampede thread.
#[derive(Debug)]
pub struct StThread {
    id: ThreadId,
    name: String,
    vt: AtomicI64,
}

impl StThread {
    /// The thread's id.
    #[must_use]
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The thread's registered name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The thread's advisory virtual time.
    #[must_use]
    pub fn vt(&self) -> VirtualTime {
        VirtualTime::at(Timestamp::new(self.vt.load(Ordering::Acquire)))
    }

    /// Advances the advisory virtual time (never backwards).
    pub fn set_vt(&self, vt: VirtualTime) {
        let new = vt.floor().value();
        self.vt.fetch_max(new, Ordering::AcqRel);
    }
}

/// Registry of the threads running in one address space.
///
/// # Examples
///
/// ```
/// use dstampede_core::thread::ThreadRegistry;
///
/// let reg = ThreadRegistry::new();
/// let t = reg.register("camera-0");
/// assert_eq!(t.name(), "camera-0");
/// assert_eq!(reg.len(), 1);
/// reg.unregister(t.id());
/// assert!(reg.is_empty());
/// ```
pub struct ThreadRegistry {
    threads: RwLock<HashMap<ThreadId, Arc<StThread>>>,
    next: AtomicU64,
}

impl ThreadRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(ThreadRegistry {
            threads: RwLock::new(HashMap::new()),
            next: AtomicU64::new(1),
        })
    }

    /// Registers a thread under a human-readable name.
    pub fn register(&self, name: &str) -> Arc<StThread> {
        let id = ThreadId(self.next.fetch_add(1, Ordering::Relaxed));
        let t = Arc::new(StThread {
            id,
            name: name.to_owned(),
            vt: AtomicI64::new(Timestamp::MIN.value()),
        });
        self.threads.write().insert(id, Arc::clone(&t));
        t
    }

    /// Removes a thread (e.g. when it exits). Unknown ids are ignored.
    pub fn unregister(&self, id: ThreadId) {
        self.threads.write().remove(&id);
    }

    /// Looks up a registered thread.
    #[must_use]
    pub fn get(&self, id: ThreadId) -> Option<Arc<StThread>> {
        self.threads.read().get(&id).cloned()
    }

    /// Number of registered threads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.threads.read().len()
    }

    /// Whether no threads are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.threads.read().is_empty()
    }

    /// The minimum advisory virtual time across registered threads, or
    /// [`VirtualTime::END`] when none are registered (nothing constrains GC).
    #[must_use]
    pub fn min_vt(&self) -> VirtualTime {
        self.threads
            .read()
            .values()
            .map(|t| t.vt())
            .min()
            .unwrap_or(VirtualTime::END)
    }

    /// Spawns an OS thread registered under `name`; it is unregistered when
    /// the closure returns.
    pub fn spawn<F, T>(self: &Arc<Self>, name: &str, f: F) -> std::thread::JoinHandle<T>
    where
        F: FnOnce(Arc<StThread>) -> T + Send + 'static,
        T: Send + 'static,
    {
        let t = self.register(name);
        let reg = Arc::clone(self);
        let thread_name = name.to_owned();
        std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let id = t.id();
                let out = f(t);
                reg.unregister(id);
                out
            })
            .expect("spawning an OS thread failed")
    }
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        ThreadRegistry {
            threads: RwLock::new(HashMap::new()),
            next: AtomicU64::new(1),
        }
    }
}

impl fmt::Debug for ThreadRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadRegistry")
            .field("threads", &self.threads.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let reg = ThreadRegistry::new();
        let t = reg.register("mixer");
        assert_eq!(reg.get(t.id()).unwrap().name(), "mixer");
        reg.unregister(t.id());
        assert!(reg.get(t.id()).is_none());
        // Unregistering twice is harmless.
        reg.unregister(t.id());
    }

    #[test]
    fn ids_are_unique() {
        let reg = ThreadRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn vt_is_monotone() {
        let reg = ThreadRegistry::new();
        let t = reg.register("x");
        t.set_vt(VirtualTime::at(Timestamp::new(10)));
        t.set_vt(VirtualTime::at(Timestamp::new(5))); // ignored
        assert_eq!(t.vt(), VirtualTime::at(Timestamp::new(10)));
    }

    #[test]
    fn min_vt_across_threads() {
        let reg = ThreadRegistry::new();
        assert_eq!(reg.min_vt(), VirtualTime::END);
        let a = reg.register("a");
        let b = reg.register("b");
        a.set_vt(VirtualTime::at(Timestamp::new(10)));
        b.set_vt(VirtualTime::at(Timestamp::new(4)));
        assert_eq!(reg.min_vt(), VirtualTime::at(Timestamp::new(4)));
        reg.unregister(b.id());
        assert_eq!(reg.min_vt(), VirtualTime::at(Timestamp::new(10)));
    }

    #[test]
    fn spawn_registers_and_cleans_up() {
        let reg = ThreadRegistry::new();
        let h = reg.spawn("worker", |t| {
            assert_eq!(t.name(), "worker");
            42
        });
        assert_eq!(h.join().unwrap(), 42);
        assert!(reg.is_empty());
    }

    #[test]
    fn debug_is_informative() {
        let reg = ThreadRegistry::new();
        assert!(format!("{reg:?}").contains("ThreadRegistry"));
    }
}
