//! Timestamps and virtual time.
//!
//! A [`Timestamp`] is the *index* of an item within a channel or queue. It is
//! entirely application-defined — e.g. the frame number of a video stream —
//! and has **no direct connection to real time** (the paper, §3.1). Real-time
//! pacing is provided separately by [`crate::rtsync`].
//!
//! A thread's [`VirtualTime`] is its declared position in timestamp space.
//! The transparent garbage collector uses virtual times to compute the set of
//! timestamps no thread can ever access again (see [`crate::gc`]).

use std::fmt;

/// Application-defined index of an item in a channel or queue.
///
/// Timestamps are totally ordered signed 64-bit integers. Producers typically
/// use monotonically increasing values (frame numbers, sample counters), but
/// nothing in the system requires density or contiguity.
///
/// # Examples
///
/// ```
/// use dstampede_core::Timestamp;
///
/// let t = Timestamp::new(41);
/// assert_eq!(t.next(), Timestamp::new(42));
/// assert!(t < t.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The zero timestamp, conventionally the start of a stream.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The smallest representable timestamp. Used as "interested in
    /// everything" sentinel by connections.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Creates a timestamp from its integer value.
    #[must_use]
    pub const fn new(value: i64) -> Self {
        Timestamp(value)
    }

    /// Returns the integer value.
    #[must_use]
    pub const fn value(self) -> i64 {
        self.0
    }

    /// The timestamp immediately after this one (saturating at the maximum).
    #[must_use]
    pub const fn next(self) -> Self {
        Timestamp(self.0.saturating_add(1))
    }

    /// The timestamp immediately before this one (saturating at the minimum).
    #[must_use]
    pub const fn prev(self) -> Self {
        Timestamp(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl From<i64> for Timestamp {
    fn from(v: i64) -> Self {
        Timestamp(v)
    }
}

impl From<Timestamp> for i64 {
    fn from(t: Timestamp) -> Self {
        t.0
    }
}

/// A thread's declared position in timestamp space.
///
/// A virtual time of `v` is a promise: *this thread will never again request
/// an item with timestamp `< v`*. The transparent garbage collector combines
/// the virtual times of every input connection on a channel to find dead
/// timestamps.
///
/// # Examples
///
/// ```
/// use dstampede_core::{Timestamp, VirtualTime};
///
/// let vt = VirtualTime::at(Timestamp::new(10));
/// assert!(vt.permits(Timestamp::new(10)));
/// assert!(!vt.permits(Timestamp::new(9)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualTime(Timestamp);

impl VirtualTime {
    /// Virtual time that still permits every timestamp ("beginning of time").
    pub const START: VirtualTime = VirtualTime(Timestamp::MIN);
    /// Virtual time that permits no timestamp ("end of time"); declared by a
    /// thread that is done with a stream.
    pub const END: VirtualTime = VirtualTime(Timestamp::MAX);

    /// Virtual time positioned at `ts`: timestamps `>= ts` are still live.
    #[must_use]
    pub const fn at(ts: Timestamp) -> Self {
        VirtualTime(ts)
    }

    /// The earliest timestamp this virtual time still permits access to.
    #[must_use]
    pub const fn floor(self) -> Timestamp {
        self.0
    }

    /// Whether an item with timestamp `ts` may still be requested.
    #[must_use]
    pub fn permits(self, ts: Timestamp) -> bool {
        ts >= self.0
    }
}

impl Default for VirtualTime {
    fn default() -> Self {
        VirtualTime::START
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vt:{}", self.0.value())
    }
}

/// An inclusive range of timestamps, used by bulk consume operations.
///
/// # Examples
///
/// ```
/// use dstampede_core::{Timestamp, TsRange};
///
/// let r = TsRange::new(Timestamp::new(3), Timestamp::new(5));
/// assert!(r.contains(Timestamp::new(4)));
/// assert_eq!(r.len(), Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TsRange {
    lo: Timestamp,
    hi: Timestamp,
}

impl TsRange {
    /// Creates the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Timestamp, hi: Timestamp) -> Self {
        assert!(lo <= hi, "TsRange requires lo <= hi");
        TsRange { lo, hi }
    }

    /// Range covering every timestamp up to and including `hi`.
    #[must_use]
    pub fn up_to(hi: Timestamp) -> Self {
        TsRange {
            lo: Timestamp::MIN,
            hi,
        }
    }

    /// Lower (inclusive) bound.
    #[must_use]
    pub const fn lo(self) -> Timestamp {
        self.lo
    }

    /// Upper (inclusive) bound.
    #[must_use]
    pub const fn hi(self) -> Timestamp {
        self.hi
    }

    /// Whether `ts` falls inside the range.
    #[must_use]
    pub fn contains(self, ts: Timestamp) -> bool {
        self.lo <= ts && ts <= self.hi
    }

    /// Number of timestamps covered, or `None` if it overflows `u64`
    /// (e.g. [`TsRange::up_to`] ranges anchored at `Timestamp::MIN`).
    #[must_use]
    pub fn len(self) -> Option<u64> {
        let width = (self.hi.value() as i128) - (self.lo.value() as i128) + 1;
        u64::try_from(width).ok()
    }

    /// Always false: a range is constructed with `lo <= hi` so it contains at
    /// least one timestamp.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }
}

impl fmt::Display for TsRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo.value(), self.hi.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_arith() {
        let a = Timestamp::new(5);
        assert_eq!(a.next().value(), 6);
        assert_eq!(a.prev().value(), 4);
        assert!(Timestamp::MIN < Timestamp::ZERO);
        assert!(Timestamp::ZERO < Timestamp::MAX);
    }

    #[test]
    fn timestamp_saturates_at_extremes() {
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
        assert_eq!(Timestamp::MIN.prev(), Timestamp::MIN);
    }

    #[test]
    fn timestamp_converts_to_and_from_i64() {
        let t: Timestamp = 42i64.into();
        let v: i64 = t.into();
        assert_eq!(v, 42);
    }

    #[test]
    fn virtual_time_permits_at_and_after_floor() {
        let vt = VirtualTime::at(Timestamp::new(7));
        assert!(!vt.permits(Timestamp::new(6)));
        assert!(vt.permits(Timestamp::new(7)));
        assert!(vt.permits(Timestamp::new(8)));
    }

    #[test]
    fn virtual_time_extremes() {
        assert!(VirtualTime::START.permits(Timestamp::MIN));
        assert!(!VirtualTime::END.permits(Timestamp::new(0)));
        // END still "permits" MAX itself by definition of floor.
        assert!(VirtualTime::END.permits(Timestamp::MAX));
    }

    #[test]
    fn default_virtual_time_is_start() {
        assert_eq!(VirtualTime::default(), VirtualTime::START);
    }

    #[test]
    fn range_contains_and_len() {
        let r = TsRange::new(Timestamp::new(-2), Timestamp::new(2));
        assert!(r.contains(Timestamp::new(-2)));
        assert!(r.contains(Timestamp::new(2)));
        assert!(!r.contains(Timestamp::new(3)));
        assert_eq!(r.len(), Some(5));
        assert!(!r.is_empty());
    }

    #[test]
    fn up_to_range_len_overflows_to_none() {
        // [MIN, MAX] covers 2^64 timestamps, one more than u64 can hold.
        let r = TsRange::up_to(Timestamp::MAX);
        assert_eq!(r.len(), None);
        assert!(r.contains(Timestamp::new(i64::MIN)));
        // [MIN, 0] covers 2^63 + 1, which still fits.
        assert_eq!(
            TsRange::up_to(Timestamp::ZERO).len(),
            Some((1u64 << 63) + 1)
        );
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_panics() {
        let _ = TsRange::new(Timestamp::new(3), Timestamp::new(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp::new(3).to_string(), "ts:3");
        assert_eq!(VirtualTime::at(Timestamp::new(3)).to_string(), "vt:3");
        assert_eq!(
            TsRange::new(Timestamp::new(1), Timestamp::new(2)).to_string(),
            "[1, 2]"
        );
    }
}
