//! Task-waker parking for event-driven runtimes.
//!
//! The blocking STM API parks OS threads on condvar-backed gates
//! ([`crate::channel`]'s eventcount `Gate`, [`crate::queue`]'s raw
//! condvars). An event-driven executor cannot afford a thread per blocked
//! `get`/`put`/`dequeue`; instead its tasks park a [`std::task::Waker`]
//! here and the container wakes them at exactly the sites where it already
//! notifies condvar waiters. Both mechanisms coexist: blocking callers
//! keep the condvar path untouched, reactor tasks ride the waker path.
//!
//! The contract mirrors the eventcount gate: a task **registers its waker
//! first, then re-checks its predicate** (a non-blocking attempt). A state
//! change that satisfies the predicate is published before `wake_all` runs,
//! so a waker registered before the attempt either sees the new state or is
//! woken after it. Wakes are collective and may be spurious; woken tasks
//! simply retry their non-blocking attempt and re-register on `Pending`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::task::Waker;

use parking_lot::Mutex;

/// A set of parked task wakers attached to one wait condition.
///
/// Notifiers pay a single relaxed atomic load when no task is parked, so
/// containers serving only blocking (condvar) callers see no overhead
/// beyond that load on their notify paths.
pub struct WakerSet {
    wakers: Mutex<Vec<Waker>>,
    /// Mirror of `wakers.len()`, readable without the lock.
    len: AtomicUsize,
}

impl WakerSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> WakerSet {
        WakerSet {
            wakers: Mutex::new(Vec::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Parks `waker`, to be woken by the next [`WakerSet::wake_all`].
    ///
    /// Re-registering the waker of an already-parked task (recognized via
    /// [`Waker::will_wake`]) replaces the old entry instead of growing the
    /// set, so a task that polls repeatedly without an intervening wake
    /// occupies one slot.
    pub fn register(&self, waker: &Waker) {
        let mut wakers = self.wakers.lock();
        if wakers.iter().any(|w| w.will_wake(waker)) {
            return;
        }
        wakers.push(waker.clone());
        self.len.store(wakers.len(), Ordering::Release);
    }

    /// Wakes and removes every parked waker.
    ///
    /// Call after publishing (releasing the lock protecting) the state
    /// change that might satisfy a parked task's predicate — the same
    /// ordering discipline the condvar gates require.
    pub fn wake_all(&self) {
        if self.len.load(Ordering::Acquire) == 0 {
            return;
        }
        let drained: Vec<Waker> = {
            let mut wakers = self.wakers.lock();
            self.len.store(0, Ordering::Release);
            std::mem::take(&mut *wakers)
        };
        for w in drained {
            w.wake();
        }
    }

    /// Number of parked wakers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no task is parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for WakerSet {
    fn default() -> Self {
        WakerSet::new()
    }
}

impl std::fmt::Debug for WakerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakerSet")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::task::Wake;

    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting() -> (Arc<CountingWake>, Waker) {
        let cw = Arc::new(CountingWake(AtomicUsize::new(0)));
        (Arc::clone(&cw), Waker::from(Arc::clone(&cw)))
    }

    #[test]
    fn wake_all_wakes_each_registered_once() {
        let set = WakerSet::new();
        let (a, wa) = counting();
        let (b, wb) = counting();
        set.register(&wa);
        set.register(&wb);
        assert_eq!(set.len(), 2);
        set.wake_all();
        assert_eq!(a.0.load(Ordering::SeqCst), 1);
        assert_eq!(b.0.load(Ordering::SeqCst), 1);
        assert!(set.is_empty());
    }

    #[test]
    fn reregistration_does_not_grow_the_set() {
        let set = WakerSet::new();
        let (a, wa) = counting();
        set.register(&wa);
        set.register(&wa);
        set.register(&wa.clone());
        assert_eq!(set.len(), 1);
        set.wake_all();
        assert_eq!(a.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wake_after_drain_is_a_noop() {
        let set = WakerSet::new();
        let (a, wa) = counting();
        set.register(&wa);
        set.wake_all();
        set.wake_all();
        assert_eq!(a.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn registration_after_wake_parks_again() {
        let set = WakerSet::new();
        let (a, wa) = counting();
        set.register(&wa);
        set.wake_all();
        set.register(&wa);
        assert_eq!(set.len(), 1);
        set.wake_all();
        assert_eq!(a.0.load(Ordering::SeqCst), 2);
    }
}
