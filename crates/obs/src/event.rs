//! A bounded ring-buffer event log with levels, replacing ad-hoc
//! stderr prints. Events at or above the echo threshold are also
//! mirrored to stderr so daemons stay observable on a terminal.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::trace::{self, TraceContext};

/// Event severity, ordered from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained tracing.
    Trace,
    /// Diagnostic detail.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Something unexpected but survivable.
    Warn,
    /// A failure.
    Error,
}

impl Level {
    fn from_u8(v: u8) -> Option<Level> {
        match v {
            0 => Some(Level::Trace),
            1 => Some(Level::Debug),
            2 => Some(Level::Info),
            3 => Some(Level::Warn),
            4 => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        };
        f.write_str(name)
    }
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number within the log (counts drops too).
    pub seq: u64,
    /// Milliseconds since the log was created.
    pub millis: u64,
    /// Severity.
    pub level: Level,
    /// Owning layer (`stm`, `gc`, `clf`, `rpc`, ...).
    pub subsystem: String,
    /// Human-readable description.
    pub message: String,
    /// The ambient trace context active when the event was emitted,
    /// so `stats` events cross-reference `trace` timelines.
    pub trace: Option<TraceContext>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8.3}s {:5} {}] {}",
            self.millis as f64 / 1000.0,
            self.level,
            self.subsystem,
            self.message
        )?;
        if let Some(ctx) = self.trace {
            write!(f, " trace={}/{}", ctx.trace, ctx.span)?;
        }
        Ok(())
    }
}

struct LogState {
    buf: VecDeque<Event>,
    next_seq: u64,
}

/// A bounded ring buffer of [`Event`]s: the newest `capacity` events
/// are retained, older ones are dropped.
pub struct EventLog {
    started: Instant,
    capacity: usize,
    state: Mutex<LogState>,
    /// Echo threshold as `Level as u8`; 5 disables echo.
    echo: AtomicU8,
}

/// Default retained-event capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(DEFAULT_CAPACITY)
    }
}

impl EventLog {
    /// A log retaining at most `capacity` events, echoing `Warn` and
    /// above to stderr.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventLog {
            started: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(LogState {
                buf: VecDeque::new(),
                next_seq: 0,
            }),
            echo: AtomicU8::new(Level::Warn as u8),
        }
    }

    /// Sets the minimum level echoed to stderr; `None` disables echo.
    pub fn set_echo(&self, level: Option<Level>) {
        self.echo
            .store(level.map_or(5, |l| l as u8), Ordering::Relaxed);
    }

    /// Appends one event, dropping the oldest when full.
    pub fn emit(&self, level: Level, subsystem: &str, message: impl Into<String>) {
        let event = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let event = Event {
                seq: state.next_seq,
                millis: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                level,
                subsystem: subsystem.to_owned(),
                message: message.into(),
                trace: trace::current(),
            };
            state.next_seq += 1;
            if state.buf.len() == self.capacity {
                state.buf.pop_front();
            }
            state.buf.push_back(event.clone());
            event
        };
        if Level::from_u8(self.echo.load(Ordering::Relaxed)).is_some_and(|e| level >= e) {
            eprintln!("{event}");
        }
    }

    /// The newest `n` events, oldest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state
            .buf
            .iter()
            .skip(state.buf.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted (including dropped ones).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_seq
    }
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(capacity: usize) -> EventLog {
        let log = EventLog::new(capacity);
        log.set_echo(None);
        log
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn ring_drops_oldest() {
        let log = quiet(3);
        for i in 0..5 {
            log.emit(Level::Info, "test", format!("event {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.emitted(), 5);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].message, "event 2");
        assert_eq!(recent[2].message, "event 4");
        assert_eq!(recent[2].seq, 4);
    }

    #[test]
    fn recent_takes_newest() {
        let log = quiet(10);
        for i in 0..4 {
            log.emit(Level::Debug, "test", format!("{i}"));
        }
        let last_two = log.recent(2);
        assert_eq!(last_two[0].message, "2");
        assert_eq!(last_two[1].message, "3");
    }

    #[test]
    fn events_carry_ambient_trace_context() {
        use crate::trace::{scope, SpanId, TraceId};
        let log = quiet(4);
        log.emit(Level::Info, "stm", "untraced");
        let ctx = TraceContext {
            trace: TraceId(0xabc),
            span: SpanId(0xdef),
        };
        {
            let _g = scope(Some(ctx));
            log.emit(Level::Info, "stm", "traced");
        }
        let events = log.recent(2);
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].trace, Some(ctx));
        let shown = events[1].to_string();
        assert!(shown.contains("trace="), "{shown}");
    }

    #[test]
    fn display_is_compact() {
        let log = quiet(4);
        log.emit(Level::Warn, "clf", "retransmit storm");
        let shown = log.recent(1)[0].to_string();
        assert!(shown.contains("warn"), "{shown}");
        assert!(shown.contains("clf"), "{shown}");
        assert!(shown.contains("retransmit storm"), "{shown}");
    }
}
